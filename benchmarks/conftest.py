"""Shared benchmark configuration.

Benchmarks use moderate batch sizes: large enough that fills and overheads
amortise as in the paper's runs, small enough that the discrete-event
simulations finish in seconds.  Every benchmark prints the paper's numbers
next to the measured ones (run with ``-s`` to see the tables; they are also
asserted programmatically).
"""

from __future__ import annotations

import pytest

from repro.workloads.scenarios import PaperScenario


@pytest.fixture(scope="session")
def bench_scenario() -> PaperScenario:
    """Paper scenario with a batch big enough to amortise overheads."""
    return PaperScenario(n_options=64)


@pytest.fixture(scope="session")
def scaling_scenario() -> PaperScenario:
    """Larger batch for the multi-engine study (Table II)."""
    return PaperScenario(n_options=250)


def run_once(benchmark, fn):
    """Benchmark an expensive function with a single measured round."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
