"""Ablation: what the shared on-card DMA path can — and cannot — explain
about the paper's sub-linear multi-engine scaling.

Table II scales 1 -> 5 engines at 4.12x (not 5x).  The multi-engine system
reproduces that with a calibrated contention coefficient of 0.05.  This
benchmark co-simulates the actual option/result descriptor traffic through
one shared AXI/HBM arbiter and shows the on-card path contributes only a
small fraction of that slowdown at the paper's operating point — the rest
is host-side serialisation, which a card-only model rightly keeps as a
calibrated constant.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.fpga.interconnect import DMATrafficModel, cosim_dma_traffic
from repro.workloads.scenarios import PaperScenario

#: The vectorised engine's per-option bottleneck cadence (cycles).
VECTORISED_CADENCE = 10_240.0


class TestInterconnectContribution:
    def test_dma_slowdown_at_paper_operating_point(self, benchmark):
        sc = PaperScenario()

        def measure():
            return {
                n: cosim_dma_traffic(
                    sc,
                    n,
                    compute_cycles_per_option=VECTORISED_CADENCE,
                    options_per_engine=50,
                ).slowdown
                for n in (1, 2, 5)
            }

        slowdowns = run_once(benchmark, measure)
        print()
        for n, s in slowdowns.items():
            calibrated = 1.0 + sc.multi_engine_contention * (n - 1)
            print(
                f"  {n} engines: DMA co-sim slowdown {s:.3f}, "
                f"calibrated model {calibrated:.3f}"
            )
        # On-card DMA explains only a small part of the calibrated 1.20x.
        assert slowdowns[5] < 1.06
        assert slowdowns[1] == pytest.approx(1.0, abs=0.01)

    def test_where_the_interconnect_would_bind(self, benchmark):
        """Sensitivity: with ~60x faster engines (e.g. aggressive reduced
        precision + banked tables) the shared DMA path becomes a genuine
        bottleneck — a design warning for future scaling."""
        sc = PaperScenario()

        def measure():
            return cosim_dma_traffic(
                sc,
                5,
                compute_cycles_per_option=170.0,
                options_per_engine=100,
                model=DMATrafficModel(service_cycles=140.0),
            )

        report = run_once(benchmark, measure)
        print(
            f"\nhypothetical 170-cycle/option engines: slowdown "
            f"{report.slowdown:.2f}x, arbiter utilisation "
            f"{report.arbiter_utilisation:.0%}"
        )
        assert report.slowdown > 2.0

    def test_service_time_sweep(self, benchmark):
        sc = PaperScenario()

        def measure():
            return [
                (
                    svc,
                    cosim_dma_traffic(
                        sc,
                        5,
                        compute_cycles_per_option=VECTORISED_CADENCE,
                        options_per_engine=40,
                        model=DMATrafficModel(service_cycles=svc),
                    ).slowdown,
                )
                for svc in (70.0, 140.0, 560.0, 2048.0)
            ]

        rows = run_once(benchmark, measure)
        print()
        for svc, s in rows:
            print(f"  service {svc:>6.0f} cycles: slowdown {s:.3f}")
        slowdowns = [s for _, s in rows]
        assert slowdowns == sorted(slowdowns)
