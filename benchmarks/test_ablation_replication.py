"""Ablation: replication-factor sweep (extends paper Section III).

The paper picked six replicas and observed a 2x gain.  This sweep shows the
mechanism: throughput rises with the replica count only until the
dual-ported URAM's two read ports saturate; beyond that, extra replicas buy
nothing (which is why six replicas gave only ~2x).  A second sweep shows
that adding table ports (i.e. more URAM copies) moves the saturation point
— the design lever the paper's "additional dual-ported URAM" hints at.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.sweep import sweep
from repro.engines import VectorizedDataflowEngine
from repro.workloads.scenarios import PaperScenario


def _throughput(sc: PaperScenario) -> float:
    return VectorizedDataflowEngine(sc).run().options_per_second


class TestReplicationSweep:
    def test_sweep_replication_factor(self, benchmark):
        base = PaperScenario(n_options=24)

        def do_sweep():
            return sweep(
                "replication_factor", [1, 2, 4, 6, 8], _throughput, base=base
            )

        result = run_once(benchmark, do_sweep)
        print()
        print(result.render(unit=" opt/s"))
        rates = dict(zip(result.values(), result.measurements()))
        # Going 1 -> 2 helps substantially (both ports engaged).
        assert rates[2] > rates[1] * 1.5
        # Beyond the port count the curve saturates: 6 -> 8 gains < 10%.
        assert rates[8] < rates[6] * 1.10
        # The paper's configuration (6) delivers ~2x over no replication.
        assert rates[6] / rates[1] == pytest.approx(2.0, rel=0.25)

    def test_sweep_uram_ports(self, benchmark):
        """With four table ports, six replicas are finally worth ~4x."""
        base = PaperScenario(n_options=24)

        def do_sweep():
            return sweep("uram_read_ports", [1, 2, 4], _throughput, base=base)

        result = run_once(benchmark, do_sweep)
        print()
        print(result.render(unit=" opt/s"))
        rates = dict(zip(result.values(), result.measurements()))
        assert rates[2] > rates[1] * 1.5
        assert rates[4] > rates[2] * 1.5

    def test_port_bound_throughput_model(self, benchmark):
        """Effective speedup ~ min(k, ports): check 4 replicas, 2 ports."""
        two_ports = PaperScenario(
            n_options=24, replication_factor=4, uram_read_ports=2
        )
        one_replica = PaperScenario(
            n_options=24, replication_factor=1, uram_read_ports=2
        )

        def ratio():
            return _throughput(two_ports) / _throughput(one_replica)

        gain = run_once(benchmark, ratio)
        assert gain == pytest.approx(2.0, rel=0.25)
