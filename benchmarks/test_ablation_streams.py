"""Ablations on the dataflow plumbing (extends paper Section III).

Three studies:

* **invocation overhead** — the quantity the inter-option optimisation
  removes: per-option restart cost versus batch throughput;
* **stream depth** — FIFO sizing between stages (Vitis `STREAM depth`);
* **HBM packing** — the 512-bit access best practice the paper applies.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.sweep import sweep
from repro.engines import InterOptionDataflowEngine, OptimisedDataflowEngine
from repro.fpga.hbm import HBMModel
from repro.workloads.scenarios import PaperScenario


class TestInvocationOverheadAblation:
    def test_overhead_sweep_hurts_per_option_engine_only(self, benchmark):
        # Batch large enough that a once-per-batch overhead stays <10%
        # even at the largest swept value (36k cycles / 32 options).
        base = PaperScenario(n_options=32)
        overheads = [0.0, 6_000.0, 18_000.0, 36_000.0]

        def measure():
            per_option = sweep(
                "invocation_overhead_cycles",
                overheads,
                lambda sc: OptimisedDataflowEngine(sc).run().options_per_second,
                base=base,
            )
            streaming = sweep(
                "invocation_overhead_cycles",
                overheads,
                lambda sc: InterOptionDataflowEngine(sc).run().options_per_second,
                base=base,
            )
            return per_option, streaming

        per_option, streaming = run_once(benchmark, measure)
        print()
        print(per_option.render(unit=" opt/s (per-option restart)"))
        print(streaming.render(unit=" opt/s (free-running)"))
        p = per_option.measurements()
        s = streaming.measurements()
        # Per-option engine degrades steeply with overhead...
        assert p[0] / p[-1] > 1.8
        # ...while the free-running engine barely notices (overhead paid once).
        assert s[0] / s[-1] < 1.1

    def test_interoption_gain_grows_with_overhead(self, benchmark):
        def gain_at(overhead):
            sc = PaperScenario(n_options=16, invocation_overhead_cycles=overhead)
            inter = InterOptionDataflowEngine(sc).run().options_per_second
            per = OptimisedDataflowEngine(sc).run().options_per_second
            return inter / per

        def measure():
            return gain_at(0.0), gain_at(18_000.0)

        low, high = run_once(benchmark, measure)
        assert high > low


class TestStreamDepthAblation:
    def test_depth_sweep(self, benchmark):
        base = PaperScenario(n_options=16)

        def do_sweep():
            return sweep(
                "stream_depth",
                [1, 2, 4, 16],
                lambda sc: InterOptionDataflowEngine(sc).run().options_per_second,
                base=base,
            )

        result = run_once(benchmark, do_sweep)
        print()
        print(result.render(unit=" opt/s"))
        rates = result.measurements()
        # Deeper never hurts, and the marginal benefit vanishes (the
        # bottleneck is compute, not buffering).
        assert rates == sorted(rates)
        assert rates[-1] < rates[1] * 1.15


class TestHBMPackingAblation:
    def test_packed_vs_unpacked_table_load(self, benchmark):
        """Loading the two 1024-entry tables: 512-bit packing vs one double
        per beat (the anti-pattern)."""
        hbm = HBMModel()

        def measure():
            doubles = 2 * 1024 * 2  # two tables, (time, value) pairs
            return (
                hbm.doubles_burst_cycles(doubles),
                hbm.unpacked_burst_cycles(doubles),
            )

        packed, unpacked = run_once(benchmark, measure)
        print(f"\ntable load: packed {packed:.0f} cycles, unpacked {unpacked:.0f}")
        assert unpacked / packed == pytest.approx(8.0, rel=0.3)
