"""Ablation: how the engine's cost scales with the workload parameters.

The paper fixes 1024 rate entries and does not vary the contract.  The
engine's steady-state cost model says throughput should scale inversely
with (time points x table length) — the two workload knobs.  This bench
verifies both scalings on the simulator, and locates the crossover where
the FPGA engine overtakes a CPU core as tables grow (the fixed-bound scan
hurts the CPU model too, but the FPGA's replication absorbs it).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.sweep import sweep
from repro.engines import VectorizedDataflowEngine
from repro.workloads.scenarios import PaperScenario


class TestTableLengthScaling:
    def test_throughput_inverse_in_table_length(self, benchmark):
        base = PaperScenario(n_options=16)

        def do_sweep():
            return sweep(
                "n_rates",
                [256, 512, 1024, 2048],
                lambda sc: VectorizedDataflowEngine(sc).run().options_per_second,
                base=base,
            )

        result = run_once(benchmark, do_sweep)
        print()
        print(result.render(unit=" opt/s"))
        rates = dict(zip(result.values(), result.measurements()))
        # Bottleneck = fixed-bound scan: halving the table nearly doubles
        # the rate, diluted by fixed per-option costs (pipeline fill,
        # invocation share, II=1 stages) that show up at short tables.
        assert 1.6 <= rates[512] / rates[1024] <= 2.05
        assert 4.5 <= rates[256] / rates[2048] <= 8.0
        assert rates[256] > rates[512] > rates[1024] > rates[2048]


class TestMaturityScaling:
    def test_throughput_inverse_in_time_points(self, benchmark):
        def rate_for(maturity):
            sc = PaperScenario(n_options=16, option_maturity=maturity)
            return VectorizedDataflowEngine(sc).run().options_per_second

        def measure():
            return {m: rate_for(m) for m in (2.5, 5.0, 10.0)}

        rates = run_once(benchmark, measure)
        print()
        for m, r in rates.items():
            print(f"  maturity {m:>4.1f}y ({int(m * 4)} points): {r:>10,.0f} opt/s")
        # Twice the points ~ half the throughput.
        assert rates[2.5] / rates[5.0] == pytest.approx(2.0, rel=0.2)
        assert rates[5.0] / rates[10.0] == pytest.approx(2.0, rel=0.2)


class TestFrequencyScaling:
    def test_monthly_contracts_cost_three_times_quarterly(self, benchmark):
        def rate_for(freq):
            sc = PaperScenario(n_options=16, option_frequency=freq)
            return VectorizedDataflowEngine(sc).run().options_per_second

        def measure():
            return rate_for(4) / rate_for(12)

        ratio = run_once(benchmark, measure)
        print(f"\nquarterly/monthly throughput ratio: {ratio:.2f} (expect ~3)")
        assert ratio == pytest.approx(3.0, rel=0.2)
