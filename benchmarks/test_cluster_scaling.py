"""Benchmark for the multi-card cluster layer: options/sec versus cards.

The paper's Table II stops at five engines on one card (114,115.92 opt/s).
This benchmark extends the study across simulated cards under the default
host contention model and asserts the scaling shape: strictly more than 1x
from one card to four (the acceptance bar), and in practice close to
linear once the batch amortises per-card fixed costs.  A second group
compares the scheduling policies on the skewed portfolio, where static
cost-oblivious sharding leaves throughput on the table.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.cluster import generate_cluster_table, render_cluster_table
from repro.cluster import CDSCluster
from repro.workloads.cluster import make_skewed_portfolio

CARD_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module")
def cluster_rates(scaling_scenario):
    return {
        n: CDSCluster(scaling_scenario, n_cards=n).run().options_per_second
        for n in CARD_COUNTS
    }


class TestCardScaling:
    @pytest.mark.parametrize("n_cards", CARD_COUNTS)
    def test_bench_cluster_cards(self, benchmark, scaling_scenario, n_cards):
        result = run_once(
            benchmark,
            lambda: CDSCluster(scaling_scenario, n_cards=n_cards).run(),
        )
        assert result.n_active_cards == n_cards
        assert result.spreads_bps.shape == (scaling_scenario.n_options,)

    def test_speedup_1_to_4_cards(self, cluster_rates):
        speedup = cluster_rates[4] / cluster_rates[1]
        # Acceptance bar is >1x; the default contention model sustains
        # well beyond 2x at this batch size.
        assert speedup > 1.0
        assert speedup > 2.0

    def test_speedup_monotone(self, cluster_rates):
        assert cluster_rates[1] < cluster_rates[2] < cluster_rates[4]

    def test_sublinear_under_contention(self, cluster_rates):
        # The host link serialises part of every transfer, so 4 cards must
        # land short of a perfect 4x.
        assert cluster_rates[4] / cluster_rates[1] < 4.0


class TestPolicyComparison:
    def test_policies_on_skewed_portfolio(self, benchmark, scaling_scenario):
        portfolio = make_skewed_portfolio(scaling_scenario.n_options, seed=3)

        def run_all():
            return {
                policy: CDSCluster(
                    scaling_scenario, n_cards=4, scheduler=policy
                ).run(portfolio)
                for policy in ("round-robin", "least-loaded", "work-stealing")
            }

        results = run_once(benchmark, run_all)
        rates = {p: r.options_per_second for p, r in results.items()}
        print()
        for policy, result in results.items():
            print(f"  {policy:<14} {result.summary()}")
        # All policies price the same portfolio; none may collapse: the
        # spread between best and worst stays within ~2x even on heavy skew.
        assert max(rates.values()) < 2.0 * min(rates.values())


class TestExtendedTable:
    def test_render_extended_table(self, scaling_scenario):
        rows = generate_cluster_table(scaling_scenario, CARD_COUNTS)
        print()
        print(render_cluster_table(rows))
        assert rows[-1].speedup_vs_base > 1.0
