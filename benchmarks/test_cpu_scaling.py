"""Benchmark the CPU baseline: the paper's strong-scaling observation and a
genuine host measurement.

Paper Section IV: "the CPU code is scaling fairly poorly, where we have
increased the core count by 24 times but the performance only increases by
around nine times".  The first class checks the calibrated model reproduces
that curve; the second measures the *real* NumPy engine on the benchmark
host (absolute numbers are host-dependent and only sanity-checked).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.cpu.engine import CPUEngine
from repro.cpu.scaling import CPUPerformanceModel, CPUWorkEstimate
from repro.workloads.scenarios import PAPER_TABLE1, PAPER_TABLE2, PaperScenario


@pytest.fixture(scope="module")
def work():
    sc = PaperScenario()
    return CPUWorkEstimate.for_option(
        sc.options(1)[0], sc.yield_curve(), sc.hazard_curve()
    )


class TestModelledScalingCurve:
    def test_scaling_curve(self, benchmark, work):
        model = CPUPerformanceModel()

        def curve():
            return {p: model.rate(work, p) for p in (1, 2, 4, 8, 16, 24)}

        rates = run_once(benchmark, curve)
        print()
        for p, r in rates.items():
            print(f"  {p:>2} cores: {r:>10,.0f} opt/s  (speedup {r / rates[1]:.2f}x)")
        assert rates[1] == pytest.approx(PAPER_TABLE1["cpu_single_core"], rel=0.02)
        assert rates[24] == pytest.approx(PAPER_TABLE2["cpu_24_cores"][0], rel=0.02)
        # The paper's ~9x-at-24-cores observation.
        assert rates[24] / rates[1] == pytest.approx(8.68, rel=0.05)

    def test_efficiency_decays_monotonically(self, benchmark, work):
        model = CPUPerformanceModel()

        def efficiencies():
            return [model.parallel_efficiency(p) for p in range(1, 25)]

        effs = run_once(benchmark, efficiencies)
        assert all(a >= b for a, b in zip(effs, effs[1:]))


class TestHostMeasurement:
    """Real wall-clock pricing on the machine running the benchmarks."""

    def test_bench_host_vectorised_engine(self, benchmark):
        sc = PaperScenario(n_options=512)
        engine = CPUEngine(sc.yield_curve(), sc.hazard_curve())
        options = sc.options()

        result = benchmark(engine.run, options)
        print(
            f"\nhost NumPy engine: {result.options_per_second:,.0f} options/s "
            f"(paper's C++ single core: {PAPER_TABLE1['cpu_single_core']:,.0f})"
        )
        assert result.options_per_second > 0
        assert len(result.spreads_bps) == 512
