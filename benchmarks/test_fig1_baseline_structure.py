"""Benchmark regenerating paper **Figure 1**: the flowchart of the Xilinx
CDS engine's sequential structure.

The figure is reproduced as a topology graph; the assertions check the
structural facts the figure communicates: seven sequential phases, no
concurrency, every inter-phase link carrying per-option data.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.analysis.figures import figure1_baseline


class TestFigure1:
    def test_regenerate_flowchart(self, benchmark):
        graph = run_once(benchmark, figure1_baseline)
        print()
        print(graph.to_ascii())
        # Seven phases, purely sequential (depth == node count).
        assert len(graph.nodes) == 7
        assert graph.stage_depth() == 7
        assert graph.is_acyclic()
        # Sequential execution: every stage has fan-in/out at most 1.
        for node in graph.nodes:
            assert graph.fan_in(node.name) <= 1
            assert graph.fan_out(node.name) <= 1

    def test_phase_order_matches_paper(self, benchmark):
        graph = run_once(benchmark, figure1_baseline)
        order = graph.topological_order()
        assert order.index("generate_time_points") < order.index(
            "default_probability"
        )
        assert order.index("default_probability") < order.index(
            "pv_expected_payments"
        )
        assert order.index("pv_expected_payoff") < order.index("combine_spread")

    def test_dot_rendering(self, benchmark):
        dot = run_once(benchmark, lambda: figure1_baseline().to_dot())
        assert "digraph" in dot
        assert "accrued_protection" in dot
