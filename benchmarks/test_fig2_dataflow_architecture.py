"""Benchmark regenerating paper **Figure 2**: the CDS dataflow architecture.

The figure is extracted from a live built network.  Assertions check what
the figure communicates: concurrent stages connected by streams, per-option
(red) versus per-time-point (blue) channels, hazard and interpolation on
parallel branches, and the final combine stage collecting three accumulated
legs plus the per-option parameters.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.figures import figure2_dataflow
from repro.dataflow.stats import summarise
from repro.engines import InterOptionDataflowEngine
from repro.workloads.scenarios import PaperScenario


class TestFigure2Structure:
    def test_regenerate_architecture(self, benchmark, bench_scenario):
        graph = run_once(benchmark, lambda: figure2_dataflow(bench_scenario))
        print()
        print(graph.to_ascii())
        names = {n.name for n in graph.nodes}
        assert {
            "timegrid",
            "hazard_acc",
            "defprob",
            "interp",
            "discount",
            "payment",
            "payoff",
            "accrual",
            "combine",
        } <= names
        assert graph.is_acyclic()

    def test_stream_colour_split(self, benchmark, bench_scenario):
        graph = run_once(benchmark, lambda: figure2_dataflow(bench_scenario))
        red = [e for e in graph.edges if e.per_option]
        blue = [e for e in graph.edges if not e.per_option]
        # Per-option: params, three leg totals, results.
        assert len(red) == 5
        # Per-time-point streams dominate.
        assert len(blue) > len(red)

    def test_parallel_branches_then_join(self, benchmark, bench_scenario):
        graph = run_once(benchmark, lambda: figure2_dataflow(bench_scenario))
        # Hazard and interpolation branches never touch until the leg stages.
        assert graph.fan_out("timegrid") == 3
        assert graph.fan_in("combine") == 4  # params + three legs


class TestFigure2Behaviour:
    """The figure's claim is concurrency: verify stages actually overlap."""

    def test_stages_overlap_in_time(self, benchmark):
        sc = PaperScenario(n_options=16)
        result = run_once(benchmark, lambda: InterOptionDataflowEngine(sc).run())
        sim = result.sim_results[0]
        rows = {r.name: r for r in summarise(sim)}
        # The bottleneck (interpolation scan) is busy most of the makespan.
        assert rows["interp"].utilisation > 0.8
        # Downstream stages also accumulate busy time, i.e. they ran
        # concurrently rather than after the bottleneck finished.
        assert rows["payment"].busy_cycles > 0
        assert rows["combine"].busy_cycles > 0

    def test_downstream_stages_stall_waiting(self, benchmark):
        """Paper: 'stalls frequently occurred' in result-per-cycle stages
        fed by the slow nested-loop stages."""
        sc = PaperScenario(n_options=16)
        result = run_once(benchmark, lambda: InterOptionDataflowEngine(sc).run())
        sim = result.sim_results[0]
        assert sim.process_stall_read["discount"] > 0
        assert sim.process_stall_read["payment"] > 0
