"""Benchmark regenerating paper **Figure 3**: vectorisation of the
defaulting-probability calculation.

The figure shows a round-robin scheduler streaming input data cyclically to
replicated hazard/interpolation functions, with results consumed cyclically
so ordering is maintained.  Assertions check the replica clusters, the
cyclic fan-out/fan-in, order preservation, and the performance claim that
replication "improves the flow of data" (~2x with six replicas on
dual-ported URAM).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis.figures import figure3_vectorised
from repro.engines import InterOptionDataflowEngine, VectorizedDataflowEngine
from repro.workloads.scenarios import PaperScenario


class TestFigure3Structure:
    def test_regenerate_vectorised_graph(self, benchmark, bench_scenario):
        graph = run_once(benchmark, lambda: figure3_vectorised(bench_scenario))
        print()
        print(graph.to_ascii())
        groups = graph.groups()
        assert len(groups["hazard"]) == bench_scenario.replication_factor
        assert len(groups["interp"]) == bench_scenario.replication_factor

    def test_round_robin_fanout(self, benchmark, bench_scenario):
        graph = run_once(benchmark, lambda: figure3_vectorised(bench_scenario))
        k = bench_scenario.replication_factor
        assert graph.fan_out("hazard_rr_sched") == k
        assert graph.fan_in("hazard_rr_collect") == k
        assert graph.fan_out("interp_rr_sched") == k
        assert graph.fan_in("interp_rr_collect") == k


class TestFigure3Behaviour:
    def test_ordering_maintained(self, benchmark):
        """'By working cyclically ordering of result consumption is
        maintained': replicated results must equal unreplicated results."""
        sc = PaperScenario(n_options=12)

        def run_both():
            vec = VectorizedDataflowEngine(sc).run()
            inter = InterOptionDataflowEngine(sc).run()
            return vec.spreads_bps, inter.spreads_bps

        vec_spreads, inter_spreads = run_once(benchmark, run_both)
        assert np.array_equal(vec_spreads, inter_spreads)

    def test_replication_doubles_performance(self, benchmark):
        """Paper: 'we replicated the hazard and interpolation calculations
        six times, which doubled performance'."""
        sc = PaperScenario(n_options=32)

        def measure():
            vec = VectorizedDataflowEngine(sc).run().options_per_second
            inter = InterOptionDataflowEngine(sc).run().options_per_second
            return vec / inter

        gain = run_once(benchmark, measure)
        print(f"\nreplication x{sc.replication_factor} gain: {gain:.2f}x (paper: 2.08x)")
        assert gain == pytest.approx(2.08, rel=0.2)

    def test_all_replicas_do_work(self, benchmark):
        sc = PaperScenario(n_options=12)
        result = run_once(benchmark, lambda: VectorizedDataflowEngine(sc).run())
        sim = result.sim_results[0]
        for k in range(sc.replication_factor):
            assert sim.process_busy[f"hazard_acc[{k}]"] > 0
            assert sim.process_busy[f"interp[{k}]"] > 0
