"""Benchmark for the paper's **future work**: reduced precision.

"Going forwards, further exploration around reduced precision ... would be
very interesting" (paper Section V).  This benchmark carries out the
single-precision study the paper proposes:

* **accuracy** — binary32 pricing error against the binary64 reference over
  the paper workload (quantified in basis points);
* **speed** — the vectorised engine re-timed with single-precision operator
  latencies and doubled effective URAM port bandwidth;
* **density** — how many single-precision engines fit the U280 versus the
  five double-precision ones.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.precision import run_precision_study
from repro.engines import MultiEngineSystem, VectorizedDataflowEngine
from repro.engines.builder import engine_resources
from repro.fpga.floorplan import max_engines
from repro.workloads.scenarios import PaperScenario


class TestAccuracy:
    def test_binary32_error_below_quoting_granularity(self, benchmark):
        sc = PaperScenario(n_options=64)

        def study():
            return run_precision_study(
                sc.options(), sc.yield_curve(), sc.hazard_curve()
            )

        report = run_once(benchmark, study)
        print(f"\n{report.render()}")
        assert report.acceptable_for_quoting(0.01)

    def test_fixed_point_wordlength_curve(self, benchmark):
        """The fixed-point half of the future work: spread error versus
        fractional word length (Q4.n, exp via 2^14 LUT)."""
        from repro.core.fixedpoint import wordlength_sweep
        from repro.workloads.generator import WorkloadGenerator

        wg = WorkloadGenerator(seed=3)
        yc, hc = wg.yield_curve(256), wg.hazard_curve(256)
        book = wg.portfolio(24, maturity_range=(0.5, 8.0))

        def study():
            return wordlength_sweep(
                book, yc, hc, [12, 16, 20, 24, 27], exp_table_bits=14
            )

        reports = run_once(benchmark, study)
        print()
        for r in reports:
            ok = "quotable" if r.acceptable_for_quoting() else "too coarse"
            print(f"  {r.render()}  [{ok}]")
        errors = [r.max_abs_error_bps for r in reports]
        # Error falls monotonically with word length...
        assert errors == sorted(errors, reverse=True)
        # ...and the 32-bit Q4.27 word is quotable.
        assert reports[-1].acceptable_for_quoting(0.01)


class TestSpeed:
    def test_single_precision_engine_speedup(self, benchmark):
        dp = PaperScenario(n_options=32)
        sp = dp.with_overrides(precision="single")

        def measure():
            r_dp = VectorizedDataflowEngine(dp).run().options_per_second
            r_sp = VectorizedDataflowEngine(sp).run().options_per_second
            return r_dp, r_sp

        r_dp, r_sp = run_once(benchmark, measure)
        print(
            f"\nvectorised engine: double {r_dp:,.0f} opt/s, "
            f"single {r_sp:,.0f} opt/s ({r_sp / r_dp:.2f}x)"
        )
        # Effective table bandwidth doubles; the bottleneck scan halves.
        assert r_sp / r_dp == pytest.approx(1.9, rel=0.2)


class TestDensity:
    def test_more_engines_fit_at_single_precision(self, benchmark):
        sc = PaperScenario()

        def fits():
            dp = max_engines(sc.device, engine_resources(sc, replication=6))
            sp_sc = sc.with_overrides(precision="single")
            sp = max_engines(
                sc.device, engine_resources(sp_sc, replication=6)
            )
            return dp, sp

        dp, sp = run_once(benchmark, fits)
        print(f"\nengines fitting the U280: double {dp}, single {sp}")
        assert dp == 5
        assert sp >= 8

    def test_card_level_single_precision_throughput(self, benchmark):
        """Full-card projection: more, faster engines."""
        sp_sc = PaperScenario(n_options=250, precision="single")
        n = max_engines(
            sp_sc.device, engine_resources(sp_sc, replication=6)
        )

        def run():
            return MultiEngineSystem(sp_sc, n_engines=n).run().options_per_second

        rate = run_once(benchmark, run)
        print(f"\n{n} single-precision engines: {rate:,.0f} options/s "
              f"(double-precision five-engine paper result: 114,115.92)")
        assert rate > 114_115.92 * 2.0
