"""Benchmark: the gateway's quote cache versus raw fan-out at 10x load.

The gateway's reason to exist: at 600k req/s offered — ten times the
serving benchmark's 60k — no affordable card pool can reprice every
quote individually, but most quotes ask the same question (same market
state, same option) within a tick window.  The market-state-keyed cache
answers repeats in microseconds and single-flights concurrent misses,
so the cards only see the distinct working set.

The run replays an identical 16k-request multi-tenant trace (Zipf row
and option skew, three tenant tiers, a live tick stream invalidating
cached rows) through the same two-server gateway twice — cache on and
cache off — and compares **goodput**.  Because cached replies replay
the exact `(kind, rows, option)` value the kernels produced, the cache
moves timing and never numbers: every request id completed by both runs
carries a bit-identical value.  Acceptance floors: cache hit rate above
0.5 and a 5x goodput ratio; the numbers are persisted to
``BENCH_gateway.json`` (uploaded as a CI artifact next to
``BENCH_serving.json`` and ``BENCH_risk.json``).

Everything asserted here is *simulated* time, so the benchmark is
deterministic — host wall-clock is reported but never asserted.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis.gateway import generate_gateway_report
from repro.workloads.scenarios import PaperScenario

N_REQUESTS = 16_000
RATE_HZ = 600_000.0
N_SERVERS = 2
N_CARDS = 1  # per server: the pool the cache must stretch
N_POSITIONS = 32
N_STATES = 64
N_TICKS = 50
TICK_RATE_HZ = 2_000.0
QUEUE_DEPTH = 8192
SEED = 7
HIT_RATE_FLOOR = 0.5
GOODPUT_RATIO_FLOOR = 5.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_gateway.json"
#: Bump when the BENCH_gateway.json payload shape changes.
BENCH_SCHEMA_VERSION = 1


def _report(cache: bool):
    sc = PaperScenario(n_rates=256, n_options=N_POSITIONS)
    return generate_gateway_report(
        sc,
        n_requests=N_REQUESTS,
        rate_hz=RATE_HZ,
        n_servers=N_SERVERS,
        n_cards=N_CARDS,
        cache=cache,
        n_ticks=N_TICKS,
        tick_rate_hz=TICK_RATE_HZ,
        queue_depth=QUEUE_DEPTH,
        n_states=N_STATES,
        seed=SEED,
    )


@pytest.fixture(scope="module")
def measured():
    return _report(cache=True), _report(cache=False)


def _row(result) -> dict:
    return {
        "goodput_rps": round(result.goodput_rps, 1),
        "throughput_rps": round(result.throughput_rps, 1),
        "shed_rate": round(result.shed_rate, 4),
        "deadline_hit_rate": round(result.deadline_hit_rate, 4),
        "p50_ms": round(result.latency.p50_s * 1e3, 3),
        "p95_ms": round(result.latency.p95_s * 1e3, 3),
        "p99_ms": round(result.latency.p99_s * 1e3, 3),
        "n_completed": result.n_completed,
        "n_shed": result.n_shed,
    }


def test_cached_values_bit_identical(measured):
    """The cache moves timing, never numbers."""
    cached, uncached = measured
    a = {r.request_id: r.value for r in cached.result.responses}
    b = {r.request_id: r.value for r in uncached.result.responses}
    common = set(a) & set(b)
    assert len(common) > N_REQUESTS // 4
    assert all(a[i] == b[i] for i in common)


def test_cache_economics_and_trajectory(measured):
    """Hit rate > 0.5 and >= 5x goodput at 600k req/s offered,
    recorded to BENCH_gateway.json."""
    cached, uncached = measured
    on, off = cached.result, uncached.result
    ratio = on.goodput_rps / max(off.goodput_rps, 1e-9)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "gateway_cache",
        "offered": {
            "n_requests": N_REQUESTS,
            "rate_hz": RATE_HZ,
            "n_servers": N_SERVERS,
            "n_cards": N_CARDS,
            "n_positions": N_POSITIONS,
            "n_states": N_STATES,
            "n_ticks": N_TICKS,
            "tick_rate_hz": TICK_RATE_HZ,
            "queue_depth": QUEUE_DEPTH,
        },
        "cached": {
            **_row(on),
            "cache_hit_rate": round(on.cache_hit_rate, 4),
            "cache_dedup_rate": round(on.cache_dedup_rate, 4),
            "n_cache_invalidations": on.n_cache_invalidations,
        },
        "uncached": _row(off),
        "goodput_ratio": round(ratio, 2),
        "tenants": [
            {
                "tenant": t.tenant,
                "tier": t.tier,
                "goodput_rps": round(t.goodput_rps, 1),
                "n_completed": t.n_completed,
                "n_shed": t.n_shed,
                "cache_hits": t.n_cache_hits,
            }
            for t in on.tenants
        ],
        "host_wall_seconds": {
            "cached": round(cached.host_seconds, 3),
            "uncached": round(uncached.host_seconds, 3),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nGateway goodput at {RATE_HZ:,.0f} req/s offered "
          f"({N_REQUESTS} requests, {N_SERVERS}x{N_CARDS} cards):")
    print(f"  cache off: {off.goodput_rps:10,.0f} req/s goodput, "
          f"p99 {off.latency.p99_s * 1e3:7.2f} ms, "
          f"shed {off.shed_rate:.1%}")
    print(f"  cache on : {on.goodput_rps:10,.0f} req/s goodput, "
          f"p99 {on.latency.p99_s * 1e3:7.2f} ms, "
          f"shed {on.shed_rate:.1%} "
          f"(hit {on.cache_hit_rate:.1%}, dedup {on.cache_dedup_rate:.1%})")
    print(f"  ratio    : {ratio:.1f}x  ->  {BENCH_PATH.name}")
    assert on.cache_hit_rate > HIT_RATE_FLOOR
    assert ratio >= GOODPUT_RATIO_FLOOR


def test_cache_keeps_tail_latency_bounded(measured):
    """Hits answer in microseconds; the cached tail beats the uncached
    tail even while completing far more work."""
    cached, uncached = measured
    on, off = cached.result, uncached.result
    assert on.latency.p50_s < off.latency.p50_s
    assert on.n_deadline_met > off.n_deadline_met
