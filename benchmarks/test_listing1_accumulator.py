"""Benchmark regenerating paper **Listing 1**: the interleaved accumulation
that breaks the II=7 loop-carried dependency.

Two views: the *cycle* model (the naive accumulator emits one value every
seven cycles, Listing 1 one per cycle — the paper's core mechanism) and the
*wall-clock* cost of the functional implementations on the host (a genuine
pytest-benchmark measurement).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.hls.accumulator import (
    AccumulatorModel,
    interleaved_accumulate,
    naive_accumulate,
)
from repro.hls.ops import DADD_LATENCY


class TestCycleModel:
    @pytest.mark.parametrize("length", [64, 256, 1024, 4096])
    def test_ii_speedup_approaches_adder_latency(self, benchmark, length):
        def measure():
            _, slow = naive_accumulate(np.ones(length))
            _, fast = interleaved_accumulate(np.ones(length))
            return slow / fast

        speedup = run_once(benchmark, measure)
        print(f"\nlength {length}: Listing-1 speedup {speedup:.2f}x "
              f"(asymptote {DADD_LATENCY}x)")
        assert speedup > 3.0
        if length >= 1024:
            assert speedup == pytest.approx(DADD_LATENCY, rel=0.15)

    def test_paper_hazard_stage_cost(self, benchmark):
        """At the paper's table length (1024) the hazard accumulation drops
        from ~7168 cycles to ~1120 cycles."""
        naive = AccumulatorModel(interleaved=False)
        fixed = AccumulatorModel(interleaved=True)

        def costs():
            return naive.cycles(1024), fixed.cycles(1024)

        slow, fast = run_once(benchmark, costs)
        assert slow == pytest.approx(7 * 1024, rel=0.01)
        assert fast < 1200


class TestFunctionalWallClock:
    """Real host-side benchmarks of the two accumulation routines."""

    def test_bench_naive(self, benchmark):
        values = np.random.default_rng(0).normal(size=1024)
        total, _ = benchmark(naive_accumulate, values)
        assert total == pytest.approx(math.fsum(values), rel=1e-9)

    def test_bench_interleaved(self, benchmark):
        values = np.random.default_rng(0).normal(size=1024)
        total, _ = benchmark(interleaved_accumulate, values)
        assert total == pytest.approx(math.fsum(values), rel=1e-9)


class TestNumericalCost:
    def test_reassociation_error_negligible(self, benchmark):
        """Listing 1 reassociates the sum; the error must be rounding-level
        (the paper's engines would otherwise disagree with the library)."""
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=0.0, sigma=2.0, size=4096)

        def deviation():
            exact = math.fsum(values)
            inter, _ = interleaved_accumulate(values)
            return abs(inter - exact) / abs(exact)

        assert run_once(benchmark, deviation) < 1e-12
