"""Micro-benchmarks of the pricing kernels (real wall-clock on the host).

These characterise the software substrate itself: scalar reference pricer
versus the NumPy-vectorised batch pricer, curve evaluation primitives, and
the hazard bootstrap.  They follow the optimisation-guide workflow: measure
first, and verify that the vectorised path actually wins at batch scale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bootstrap import bootstrap_hazard_curve, implied_quotes
from repro.core.pricing import CDSPricer
from repro.core.vector_pricing import VectorCDSPricer
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def setup():
    wg = WorkloadGenerator(seed=11)
    yc = wg.yield_curve(1024)
    hc = wg.hazard_curve(1024)
    options = wg.portfolio(256)
    return yc, hc, options


class TestPricerBenchmarks:
    def test_bench_scalar_pricer_single(self, benchmark, setup):
        yc, hc, options = setup
        pricer = CDSPricer(yc, hc)
        result = benchmark(pricer.price, options[0])
        assert result.spread_bps > 0

    def test_bench_vector_pricer_batch(self, benchmark, setup):
        yc, hc, options = setup
        pricer = VectorCDSPricer(yc, hc)
        spreads = benchmark(pricer.spreads, options)
        assert spreads.shape == (256,)

    def test_vectorisation_wins_at_batch_scale(self, setup):
        """Guide principle: vectorised NumPy beats per-option Python loops
        for realistic batch sizes."""
        import time

        yc, hc, options = setup
        scalar = CDSPricer(yc, hc)
        vector = VectorCDSPricer(yc, hc)

        t0 = time.perf_counter()
        scalar.price_many(options)
        scalar_t = time.perf_counter() - t0
        t0 = time.perf_counter()
        vector.spreads(options)
        vector_t = time.perf_counter() - t0
        assert vector_t < scalar_t


class TestCurveBenchmarks:
    def test_bench_survival_vectorised(self, benchmark, setup):
        _, hc, _ = setup
        ts = np.linspace(0.01, 9.5, 10_000)
        out = benchmark(hc.survival, ts)
        assert np.all((out > 0) & (out <= 1))

    def test_bench_discount_vectorised(self, benchmark, setup):
        yc, _, _ = setup
        ts = np.linspace(0.01, 9.5, 10_000)
        out = benchmark(yc.discount, ts)
        assert np.all((out > 0) & (out <= 1))


class TestBootstrapBenchmark:
    def test_bench_bootstrap_ladder(self, benchmark, setup):
        yc, hc, _ = setup
        maturities = [1.0, 2.0, 3.0, 5.0, 7.0]
        quotes = implied_quotes(hc, yc, maturities)
        fitted = benchmark(bootstrap_hazard_curve, quotes, yc)
        assert len(fitted) == len(maturities)
