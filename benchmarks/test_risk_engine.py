"""Benchmark for the scenario-risk subsystem: repricings/sec versus cards.

The paper's motivating workload — "batch processing of financial data on
HPC machines, for instance overnight" — is exactly the scenario grid this
benchmark runs: every position repriced under every scenario.  The grid's
simulated cluster throughput must scale with cards just like the
portfolio batch does (same host model), and the *host-side* revaluation
numerics must stay deterministic and shard-invariant, which is what makes
the throughput roll-up trustworthy.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.risk import ScenarioRiskEngine, make_book, monte_carlo
from repro.workloads.scenarios import PaperScenario

CARD_COUNTS = (1, 2, 4)
N_SCENARIOS = 200


@pytest.fixture(scope="module")
def risk_setup():
    sc = PaperScenario(n_options=64)
    book = make_book("heterogeneous", sc.n_options, seed=7)
    engines = {
        n: ScenarioRiskEngine(book, scenario=sc, n_cards=n)
        for n in CARD_COUNTS
    }
    shocks = monte_carlo(
        engines[1].yield_curve, engines[1].hazard_curve, N_SCENARIOS, seed=7
    )
    return engines, shocks


@pytest.fixture(scope="module")
def revaluations(risk_setup):
    engines, shocks = risk_setup
    return {n: engine.revalue(shocks) for n, engine in engines.items()}


def test_grid_throughput_scales_with_cards(revaluations):
    rates = {
        n: rev.timing.repricings_per_second for n, rev in revaluations.items()
    }
    print("\nScenario-grid throughput (repricings/s):")
    for n in CARD_COUNTS:
        print(
            f"  {n} card(s): {rates[n]:>12,.0f}  "
            f"({rates[n] / rates[1]:.2f}x)"
        )
    assert rates[2] > rates[1]
    assert rates[4] > 2.0 * rates[1]  # the cluster acceptance bar


def test_measures_shard_invariant(revaluations):
    base = revaluations[1].pnl
    for n in CARD_COUNTS[1:]:
        np.testing.assert_array_equal(base, revaluations[n].pnl)


def test_grid_power_scales_with_active_cards(revaluations):
    one, four = revaluations[1].timing, revaluations[4].timing
    assert four.total_watts == pytest.approx(4 * one.total_watts, rel=1e-6)
    # Host contention costs a little efficiency, but no more than a few
    # percent under the default link model.
    assert four.repricings_per_watt > 0.95 * one.repricings_per_watt


def test_revaluation_wall_clock(benchmark, risk_setup):
    """One full grid revaluation, timed on the host (single round)."""
    engines, shocks = risk_setup
    run_once(benchmark, lambda: engines[4].revalue(shocks, with_timing=False))
