"""Benchmark: looped versus batched scenario-grid revaluation.

This is the loop-to-array transformation the paper's CPU baseline makes
with OpenMP/``-O3`` inner-loop vectorisation (Section II.B), applied to
the risk subsystem's hottest path: instead of one ``price_packed`` call
per scenario, the whole ``(scenarios x options x timepoints)`` tensor is
priced by a few chunked ``price_packed_many`` kernel invocations.

The run times both paths on the acceptance grid (1000 Monte Carlo
scenarios x 100 contracts), asserts the batched path is bit-identical
and >= 5x faster, and persists the numbers to ``BENCH_risk.json`` at the
repository root — the first entry of the repo's benchmark trajectory
(uploaded as a CI artifact by the workflow's non-blocking benchmark job).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.risk import ScenarioRiskEngine, make_book, monte_carlo
from repro.workloads.scenarios import PaperScenario

N_SCENARIOS = 1000
N_POSITIONS = 100
SPEEDUP_FLOOR = 5.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_risk.json"
#: Bump when the BENCH_risk.json payload shape changes.
BENCH_SCHEMA_VERSION = 1


def _best_of(fn, rounds: int) -> float:
    """Best wall-clock of ``rounds`` runs (noise-robust on shared CI)."""
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.fixture(scope="module")
def grid():
    sc = PaperScenario(n_options=N_POSITIONS)
    book = make_book("heterogeneous", N_POSITIONS, seed=7)
    engine = ScenarioRiskEngine(book, scenario=sc, n_cards=1)
    shocks = monte_carlo(
        engine.yield_curve,
        engine.hazard_curve,
        N_SCENARIOS,
        seed=7,
        recovery_vol=0.05,
    )
    return engine, shocks


@pytest.fixture(scope="module")
def measured(grid):
    engine, shocks = grid
    looped = engine.revalue(shocks, with_timing=False, batch=False)
    batched = engine.revalue(shocks, with_timing=False, batch=True)
    looped_s = _best_of(
        lambda: engine.revalue(shocks, with_timing=False, batch=False), 3
    )
    batched_s = _best_of(
        lambda: engine.revalue(shocks, with_timing=False, batch=True), 5
    )
    return looped, batched, looped_s, batched_s


def test_batched_grid_is_bit_identical(measured):
    looped, batched, _, _ = measured
    np.testing.assert_array_equal(batched.pv, looped.pv)
    np.testing.assert_array_equal(batched.pnl, looped.pnl)


def test_batched_grid_speedup_and_trajectory(measured):
    """>= 5x on the 1000 x 100 grid, recorded to BENCH_risk.json."""
    _, _, looped_s, batched_s = measured
    speedup = looped_s / batched_s
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "scenario_batching",
        "grid": {"n_scenarios": N_SCENARIOS, "n_positions": N_POSITIONS},
        "looped_seconds": round(looped_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(speedup, 2),
        "scenarios_per_sec_looped": round(N_SCENARIOS / looped_s, 1),
        "scenarios_per_sec_batched": round(N_SCENARIOS / batched_s, 1),
        "repricings_per_sec_batched": round(
            N_SCENARIOS * N_POSITIONS / batched_s, 1
        ),
        "chunk_size": "auto",
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print("\nScenario-grid revaluation (1000 scenarios x 100 contracts):")
    print(f"  looped : {looped_s:.3f}s ({N_SCENARIOS / looped_s:,.0f} scen/s)")
    print(f"  batched: {batched_s:.3f}s ({N_SCENARIOS / batched_s:,.0f} scen/s)")
    print(f"  speedup: {speedup:.1f}x  ->  {BENCH_PATH.name}")
    assert speedup >= SPEEDUP_FLOOR


def test_chunked_runs_match_auto(grid):
    """Explicit chunk sizes never change the numbers, only the memory."""
    engine, shocks = grid
    auto = engine.revalue(shocks, with_timing=False, batch=True)
    for chunk in (17, 256):
        chunked = engine.revalue(
            shocks, with_timing=False, batch=True, chunk_size=chunk
        )
        np.testing.assert_array_equal(chunked.pv, auto.pv)
