"""Benchmark: coalesced micro-batching versus batch-size-1 dispatch.

The serving layer's reason to exist: every dispatch pays a fixed
overhead (kernel invocation + PCIe setup + host scheduling), so pricing
requests one at a time caps a card's request rate at roughly
``1 / overhead`` regardless of how small the requests are.  Coalescing
amortises that overhead across a micro-batch — the same economics the
paper exploits by streaming whole option batches through one kernel
invocation, applied to live traffic.

The run replays an identical 12k-request trace (same offered load, same
seed) through the quote server twice — coalesced (size-or-linger) and
batch-size-1 — and compares **goodput**: responses that met their
deadline, per second.  Under overload the batch-1 server queues, misses
deadlines and sheds; the coalesced server keeps up.  The acceptance
floor is a 3x goodput ratio; the numbers are persisted to
``BENCH_serving.json`` (uploaded as a CI artifact next to
``BENCH_risk.json``).

Everything asserted here is *simulated* time, so the benchmark is
deterministic — host wall-clock is reported but never asserted.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.cluster.batching import BatchQueue
from repro.risk.engine import make_book
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario

N_REQUESTS = 12_000
RATE_HZ = 60_000.0
N_POSITIONS = 32
N_STATES = 256
N_CARDS = 4
GOODPUT_RATIO_FLOOR = 3.0
BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_serving.json"
#: Bump when the BENCH_serving.json payload shape changes.
BENCH_SCHEMA_VERSION = 1


@pytest.fixture(scope="module")
def setup():
    sc = PaperScenario(n_rates=256, n_options=N_POSITIONS)
    book = make_book("heterogeneous", N_POSITIONS, seed=7)
    tape = make_market_tape(sc.yield_curve(), sc.hazard_curve(), N_STATES, seed=7)
    requests = make_request_stream(
        N_REQUESTS,
        rate_hz=RATE_HZ,
        n_states=N_STATES,
        n_positions=N_POSITIONS,
        seed=7,
    )
    return sc, book, tape, requests


def _serve(setup, queue: BatchQueue):
    sc, book, tape, requests = setup
    server = QuoteServer(
        book,
        tape,
        scenario=sc,
        n_cards=N_CARDS,
        n_engines=5,
        queue=queue,
        queue_depth=2048,
    )
    t0 = time.perf_counter()
    result = server.serve(requests)
    return result, time.perf_counter() - t0


@pytest.fixture(scope="module")
def measured(setup):
    coalesced, coalesced_wall = _serve(
        setup, BatchQueue(max_batch=256, linger_s=5e-4)
    )
    batch1, batch1_wall = _serve(setup, BatchQueue(max_batch=1, linger_s=0.0))
    return coalesced, batch1, coalesced_wall, batch1_wall


def _row(result) -> dict:
    return {
        "goodput_rps": round(result.goodput_rps, 1),
        "throughput_rps": round(result.throughput_rps, 1),
        "shed_rate": round(result.shed_rate, 4),
        "deadline_hit_rate": round(result.deadline_hit_rate, 4),
        "p50_ms": round(result.latency.p50_s * 1e3, 3),
        "p95_ms": round(result.latency.p95_s * 1e3, 3),
        "p99_ms": round(result.latency.p99_s * 1e3, 3),
        "n_dispatches": result.n_dispatches,
        "mean_batch_requests": round(result.mean_batch_requests, 2),
    }


def test_identical_values_where_both_completed(measured):
    """Coalescing moves timing, never numbers."""
    coalesced, batch1, _, _ = measured
    a = {r.request_id: r.value for r in coalesced.responses}
    b = {r.request_id: r.value for r in batch1.responses}
    common = set(a) & set(b)
    assert len(common) > N_REQUESTS // 2
    assert all(a[i] == b[i] for i in common)


def test_goodput_ratio_and_trajectory(measured):
    """>= 3x goodput at the same offered load, recorded to BENCH_serving.json."""
    coalesced, batch1, coalesced_wall, batch1_wall = measured
    ratio = coalesced.goodput_rps / max(batch1.goodput_rps, 1e-9)
    payload = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": "serving_coalescing",
        "offered": {
            "n_requests": N_REQUESTS,
            "rate_hz": RATE_HZ,
            "n_cards": N_CARDS,
            "n_positions": N_POSITIONS,
            "n_states": N_STATES,
        },
        "coalesced": _row(coalesced),
        "batch1": _row(batch1),
        "goodput_ratio": round(ratio, 2),
        "host_wall_seconds": {
            "coalesced": round(coalesced_wall, 3),
            "batch1": round(batch1_wall, 3),
        },
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nServing goodput at {RATE_HZ:,.0f} req/s offered "
          f"({N_REQUESTS} requests, {N_CARDS} cards):")
    print(f"  batch-1  : {batch1.goodput_rps:10,.0f} req/s goodput, "
          f"p99 {batch1.latency.p99_s * 1e3:7.2f} ms, "
          f"shed {batch1.shed_rate:.1%}")
    print(f"  coalesced: {coalesced.goodput_rps:10,.0f} req/s goodput, "
          f"p99 {coalesced.latency.p99_s * 1e3:7.2f} ms, "
          f"shed {coalesced.shed_rate:.1%} "
          f"(mean batch {coalesced.mean_batch_requests:.1f})")
    print(f"  ratio    : {ratio:.1f}x  ->  {BENCH_PATH.name}")
    assert ratio >= GOODPUT_RATIO_FLOOR


def test_coalesced_keeps_latency_bounded(measured):
    """The linger bound shows up in the tail: coalesced p99 stays within
    a few linger windows; batch-1 queues unboundedly under overload."""
    coalesced, batch1, _, _ = measured
    assert coalesced.latency.p99_s < 10e-3
    assert batch1.latency.p99_s > coalesced.latency.p99_s
