"""Benchmark regenerating paper **Table I**: performance of the engine
versions against a Cascade Lake Xeon core and the Xilinx library engine.

Paper rows (options/second): CPU core 8738.92; Xilinx Vitis 3462.53;
Optimised Dataflow 7368.42; Dataflow inter-options 13298.70; Vectorised
27675.67.  The assertions check the *shape*: every optimisation step's
speedup factor within 25% of the paper's.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.compare import Comparison, shape_report
from repro.analysis.tables import generate_table1, render_table1
from repro.engines import (
    InterOptionDataflowEngine,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.workloads.scenarios import PAPER_TABLE1


@pytest.fixture(scope="module")
def table1(bench_scenario):
    return generate_table1(bench_scenario)


class TestTable1Rows:
    """One wall-clock benchmark per simulated engine row."""

    def test_bench_xilinx_baseline(self, benchmark, bench_scenario):
        result = run_once(benchmark, lambda: XilinxBaselineEngine(bench_scenario).run())
        assert result.options_per_second == pytest.approx(
            PAPER_TABLE1["xilinx_baseline"], rel=0.25
        )

    def test_bench_optimised_dataflow(self, benchmark, bench_scenario):
        result = run_once(
            benchmark, lambda: OptimisedDataflowEngine(bench_scenario).run()
        )
        assert result.options_per_second == pytest.approx(
            PAPER_TABLE1["optimised_dataflow"], rel=0.25
        )

    def test_bench_interoption(self, benchmark, bench_scenario):
        result = run_once(
            benchmark, lambda: InterOptionDataflowEngine(bench_scenario).run()
        )
        assert result.options_per_second == pytest.approx(
            PAPER_TABLE1["dataflow_interoption"], rel=0.25
        )

    def test_bench_vectorised(self, benchmark, bench_scenario):
        result = run_once(
            benchmark, lambda: VectorizedDataflowEngine(bench_scenario).run()
        )
        assert result.options_per_second == pytest.approx(
            PAPER_TABLE1["vectorised_dataflow"], rel=0.25
        )


class TestTable1Shape:
    def test_regenerate_and_check_shape(self, benchmark, table1):
        rows = {r.key: r.options_per_second for r in table1}
        paper = PAPER_TABLE1

        def build_report():
            comparisons = [
                Comparison(
                    "optimised dataflow / Xilinx baseline",
                    rows["optimised_dataflow"] / rows["xilinx_baseline"],
                    paper["optimised_dataflow"] / paper["xilinx_baseline"],
                ),
                Comparison(
                    "inter-options / optimised dataflow",
                    rows["dataflow_interoption"] / rows["optimised_dataflow"],
                    paper["dataflow_interoption"] / paper["optimised_dataflow"],
                ),
                Comparison(
                    "vectorised / inter-options",
                    rows["vectorised_dataflow"] / rows["dataflow_interoption"],
                    paper["vectorised_dataflow"] / paper["dataflow_interoption"],
                ),
                Comparison(
                    "vectorised / Xilinx baseline (the 8x headline)",
                    rows["vectorised_dataflow"] / rows["xilinx_baseline"],
                    paper["vectorised_dataflow"] / paper["xilinx_baseline"],
                ),
                Comparison(
                    "vectorised / CPU core (the 3.2x headline)",
                    rows["vectorised_dataflow"] / rows["cpu_single_core"],
                    paper["vectorised_dataflow"] / paper["cpu_single_core"],
                ),
            ]
            return comparisons

        comparisons = benchmark.pedantic(
            build_report, rounds=1, iterations=1, warmup_rounds=0
        )
        print()
        print(render_table1(table1))
        print()
        print(shape_report("Table I shape checks", comparisons))
        assert all(c.passes for c in comparisons)

    def test_every_row_within_tolerance(self, benchmark, table1):
        def check():
            return [r.ratio_to_paper for r in table1]

        ratios = run_once(benchmark, check)
        for key, ratio in zip((r.key for r in table1), ratios):
            assert ratio == pytest.approx(1.0, abs=0.25), key
