"""Benchmark regenerating paper **Table II**: performance and power when
scaling the FPGA CDS engines against the 24-core Xeon.

Paper rows: CPU 75823.77 opt/s @ 175.39 W (432.31 opt/W); 1 engine
27675.67 @ 35.86 W; 2 engines 53763.86 @ 35.79 W; 5 engines 114115.92 @
37.38 W (3052.86 opt/W).  Shape assertions: 5 engines beat the CPU by
~1.5x, power ratio ~4.7x, efficiency ratio ~7x, near-flat FPGA power.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.compare import Comparison, shape_report
from repro.analysis.tables import generate_table2, render_table2
from repro.engines import MultiEngineSystem
from repro.workloads.scenarios import PAPER_TABLE2


@pytest.fixture(scope="module")
def table2(scaling_scenario):
    return generate_table2(scaling_scenario, engine_counts=(1, 2, 5))


class TestTable2Rows:
    @pytest.mark.parametrize("n_engines", [1, 2, 5])
    def test_bench_fpga_engines(self, benchmark, scaling_scenario, n_engines):
        result = run_once(
            benchmark,
            lambda: MultiEngineSystem(scaling_scenario, n_engines=n_engines).run(),
        )
        key = f"fpga_{n_engines}_engine" + ("s" if n_engines > 1 else "")
        paper_rate = PAPER_TABLE2[key][0]
        assert result.options_per_second == pytest.approx(paper_rate, rel=0.25)


class TestTable2Shape:
    def test_regenerate_and_check_shape(self, benchmark, table2):
        rows = {r.key: r for r in table2}
        paper = PAPER_TABLE2

        def build():
            return [
                Comparison(
                    "5 engines / 24-core CPU (the 1.5x headline)",
                    rows["fpga_5_engines"].options_per_second
                    / rows["cpu_24_cores"].options_per_second,
                    paper["fpga_5_engines"][0] / paper["cpu_24_cores"][0],
                ),
                Comparison(
                    "CPU power / FPGA power (the 4.7x headline)",
                    rows["cpu_24_cores"].watts / rows["fpga_5_engines"].watts,
                    paper["cpu_24_cores"][1] / paper["fpga_5_engines"][1],
                ),
                Comparison(
                    "FPGA / CPU power efficiency (the 7x headline)",
                    rows["fpga_5_engines"].options_per_watt
                    / rows["cpu_24_cores"].options_per_watt,
                    paper["fpga_5_engines"][2] / paper["cpu_24_cores"][2],
                ),
                Comparison(
                    "2-engine scaling",
                    rows["fpga_2_engines"].options_per_second
                    / rows["fpga_1_engines"].options_per_second,
                    paper["fpga_2_engines"][0] / paper["fpga_1_engine"][0],
                    rel_tolerance=0.15,
                ),
                Comparison(
                    "5-engine scaling",
                    rows["fpga_5_engines"].options_per_second
                    / rows["fpga_1_engines"].options_per_second,
                    paper["fpga_5_engines"][0] / paper["fpga_1_engine"][0],
                ),
            ]

        comparisons = run_once(benchmark, build)
        print()
        print(render_table2(table2))
        print()
        print(shape_report("Table II shape checks", comparisons))
        assert all(c.passes for c in comparisons)

    def test_fpga_power_near_flat(self, benchmark, table2):
        rows = {r.key: r for r in table2}

        def delta():
            return rows["fpga_5_engines"].watts - rows["fpga_1_engines"].watts

        assert run_once(benchmark, delta) < 2.5

    def test_crossover_five_engines_beat_cpu(self, benchmark, table2):
        """The paper's crossover: 2 engines lose to the 24-core CPU, 5 win."""
        rows = {r.key: r for r in table2}

        def crossover():
            cpu = rows["cpu_24_cores"].options_per_second
            return (
                rows["fpga_2_engines"].options_per_second < cpu,
                rows["fpga_5_engines"].options_per_second > cpu,
            )

        two_loses, five_wins = run_once(benchmark, crossover)
        assert two_loses and five_wins
