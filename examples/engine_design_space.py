#!/usr/bin/env python
"""Design-space exploration: replication, ports, engine count.

The paper made three design choices: 6-fold replication of the hazard and
interpolation units, dual-ported URAM for the rate tables, and five engine
instances.  This example sweeps each axis with the simulator and prints the
throughput / resource / power trade-offs, including where each choice
saturates — the analysis a designer would run before committing a build.

Run:  python examples/engine_design_space.py
"""

from repro import MultiEngineSystem, PaperScenario, VectorizedDataflowEngine
from repro.analysis.sweep import sweep
from repro.engines.builder import engine_resources
from repro.errors import ResourceError
from repro.fpga.floorplan import max_engines


def main() -> None:
    base = PaperScenario(n_options=32)

    # ------------------------------------------------------------------
    # Axis 1: replication factor (paper Fig. 3 / Section III).
    # ------------------------------------------------------------------
    print("== Axis 1: hazard/interp replication (dual-ported URAM) ==")
    repl = sweep(
        "replication_factor",
        [1, 2, 3, 4, 6, 8],
        lambda sc: VectorizedDataflowEngine(sc).run().options_per_second,
        base=base,
    )
    print(repl.render(unit=" opt/s"))
    print("  -> saturates at the URAM port count (2): replicas beyond 2 buy "
          "little, which is why the paper's 6x replication gave ~2x.\n")

    # ------------------------------------------------------------------
    # Axis 2: table memory ports (more URAM copies).
    # ------------------------------------------------------------------
    print("== Axis 2: URAM read ports at replication 6 ==")
    ports = sweep(
        "uram_read_ports",
        [1, 2, 3, 6],
        lambda sc: VectorizedDataflowEngine(sc).run().options_per_second,
        base=base,
    )
    print(ports.render(unit=" opt/s"))
    print("  -> banking the tables (paper future work territory) would make "
          "the full 6x replication pay off.\n")

    # ------------------------------------------------------------------
    # Axis 3: engine count, resources and power efficiency.
    # ------------------------------------------------------------------
    print("== Axis 3: engine count on the U280 ==")
    # A bigger batch so each engine's chunk amortises its pipeline fill.
    base = PaperScenario(n_options=250)
    res = engine_resources(base, replication=base.replication_factor)
    limit = max_engines(base.device, res)
    print(f"one engine: {res.describe()}")
    print(f"fit limit on {base.device.name}: {limit} engines")
    for n in range(1, limit + 2):
        try:
            system = MultiEngineSystem(base, n_engines=n)
        except ResourceError as exc:
            print(f"  {n} engines: DOES NOT FIT ({exc})")
            continue
        run = system.run()
        watts = system.power_watts()
        print(
            f"  {n} engines: {run.options_per_second:>10,.0f} opt/s, "
            f"{watts:5.1f} W, {run.options_per_second / watts:>8,.1f} opt/s/W"
        )
    print("\n  -> power is near-flat in engine count, so efficiency scales "
          "almost linearly — the paper's Table II story.")


if __name__ == "__main__":
    main()
