"""Live serving walkthrough: micro-batched quotes on the cluster.

Builds a signed CDS book and a live market tape, replays the same
bursty request stream through the quote server twice — coalesced
micro-batching versus batch-size-1 dispatch — and prints the latency,
goodput and shed numbers side by side, plus a sweep over the linger
knob (the latency-vs-amortisation trade every serving stack tunes).

Run with: ``PYTHONPATH=src python examples/live_serving.py``
"""

from __future__ import annotations

from repro.cluster.batching import BatchQueue
from repro.risk import make_book
from repro.serving import QuoteServer, make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario


def main() -> None:
    scenario = PaperScenario(n_rates=256, n_options=32)
    book = make_book("heterogeneous", 32, seed=7)
    tape = make_market_tape(
        scenario.yield_curve(), scenario.hazard_curve(), 256, seed=7
    )
    requests = make_request_stream(
        8_000,
        rate_hz=40_000.0,
        n_states=256,
        n_positions=32,
        traffic="bursty",
        seed=7,
    )
    print(
        f"offered load: {len(requests)} requests (bursty, 40k req/s) "
        f"against a {len(book)}-position book on 4 cards\n"
    )

    for label, queue in [
        ("batch-1  ", BatchQueue(max_batch=1, linger_s=0.0)),
        ("coalesced", BatchQueue(max_batch=256, linger_s=5e-4)),
    ]:
        server = QuoteServer(
            book, tape, scenario=scenario, n_cards=4, queue=queue
        )
        result = server.serve(requests)
        print(f"{label}: {result.summary()}")

    print("\nlinger sweep (coalesced, max batch 256):")
    for linger_us in (100, 250, 500, 1000, 2000):
        server = QuoteServer(
            book,
            tape,
            scenario=scenario,
            n_cards=4,
            queue=BatchQueue(max_batch=256, linger_s=linger_us * 1e-6),
        )
        r = server.serve(requests)
        print(
            f"  linger {linger_us:>5} us: mean batch "
            f"{r.mean_batch_requests:6.1f}, p99 "
            f"{r.latency.p99_s * 1e3:6.2f} ms, goodput "
            f"{r.goodput_rps:10,.0f} req/s"
        )


if __name__ == "__main__":
    main()
