#!/usr/bin/env python
"""End-to-end paper reproduction: both tables and all three figures.

Regenerates every quantitative artefact of the paper from the simulated
engines and calibrated models, printing measured values next to the
published ones.

Run:  python examples/paper_reproduction.py
"""

from repro.analysis.figures import (
    figure1_baseline,
    figure2_dataflow,
    figure3_vectorised,
)
from repro.analysis.tables import (
    generate_table1,
    generate_table2,
    render_table1,
    render_table2,
)
from repro.workloads.scenarios import PaperScenario


def main() -> None:
    scenario = PaperScenario(n_options=64)

    print("=" * 72)
    print("Table I — performance of the engine versions (options/second)")
    print("=" * 72)
    print(render_table1(generate_table1(scenario)))

    scaling = PaperScenario(n_options=250)
    print()
    print("=" * 72)
    print("Table II — performance and power when scaling up")
    print("=" * 72)
    print(render_table2(generate_table2(scaling)))

    print()
    print("=" * 72)
    print("Figure 1 — structure of the Xilinx CDS engine")
    print("=" * 72)
    print(figure1_baseline().to_ascii())

    print()
    print("=" * 72)
    print("Figure 2 — our CDS dataflow architecture")
    print("=" * 72)
    print(figure2_dataflow(scenario).to_ascii())

    print()
    print("=" * 72)
    print("Figure 3 — vectorisation of the defaulting probability calculation")
    print("=" * 72)
    fig3 = figure3_vectorised(scenario)
    print(fig3.to_ascii())
    groups = fig3.groups()
    print(f"\nreplica clusters: hazard x{len(groups['hazard'])}, "
          f"interp x{len(groups['interp'])}")
    print("\nGraphviz versions: use .to_dot() on any figure object, e.g.")
    print("  python -m repro figures --dot > figures.dot && dot -Tpng ...")


if __name__ == "__main__":
    main()
