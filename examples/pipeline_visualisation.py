#!/usr/bin/env python
"""Visualising pipeline fill/drain — why "inter-options" wins.

The paper's second optimisation removed the per-option restart of the
dataflow region because "the pipelines were also continually filling and
draining".  This example attaches an event tracer to both execution styles
and prints FIFO-occupancy timelines that make the difference visible:
the per-option region's streams drain to empty at every option boundary,
while the free-running region's bottleneck input stays busy.

Run:  python examples/pipeline_visualisation.py
"""

from repro.dataflow.engine import Simulator
from repro.dataflow.stats import utilisation_table
from repro.dataflow.tracing import Trace
from repro.telemetry import SpanRecorder
from repro.engines.base import EngineWorkload
from repro.engines.builder import build_dataflow_network
from repro.engines.stages import StageModels
from repro.workloads.scenarios import PaperScenario


def run_traced(scenario: PaperScenario, indices: list[int], name: str):
    """Build, trace and run one region invocation."""
    wl = EngineWorkload.build(
        scenario.options(), scenario.yield_curve(), scenario.hazard_curve()
    )
    models = StageModels.for_scenario(scenario, interleaved=True)
    sim = Simulator(name)
    # The tracer doubles as a telemetry adapter: every stream event is
    # mirrored into the span recorder, exportable via repro.telemetry.
    trace = Trace(recorder=SpanRecorder())
    sim.tracer = trace
    build_dataflow_network(
        sim, wl, indices, models, stream_depth=scenario.stream_depth
    )
    result = sim.run()
    return trace, result


def occupancy_strip(trace: Trace, stream: str, t_end: float, buckets: int = 60) -> str:
    """Render a stream's occupancy over time as a character strip."""
    cells = []
    for i in range(buckets):
        occ = trace.occupancy_at(stream, t_end * (i + 0.5) / buckets)
        cells.append(" .:#@"[min(occ, 4)])
    return "".join(cells)


def main() -> None:
    scenario = PaperScenario(n_rates=256, n_options=4)
    stream = "tg->interp"  # input of the bottleneck stage

    print("== Per-option region restart (optimised dataflow engine) ==")
    print("each option is a separate invocation; streams drain in between\n")
    per_option_cycles = 0.0
    for oi in range(scenario.n_options):
        trace, result = run_traced(scenario, [oi], f"per_option[{oi}]")
        per_option_cycles += result.makespan_cycles
        strip = occupancy_strip(trace, stream, result.makespan_cycles)
        print(f"option {oi}: |{strip}| {result.makespan_cycles:8.0f} cycles")

    print("\n== Free-running region (inter-option engine) ==")
    trace, result = run_traced(
        scenario, list(range(scenario.n_options)), "free_running"
    )
    strip = occupancy_strip(trace, stream, result.makespan_cycles)
    print(f"batch   : |{strip}| {result.makespan_cycles:8.0f} cycles")
    print(f"\nlegend: ' '=empty  .=1  :=2  #=3  @=4+ tokens in {stream!r}")

    saved = per_option_cycles - result.makespan_cycles
    print(f"\nper-option total: {per_option_cycles:,.0f} cycles")
    print(f"free-running:     {result.makespan_cycles:,.0f} cycles "
          f"({saved / per_option_cycles:.0%} saved before even counting the "
          f"{scenario.invocation_overhead_cycles:,.0f}-cycle invocation overhead)")

    print("\n== Stage utilisation in the free-running region ==")
    print(utilisation_table(result))


if __name__ == "__main__":
    main()
