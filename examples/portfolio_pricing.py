#!/usr/bin/env python
"""Overnight batch pricing: the workload the paper's introduction motivates.

A risk desk holds a book of CDS positions and must reprice it within a
batch window.  This example:

1. bootstraps a hazard curve from a market quote ladder (inverse problem),
2. generates a heterogeneous 500-option book,
3. prices it on the host CPU engine (real NumPy execution),
4. prices it on the simulated five-engine U280 deployment,
5. cross-checks the numbers and compares throughput and energy.

Run:  python examples/portfolio_pricing.py
"""

import numpy as np

from repro import MultiEngineSystem, PaperScenario
from repro.core.bootstrap import CDSQuote, bootstrap_hazard_curve
from repro.cpu.engine import CPUEngine
from repro.workloads.generator import WorkloadGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Market data: bootstrap the hazard curve from quoted par spreads.
    # ------------------------------------------------------------------
    wg = WorkloadGenerator(seed=99)
    yield_curve = wg.yield_curve(1024)
    quotes = [
        CDSQuote(maturity=1.0, spread_bps=55.0),
        CDSQuote(maturity=2.0, spread_bps=68.0),
        CDSQuote(maturity=3.0, spread_bps=80.0),
        CDSQuote(maturity=5.0, spread_bps=104.0),
        CDSQuote(maturity=7.0, spread_bps=123.0),
    ]
    hazard_curve = bootstrap_hazard_curve(quotes, yield_curve)
    print("== Bootstrapped hazard curve ==")
    for t, lam in zip(hazard_curve.times, hazard_curve.values):
        print(f"  ({t:>4.1f}y] intensity {lam:.4%}")

    # ------------------------------------------------------------------
    # 2. The book: 500 heterogeneous positions.
    # ------------------------------------------------------------------
    book = wg.portfolio(500, maturity_range=(0.5, 7.0))
    print(f"\n== Book: {len(book)} CDS positions ==")

    # ------------------------------------------------------------------
    # 3. Host CPU engine (real execution on this machine).
    # ------------------------------------------------------------------
    cpu = CPUEngine(yield_curve, hazard_curve)
    cpu_run = cpu.run(book)
    print("\n== Host CPU engine (NumPy, this machine) ==")
    print(f"  {cpu_run.options_per_second:,.0f} options/s "
          f"({cpu_run.elapsed_seconds * 1e3:.2f} ms)")

    # ------------------------------------------------------------------
    # 4. Simulated five-engine U280 deployment.
    # ------------------------------------------------------------------
    scenario = PaperScenario()
    fpga = MultiEngineSystem(scenario, n_engines=5)
    fpga_run = fpga.run(options=book, yield_curve=yield_curve, hazard_curve=hazard_curve)
    print("\n== Simulated U280, 5 engines ==")
    print(f"  {fpga_run.options_per_second:,.0f} options/s "
          f"({fpga_run.seconds * 1e3:.2f} ms batch, PCIe included)")
    print(f"  card power {fpga.power_watts():.1f} W -> "
          f"{fpga_run.options_per_second / fpga.power_watts():,.0f} options/s/W")
    print(fpga.floorplan.describe())

    # ------------------------------------------------------------------
    # 5. Cross-check: both engines must agree with each other.
    # ------------------------------------------------------------------
    max_dev = float(np.max(np.abs(fpga_run.spreads_bps - cpu_run.spreads_bps)))
    print(f"\nmax |FPGA - CPU| spread deviation: {max_dev:.3e} bps")
    assert max_dev < 1e-9, "engines disagree!"

    worst = int(np.argmax(fpga_run.spreads_bps))
    print(f"widest spread in book: {fpga_run.spreads_bps[worst]:.1f} bps "
          f"(maturity {book[worst].maturity:.2f}y, "
          f"recovery {book[worst].recovery_rate:.0%})")


if __name__ == "__main__":
    main()
