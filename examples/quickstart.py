#!/usr/bin/env python
"""Quickstart: price a CDS and run the paper's fastest FPGA engine.

Run:  python examples/quickstart.py
"""

from repro import (
    CDSOption,
    HazardCurve,
    PaperScenario,
    VectorizedDataflowEngine,
    YieldCurve,
    price_cds,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Price one CDS with the reference pricer.
    # ------------------------------------------------------------------
    yield_curve = YieldCurve([0.5, 1.0, 2.0, 5.0, 10.0], [0.010, 0.013, 0.017, 0.022, 0.026])
    hazard_curve = HazardCurve([1.0, 3.0, 5.0, 10.0], [0.010, 0.014, 0.019, 0.028])
    option = CDSOption(maturity=5.0, frequency=4, recovery_rate=0.40)

    result = price_cds(option, yield_curve, hazard_curve)
    print("== Reference pricer ==")
    print(f"5y quarterly CDS, 40% recovery: spread = {result.spread_bps:.2f} bps "
          f"({result.spread_pct:.4f}% of notional)")
    legs = result.legs
    print(f"  premium leg   {legs.premium_leg:.6f}")
    print(f"  protection leg {legs.protection_leg:.6f}")
    print(f"  accrual leg   {legs.accrual_leg:.6f}")
    print(f"  survival to maturity {legs.survival_at_maturity:.4f}")

    # ------------------------------------------------------------------
    # 2. Run the paper's vectorised dataflow engine on the same workload
    #    (simulated Alveo U280; paper scenario: 1024-entry rate tables).
    # ------------------------------------------------------------------
    scenario = PaperScenario(n_options=32)
    engine = VectorizedDataflowEngine(scenario)
    run = engine.run()

    print("\n== Vectorised dataflow engine (simulated U280) ==")
    print(run.summary())
    print(f"  first spread: {run.spreads_bps[0]:.2f} bps")
    print(f"  kernel time:  {scenario.clock.seconds(run.kernel_cycles) * 1e3:.2f} ms "
          f"at {scenario.clock.frequency_hz / 1e6:.0f} MHz")
    print(f"  PCIe overhead: {run.pcie_seconds * 1e6:.1f} us (included in the rate)")
    print(f"  paper's Table I row: 27,675.67 options/s")

    # ------------------------------------------------------------------
    # 3. The same engine through the unified pricing API: one session,
    #    any registered backend (see examples/unified_api.py for more).
    # ------------------------------------------------------------------
    from repro import open_session

    with open_session("dataflow", scenario.options(), scenario=scenario) as s:
        result = s.price_state(scenario.yield_curve(), scenario.hazard_curve())
    print("\n== Same run via repro.api.open_session('dataflow', ...) ==")
    print(f"  spreads bit-identical: "
          f"{bool((result.spreads_bps[0] == run.spreads_bps).all())}")
    print(f"  simulated timing in result.meta: "
          f"{result.meta['engine_result'].summary()}")


if __name__ == "__main__":
    main()
