#!/usr/bin/env python
"""Risk sensitivities, reduced precision and streaming latency.

Three production-facing extensions around the paper's engine:

1. **Greeks** — CS01/IR01/JTD for a book (the numbers an overnight batch
   actually feeds to risk systems);
2. **Reduced precision** — the paper's future-work study: binary32 error
   versus the engine speedup and density it buys;
3. **Streaming latency** — per-option completion cadence of the
   free-running engine, the metric an AAT/HFT integration (the paper's
   other future-work direction) would care about.

Run:  python examples/risk_and_latency.py
"""

from repro.analysis.latency import measure_streaming_latency
from repro.core.precision import run_precision_study
from repro.core.risk import RiskEngine
from repro.engines import VectorizedDataflowEngine
from repro.engines.builder import engine_resources
from repro.fpga.floorplan import max_engines
from repro.workloads.generator import WorkloadGenerator
from repro.workloads.scenarios import PaperScenario


def main() -> None:
    wg = WorkloadGenerator(seed=7)
    yc, hc = wg.yield_curve(1024), wg.hazard_curve(1024)
    book = wg.portfolio(50, maturity_range=(0.5, 8.0))

    # ------------------------------------------------------------------
    # 1. Greeks for the book.
    # ------------------------------------------------------------------
    risk = RiskEngine(yc, hc)
    totals = risk.portfolio_totals(book)
    print("== Book greeks (unit notionals, positions struck at par) ==")
    print(f"  positions: {len(book)}")
    print(f"  CS01  {totals.cs01:+.6f} per bp of spread")
    print(f"  IR01  {totals.ir01:+.6f} per bp of rates")
    print(f"  JTD   {totals.jtd:+.4f} on immediate default")
    print(f"  Rec01 {totals.rec01:+.6f} per recovery point")

    singles = risk.greeks(book)
    riskiest = max(range(len(book)), key=lambda i: singles[i].cs01)
    print(f"  largest CS01: position {riskiest} "
          f"(maturity {book[riskiest].maturity:.2f}y): "
          f"{singles[riskiest].cs01:.6f}")

    # ------------------------------------------------------------------
    # 2. Reduced precision: accuracy vs speed vs density.
    # ------------------------------------------------------------------
    print("\n== Reduced precision (paper future work) ==")
    report = run_precision_study(book, yc, hc)
    print(f"  {report.render()}")
    print(f"  fine for quoting (0.01 bp): {report.acceptable_for_quoting()}")

    dp = PaperScenario(n_options=32)
    sp = dp.with_overrides(precision="single")
    r_dp = VectorizedDataflowEngine(dp).run().options_per_second
    r_sp = VectorizedDataflowEngine(sp).run().options_per_second
    n_dp = max_engines(dp.device, engine_resources(dp, replication=6))
    n_sp = max_engines(sp.device, engine_resources(sp, replication=6))
    print(f"  engine speed:   double {r_dp:,.0f} -> single {r_sp:,.0f} opt/s "
          f"({r_sp / r_dp:.2f}x)")
    print(f"  engines/card:   double {n_dp} -> single {n_sp}")
    print(f"  card projection: ~{(r_sp / r_dp) * (n_sp / n_dp):.1f}x the "
          f"double-precision card throughput")

    # ------------------------------------------------------------------
    # 3. Streaming latency of the free-running engine.
    # ------------------------------------------------------------------
    print("\n== Streaming latency (toward the AAT integration) ==")
    sc = PaperScenario(n_options=40)
    profile = measure_streaming_latency(sc)
    print(profile.render(sc.clock.frequency_hz))
    unreplicated = measure_streaming_latency(sc, replication=1)
    print(f"  (without Fig. 3 replication the steady cadence would be "
          f"{unreplicated.steady_cadence_cycles * 1e6 / sc.clock.frequency_hz:.1f} us)")


if __name__ == "__main__":
    main()
