"""Scenario VaR walkthrough: the overnight risk batch on the cluster.

Builds a signed CDS book, draws a correlated Monte Carlo scenario set
with a calm/stressed regime mixture, reprices the book under every
scenario sharded across four simulated cluster cards, and prints the
P&L distribution, VaR/ES, sensitivity ladders and the cluster's
simulated throughput for the run.

Run with: ``PYTHONPATH=src python examples/scenario_var.py``
"""

from __future__ import annotations

import numpy as np

from repro.risk import (
    CALM_STRESSED_REGIMES,
    ScenarioRiskEngine,
    cs01_ladder,
    ir01_ladder,
    jtd_concentration,
    make_book,
    monte_carlo,
    tail_measures,
)
from repro.workloads.scenarios import PaperScenario


def main() -> None:
    scenario = PaperScenario(n_options=64)
    book = make_book("heterogeneous", scenario.n_options, seed=7)
    engine = ScenarioRiskEngine(
        book,
        scenario=scenario,
        n_cards=4,
        scheduler="least-loaded",
    )
    print(
        f"book: {len(book)} positions, gross notional "
        f"{book.gross_notional:,.2f}, "
        f"{sum(p.is_buyer for p in book)} buyers / "
        f"{sum(not p.is_buyer for p in book)} sellers"
    )

    shocks = monte_carlo(
        engine.yield_curve,
        engine.hazard_curve,
        2000,
        seed=7,
        regimes=CALM_STRESSED_REGIMES,
        recovery_vol=0.02,
    )
    rev = engine.revalue(shocks)

    print(f"\nscenario P&L over {rev.n_scenarios} draws:")
    print(f"  mean {rev.pnl.mean():+.6f}, std {rev.pnl.std():.6f}")
    worst_label, worst = rev.worst()
    print(f"  worst {worst:+.6f} ({worst_label})")

    stressed = np.array([":stressed" in s.label for s in shocks])
    print(
        f"  stressed-regime share of the 5% tail: "
        f"{stressed[np.argsort(rev.pnl)[: len(shocks) // 20]].mean():.0%}"
    )

    print("\ntail measures:")
    for m in tail_measures(rev.pnl, (0.95, 0.99)):
        print(f"  {m.confidence:.0%}: VaR {m.var:.6f}  ES {m.es:.6f}")

    print()
    print(cs01_ladder(engine).render())
    print(ir01_ladder(engine).render())

    conc = jtd_concentration(engine)
    print(
        f"\nJTD concentration: gross {conc.gross:.2f}, top-{conc.top_n} share "
        f"{conc.top_share:.0%}, HHI {conc.herfindahl:.3f}"
    )
    print(f"\ncluster roll-up: {rev.timing.summary()}")


if __name__ == "__main__":
    main()
