#!/usr/bin/env python
"""Unified pricing API: one session, four backends, identical numbers.

Walks the PR-5 surface: open a session on each registered backend, price
the same book, batch a scenario tensor through the cluster backend, and
register a toy custom backend that immediately works everywhere.

Run:  python examples/unified_api.py
"""

import numpy as np

from repro import PaperScenario
from repro.api import (
    BackendCapabilities,
    PriceResult,
    PricingBackend,
    available_backends,
    open_session,
    register_backend,
    unregister_backend,
)
from repro.risk import monte_carlo


def main() -> None:
    scenario = PaperScenario(n_rates=64, n_options=8)
    options = scenario.options()
    yc, hc = scenario.yield_curve(), scenario.hazard_curve()

    # ------------------------------------------------------------------
    # 1. The registry: every execution target behind one protocol.
    # ------------------------------------------------------------------
    print("== Registered backends ==")
    print("  " + ", ".join(available_backends()))

    # ------------------------------------------------------------------
    # 2. One request shape, every backend; the numbers agree.
    # ------------------------------------------------------------------
    print("\n== Same book, same state, every backend ==")
    config = {"dataflow": {"scenario": scenario}, "cluster": {"n_cards": 2}}
    spreads = {}
    for name in available_backends():
        with open_session(name, options, **config.get(name, {})) as session:
            spreads[name] = session.spreads(yc, hc)
            caps = session.capabilities
            flags = "".join(
                "x" if flag else "-"
                for flag in (
                    caps.supports_batch_tensor,
                    caps.supports_streaming,
                    caps.supports_legs,
                    caps.simulated_timing,
                )
            )
            print(
                f"  {name:<12} [tensor/stream/legs/simt {flags}] "
                f"first spread {spreads[name][0]:.6f} bps"
            )
    worst = max(
        float(np.max(np.abs(spreads[n] - spreads["cpu"]))) for n in spreads
    )
    print(f"  max deviation from the scalar reference: {worst:.2e} bps")

    # ------------------------------------------------------------------
    # 3. Tensor batching through the cluster backend: one call prices a
    #    whole Monte-Carlo scenario grid, sharded across cards.
    # ------------------------------------------------------------------
    print("\n== Scenario tensor through cluster(base=vectorized) ==")
    shocks = monte_carlo(yc, hc, 5_000, seed=7)
    with open_session(
        "cluster", options, base="vectorized", n_cards=4
    ) as session:
        surface = session.price_tensor(shocks.tensor, want_legs=True)
    print(f"  spread surface {surface.spreads_bps.shape}")
    rows_per_card = [len(c) for c in surface.meta["assignment"]]
    print(f"  rows per card  {rows_per_card} ({surface.meta['policy']})")
    pv = surface.legs.buyer_pv(np.zeros(len(options)))
    print(f"  zero-spread buyer PV of option 0, scenario 0: {pv[0, 0]:.6f}")

    # ------------------------------------------------------------------
    # 4. A custom backend is a registry entry, not a fork.
    # ------------------------------------------------------------------
    print("\n== Registering a toy custom backend ==")

    class MidpointBackend(PricingBackend):
        """Quotes the midpoint of the book's min/max reference spreads."""

        name = "midpoint"
        capabilities = BackendCapabilities(
            supports_batch_tensor=False,
            supports_streaming=False,
            supports_legs=False,
            simulated_timing=False,
            description="toy example backend",
        )

        def _price_state(self, request) -> PriceResult:
            from repro.core.pricing import CDSPricer

            pricer = CDSPricer(
                yield_curve=request.yield_curve,
                hazard_curve=request.hazard_curve,
            )
            ref = np.asarray(
                [pricer.price(o).spread_bps for o in self.options]
            )
            mid = 0.5 * (ref.min() + ref.max())
            return PriceResult(
                backend=self.name,
                spreads_bps=np.full((1, self.n_options), mid),
            )

    register_backend("midpoint", MidpointBackend)
    try:
        with open_session("midpoint", options) as session:
            print(f"  midpoint quote: {session.spreads(yc, hc)[0]:.6f} bps")
            # Capability negotiation: a 3-row tensor request decomposes
            # into three per-state calls automatically.
            small = monte_carlo(yc, hc, 3, seed=1)
            result = session.price_tensor(small.tensor)
            print(
                f"  tensor request negotiated: {result.meta['negotiated']} "
                f"({result.meta['n_calls']} state calls)"
            )
    finally:
        unregister_backend("midpoint")
    print("  unregistered; registry restored")


if __name__ == "__main__":
    main()
