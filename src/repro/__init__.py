"""repro — reproduction of *Optimisation of an FPGA Credit Default Swap
engine by embracing dataflow techniques* (Brown, Klaisoongnoen, Thomson
Brown; IEEE CLUSTER 2021; arXiv:2108.03982).

The package contains the full system described in the paper, rebuilt in
Python around a cycle-level HLS dataflow simulator:

* :mod:`repro.core` — CDS pricing mathematics (curves, schedules, reference
  and vectorised pricers, hazard bootstrap).
* :mod:`repro.dataflow` — the discrete-event dataflow simulator (streams,
  processes, regions, analytic models).
* :mod:`repro.hls` — HLS construct models (operator latencies, pragmas, the
  Listing-1 accumulator, interpolation units, resources, reports).
* :mod:`repro.fpga` — Alveo U280 platform models (device, HBM, PCIe, power,
  floorplanning).
* :mod:`repro.cpu` — the CPU baseline (runnable engine + calibrated Xeon
  model).
* :mod:`repro.engines` — the five engine variants of Tables I and II.
* :mod:`repro.cluster` — multi-card cluster scaling: sharding schedulers,
  host interconnect contention, request batching ("Table II extended").
* :mod:`repro.risk` — portfolio scenario risk: shocked market states
  (parallel/bucketed/historical/Monte-Carlo), cluster-sharded
  bump-and-reprice, VaR/ES and sensitivity ladders.
* :mod:`repro.serving` — live quote serving: micro-batched request
  coalescing, deadline/priority scheduling, admission control and
  latency/goodput accounting on top of the cluster.
* :mod:`repro.api` — the **unified pricing API**: one
  :class:`~repro.api.PricingBackend` protocol, a string-keyed backend
  registry (``cpu``, ``vectorized``, ``dataflow``, ``cluster``) and the
  :class:`~repro.api.PricingSession` facade every consumer layer (risk,
  serving, analysis, CLI) prices through.
* :mod:`repro.workloads` — workload generators and the paper scenario.
* :mod:`repro.sim` — the unified system-level event core (clock, event
  queue, busy-window resources) cluster, risk and serving replay on.
* :mod:`repro.telemetry` — simulated-time spans, a metrics registry and
  trace exporters over everything on the shared clock.
* :mod:`repro.faults` — deterministic fault injection: seeded failure
  plans, cluster-health projection, retry/hedging/breaker policies and
  resilience reporting.
* :mod:`repro.gateway` — the multi-tenant gateway in front of N quote
  servers: consistent-hash routing, per-tenant admission quotas and a
  market-state-keyed quote cache with single-flight dedup.
* :mod:`repro.analysis` — metrics, table/figure renderers, sweeps,
  paper comparison.

Quickstart
----------
Open a pricing session on any registered backend — the one public entry
point into the pricing core:

>>> from repro import PaperScenario, open_session
>>> sc = PaperScenario(n_options=16)
>>> with open_session("vectorized", sc.options()) as session:
...     result = session.price_state(sc.yield_curve(), sc.hazard_curve())
>>> result.spreads_bps.shape
(1, 16)

The five simulated FPGA engine variants remain available directly for the
paper tables (``open_session("dataflow", ...)`` wraps them behind the
same protocol, with the simulated timing in ``result.meta``):

>>> from repro import VectorizedDataflowEngine
>>> VectorizedDataflowEngine(sc).run().spreads_bps.shape
(16,)
"""

from repro.core import (
    CDSOption,
    CDSResult,
    Curve,
    HazardCurve,
    YieldCurve,
    price_cds,
    price_portfolio,
)
from repro.api import (
    BackendCapabilities,
    PriceRequest,
    PriceResult,
    PricingBackend,
    PricingSession,
    available_backends,
    open_session,
    register_backend,
)
from repro.core.precision import run_precision_study
from repro.core.risk import RiskEngine
from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.cluster import CDSCluster
from repro.risk import Portfolio, Position, ScenarioRiskEngine, make_book
from repro.serving import QuoteServer
from repro.gateway import Gateway
from repro.workloads import PaperScenario
from repro.errors import ReproError

__version__ = "1.10.0"

__all__ = [
    "CDSOption",
    "CDSResult",
    "Curve",
    "YieldCurve",
    "HazardCurve",
    "price_cds",
    "price_portfolio",
    "XilinxBaselineEngine",
    "OptimisedDataflowEngine",
    "InterOptionDataflowEngine",
    "VectorizedDataflowEngine",
    "MultiEngineSystem",
    "CDSCluster",
    "PaperScenario",
    "ReproError",
    "RiskEngine",
    "ScenarioRiskEngine",
    "Portfolio",
    "Position",
    "make_book",
    "QuoteServer",
    "Gateway",
    "run_precision_study",
    "open_session",
    "PricingSession",
    "PricingBackend",
    "PriceRequest",
    "PriceResult",
    "BackendCapabilities",
    "available_backends",
    "register_backend",
    "__version__",
]
