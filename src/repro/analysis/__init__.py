"""Analysis layer: metrics, paper tables and figures, sweeps, comparison.

``metrics``
    Throughput/speedup/efficiency arithmetic shared by tables and benches.
``tables``
    Regenerate paper Table I (engine versions) and Table II (scaling and
    power) from the simulated engines and calibrated CPU models.
``figures``
    Regenerate paper Figures 1-3 as DOT/ASCII topology diagrams extracted
    from the live engine networks.
``sweep``
    Generic parameter-sweep harness used by the ablation benchmarks.
``compare``
    Paper-vs-measured comparison records with tolerance checking — the
    machinery behind EXPERIMENTS.md.
``cluster``
    "Table II extended": aggregate throughput/power rows for multi-card
    cluster configurations (:mod:`repro.cluster`).
``risk``
    The portfolio risk report: scenario VaR/ES, CS01/IR01 ladders and
    cluster roll-up for the ``repro-cds risk`` subcommand
    (:mod:`repro.risk`).
``serving``
    The live serving report: tail latency, goodput and shed rates of a
    micro-batched request replay for the ``repro-cds serve`` subcommand
    (:mod:`repro.serving`).
``simulate``
    The mixed-workload simulation report: bursty quotes plus a periodic
    risk-refresh heartbeat sharing one cluster on one :mod:`repro.sim`
    clock, for the ``repro-cds simulate`` subcommand.
``chaos``
    The resilience matrix: the serving workload replayed under a family
    of :mod:`repro.faults` plans, rolled up into one recovery table for
    the ``repro-cds chaos`` subcommand.
``gateway``
    The multi-tenant gateway report: consistent-hash routing, per-tenant
    admission and quote-cache economics over N servers for the
    ``repro-cds gateway`` subcommand (:mod:`repro.gateway`).
"""

from repro.analysis.metrics import (
    options_per_watt,
    relative_error,
    speedup,
)
from repro.analysis.tables import (
    Table1Row,
    Table2Row,
    generate_table1,
    generate_table2,
    render_table1,
    render_table2,
)
from repro.analysis.figures import (
    figure1_baseline,
    figure2_dataflow,
    figure3_vectorised,
)
from repro.analysis.sweep import SweepResult, sweep
from repro.analysis.compare import Comparison, compare_ratio, shape_report
from repro.analysis.latency import LatencyProfile, measure_streaming_latency
from repro.analysis.capacity import (
    DeploymentPlan,
    compare_platforms,
    plan_cpu_deployment,
    plan_fpga_deployment,
)
from repro.analysis.session import SessionResult, simulate_market_session
from repro.analysis.cluster import (
    ClusterTableRow,
    generate_cluster_table,
    render_cluster_table,
)
from repro.analysis.risk import (
    RiskReport,
    generate_risk_report,
    render_risk_report,
    risk_report_dict,
)
from repro.analysis.serving import (
    ServingReport,
    generate_serving_report,
    render_serving_report,
    serving_report_dict,
)
from repro.analysis.simulate import (
    SimulationReport,
    generate_simulation_report,
    render_simulation_report,
    simulation_report_dict,
)
from repro.analysis.chaos import (
    DEFAULT_CHAOS_MATRIX,
    ChaosReport,
    ChaosRow,
    ChaosScenario,
    chaos_report_dict,
    generate_chaos_report,
    render_chaos_report,
)
from repro.analysis.gateway import (
    GatewayReport,
    gateway_report_dict,
    generate_gateway_report,
    render_gateway_report,
)

__all__ = [
    "speedup",
    "options_per_watt",
    "relative_error",
    "Table1Row",
    "Table2Row",
    "generate_table1",
    "generate_table2",
    "render_table1",
    "render_table2",
    "figure1_baseline",
    "figure2_dataflow",
    "figure3_vectorised",
    "SweepResult",
    "sweep",
    "Comparison",
    "compare_ratio",
    "shape_report",
    "LatencyProfile",
    "measure_streaming_latency",
    "DeploymentPlan",
    "plan_fpga_deployment",
    "plan_cpu_deployment",
    "compare_platforms",
    "SessionResult",
    "simulate_market_session",
    "ClusterTableRow",
    "generate_cluster_table",
    "render_cluster_table",
    "RiskReport",
    "generate_risk_report",
    "render_risk_report",
    "risk_report_dict",
    "ServingReport",
    "generate_serving_report",
    "render_serving_report",
    "serving_report_dict",
    "SimulationReport",
    "generate_simulation_report",
    "render_simulation_report",
    "simulation_report_dict",
    "DEFAULT_CHAOS_MATRIX",
    "ChaosReport",
    "ChaosRow",
    "ChaosScenario",
    "chaos_report_dict",
    "generate_chaos_report",
    "render_chaos_report",
    "GatewayReport",
    "generate_gateway_report",
    "render_gateway_report",
    "gateway_report_dict",
]
