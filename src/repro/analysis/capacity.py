"""Capacity planning: sizing a deployment against a batch deadline.

The paper's motivation is operational: overnight batch pricing "must still
occur within specific time constraints" (Section I).  This module turns the
calibrated performance and power models into the planning calculation an
operator would run: given a book size and a deadline, how many engines (or
CPU cores, or cards) does the job need, and at what energy cost?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.scaling import CPUWorkEstimate
from repro.engines.builder import engine_resources
from repro.errors import ValidationError
from repro.fpga.floorplan import max_engines
from repro.workloads.scenarios import PaperScenario

__all__ = ["DeploymentPlan", "plan_fpga_deployment", "plan_cpu_deployment", "compare_platforms"]


@dataclass(frozen=True)
class DeploymentPlan:
    """One sized deployment option.

    Attributes
    ----------
    platform:
        Human-readable platform description.
    units:
        Engines (FPGA) or cores (CPU) engaged.
    cards:
        Accelerator cards (0 for CPU plans).
    options_per_second:
        Modelled sustained throughput.
    batch_seconds:
        Time to price the batch.
    meets_deadline:
        Whether ``batch_seconds`` fits the requested deadline.
    watts / energy_joules:
        Power draw and total energy of the batch.
    """

    platform: str
    units: int
    cards: int
    options_per_second: float
    batch_seconds: float
    meets_deadline: bool
    watts: float
    energy_joules: float

    def render(self) -> str:
        """One-line summary."""
        verdict = "OK" if self.meets_deadline else "MISSES DEADLINE"
        return (
            f"{self.platform:<34} {self.units:>3} unit(s) "
            f"{self.options_per_second:>12,.0f} opt/s  "
            f"{self.batch_seconds * 1e3:>9.1f} ms  {self.watts:>7.1f} W  "
            f"{self.energy_joules:>8.2f} J  [{verdict}]"
        )


def _fpga_rate_per_engine(scenario: PaperScenario) -> float:
    """Steady-state per-engine rate from the analytic bottleneck model.

    bottleneck cycles/option = time_points * table_scan / min(replication,
    effective ports); used instead of a discrete-event run so planning
    sweeps are instant.
    """
    n_points = scenario.options(1)[0].n_payments
    speedup = min(scenario.replication_factor, scenario.effective_uram_ports)
    cycles_per_option = n_points * scenario.n_rates / speedup
    return scenario.clock.frequency_hz / cycles_per_option


def plan_fpga_deployment(
    scenario: PaperScenario,
    n_options: int,
    deadline_seconds: float,
) -> DeploymentPlan:
    """Smallest FPGA deployment meeting the deadline.

    Fills cards engine-by-engine (each card holds what the floorplan
    allows) until the modelled batch time fits; raises if even an absurd
    number of cards cannot (deadline below PCIe floor).
    """
    if n_options < 1:
        raise ValidationError("n_options must be >= 1")
    if deadline_seconds <= 0:
        raise ValidationError("deadline_seconds must be > 0")
    per_engine = _fpga_rate_per_engine(scenario)
    engines_per_card = max_engines(
        scenario.device,
        engine_resources(scenario, replication=scenario.replication_factor),
    )
    pcie = scenario.pcie_seconds(n_options)

    for total_engines in range(1, engines_per_card * 64 + 1):
        cards = -(-total_engines // engines_per_card)
        on_card = min(total_engines, engines_per_card)
        contention = 1.0 + scenario.multi_engine_contention * (on_card - 1)
        rate = per_engine * total_engines / contention
        batch = n_options / rate + pcie * cards
        if batch <= deadline_seconds:
            watts = cards * scenario.fpga_power.watts(on_card)
            return DeploymentPlan(
                platform=f"Alveo U280 x{cards} ({scenario.precision} precision)",
                units=total_engines,
                cards=cards,
                options_per_second=rate,
                batch_seconds=batch,
                meets_deadline=True,
                watts=watts,
                energy_joules=watts * batch,
            )
    raise ValidationError(
        f"deadline {deadline_seconds}s unreachable even with 64 cards "
        "(below the PCIe floor?)"
    )


def plan_cpu_deployment(
    scenario: PaperScenario,
    n_options: int,
    deadline_seconds: float,
) -> DeploymentPlan:
    """Smallest CPU core count meeting the deadline (single socket).

    Returns the full-socket plan flagged ``meets_deadline=False`` when even
    all cores are too slow.
    """
    if n_options < 1:
        raise ValidationError("n_options must be >= 1")
    if deadline_seconds <= 0:
        raise ValidationError("deadline_seconds must be > 0")
    work = CPUWorkEstimate.for_option(
        scenario.options(1)[0], scenario.yield_curve(), scenario.hazard_curve()
    )
    cpu = scenario.cpu_perf.cpu
    for cores in range(1, cpu.cores + 1):
        rate = scenario.cpu_perf.rate(work, cores)
        batch = n_options / rate
        if batch <= deadline_seconds:
            watts = scenario.cpu_power.watts(cores)
            return DeploymentPlan(
                platform=cpu.name,
                units=cores,
                cards=0,
                options_per_second=rate,
                batch_seconds=batch,
                meets_deadline=True,
                watts=watts,
                energy_joules=watts * batch,
            )
    rate = scenario.cpu_perf.rate(work, cpu.cores)
    batch = n_options / rate
    watts = scenario.cpu_power.watts(cpu.cores)
    return DeploymentPlan(
        platform=cpu.name,
        units=cpu.cores,
        cards=0,
        options_per_second=rate,
        batch_seconds=batch,
        meets_deadline=False,
        watts=watts,
        energy_joules=watts * batch,
    )


def compare_platforms(
    scenario: PaperScenario,
    n_options: int,
    deadline_seconds: float,
) -> str:
    """Render FPGA vs CPU plans for one batch/deadline."""
    fpga = plan_fpga_deployment(scenario, n_options, deadline_seconds)
    cpu = plan_cpu_deployment(scenario, n_options, deadline_seconds)
    lines = [
        f"batch of {n_options:,} options, deadline {deadline_seconds * 1e3:.0f} ms:",
        "  " + fpga.render(),
        "  " + cpu.render(),
    ]
    if cpu.meets_deadline and fpga.energy_joules > 0:
        lines.append(
            f"  energy ratio CPU/FPGA: {cpu.energy_joules / fpga.energy_joules:.1f}x"
        )
    return "\n".join(lines)
