"""The chaos harness: a resilience matrix over fault scenarios.

One call replays the same seeded serving workload under a matrix of
fault plans — card crash with repair, crash under a straggler, hedged
straggler, correlated multi-card loss, host-link brownout — and rolls
each run up into one resilience row: goodput, tail latency, retries,
hedges, breaker trips, duplicate work and recovery time.

The first row is always the **zero-fault baseline**: it takes the exact
legacy serving path, so its report must stay byte-identical to the
committed serving goldens — the harness doubles as a regression pin that
fault-injection support costs nothing when switched off.

Follows the :mod:`repro.analysis.serving` pattern: one ``generate_*``
call, a deterministic text rendering, a JSON-friendly dict.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.serving import (
    ServingReport,
    generate_serving_report,
    serving_report_dict,
)
from repro.errors import ValidationError
from repro.faults import FaultPlan, HedgePolicy
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "DEFAULT_CHAOS_MATRIX",
    "GATEWAY_CELL",
    "GATEWAY_CELL_SPEC",
    "ChaosScenario",
    "ChaosRow",
    "ChaosReport",
    "generate_chaos_report",
    "render_chaos_report",
    "chaos_report_dict",
]

#: Goodput ratio (after-phase over before-phase) a fault scenario with a
#: repair must reach to count as recovered.
RECOVERY_GOODPUT_RATIO = 0.95

#: Name and fault plan of the optional monitored gateway cell: one card
#: crash (with repair) on the first server behind a two-server gateway,
#: scored against per-tenant SLOs.
GATEWAY_CELL = "gateway-crash-1of4"
GATEWAY_CELL_SPEC = "crash:card=1,at=0.1,repair=0.1"


@dataclass(frozen=True)
class ChaosScenario:
    """One cell of the chaos matrix: a named fault plan.

    Attributes
    ----------
    name:
        Row label in the resilience table.
    spec:
        Fault plan in ``--faults`` grammar (empty = zero-fault baseline).
    hedge:
        Whether to enable hedged dispatch of the slowest straggler.
    """

    name: str
    spec: str
    hedge: bool = False


#: The default matrix: the failure modes the robustness layer exists
#: for.  Crash instants sit mid-run for the default half-second replay;
#: the crash-under-straggler cell overlaps a heavy slowdown with the
#: crash so busy windows straddle the failure instant and the retry and
#: breaker paths actually exercise (bare crashes on microsecond batches
#: mostly just steer dispatch away from the dead card).
DEFAULT_CHAOS_MATRIX: tuple[ChaosScenario, ...] = (
    ChaosScenario("baseline", ""),
    ChaosScenario("crash-1of4", "crash:card=1,at=0.1,repair=0.1"),
    ChaosScenario(
        "crash-straggler",
        "slow:card=1,at=0.05,for=0.1,factor=60;crash:card=1,at=0.1,repair=0.1",
    ),
    ChaosScenario("straggler-hedged", "slow:card=2,at=0.1,for=0.2,factor=6", hedge=True),
    ChaosScenario("correlated-2of4", "correlated:cards=1+2,at=0.1,repair=0.15"),
    ChaosScenario("link-brownout", "link:at=0.1,for=0.1,factor=4"),
)


@dataclass(frozen=True)
class ChaosRow:
    """One resilience-table row: a fault scenario's aggregate outcome.

    Attributes
    ----------
    name / spec / hedged:
        The scenario that produced this row.
    n_completed / n_failed / n_shed:
        Request outcomes (offered = completed + shed + failed).
    goodput_rps / p99_ms:
        Whole-run goodput and tail latency.
    n_retries / n_hedges / n_breaker_trips:
        Failure-handling activity.
    duplicate_work_ratio:
        Wasted card-seconds over total card-seconds.
    goodput_before_rps / goodput_during_rps / goodput_after_rps:
        Phase goodputs around the fault envelope (0 for the baseline).
    recovery_ms:
        Time from first fault to sustained pre-fault goodput; ``None``
        when the run never recovers, 0 when goodput never dipped.
    recovered:
        Whether the run rode out the faults: every request accounted
        for, and — when anything actually recovers (faults all repaired
        by end of run) — after-phase goodput within 5% of before-phase.
    """

    name: str
    spec: str
    hedged: bool
    n_completed: int
    n_failed: int
    n_shed: int
    goodput_rps: float
    p99_ms: float
    n_retries: int
    n_hedges: int
    n_breaker_trips: int
    duplicate_work_ratio: float
    goodput_before_rps: float
    goodput_during_rps: float
    goodput_after_rps: float
    recovery_ms: float | None
    recovered: bool


@dataclass(frozen=True)
class ChaosReport:
    """Everything the ``repro-cds chaos`` subcommand prints.

    Attributes
    ----------
    seed / n_requests / rate_hz / n_states / n_cards / max_batch /
    queue_depth:
        The shared workload configuration every scenario replays.
    rows:
        One :class:`ChaosRow` per matrix cell, baseline first.
    baseline:
        The zero-fault :class:`~repro.analysis.serving.ServingReport`
        (the golden-pin row; excluded from equality — its measured
        wall-clock fields differ run to run).
    monitor:
        Per-cell :class:`~repro.monitor.MonitorResult` mapping (cell
        name → result) when the harness ran with monitoring on;
        ``None`` otherwise (the default — reports stay byte-identical).
    """

    seed: int
    n_requests: int
    rate_hz: float
    n_states: int
    n_cards: int
    max_batch: int
    queue_depth: int
    rows: tuple[ChaosRow, ...]
    baseline: ServingReport = field(compare=False, repr=False, default=None)
    monitor: dict | None = field(compare=False, repr=False, default=None)


def _row_from_report(sc: ChaosScenario, report: ServingReport) -> ChaosRow:
    r = report.result
    fr = report.fault_report
    if fr is None:
        return ChaosRow(
            name=sc.name,
            spec="",
            hedged=sc.hedge,
            n_completed=r.n_completed,
            n_failed=0,
            n_shed=r.n_shed,
            goodput_rps=r.goodput_rps,
            p99_ms=r.latency.p99_s * 1e3,
            n_retries=0,
            n_hedges=0,
            n_breaker_trips=0,
            duplicate_work_ratio=0.0,
            goodput_before_rps=0.0,
            goodput_during_rps=0.0,
            goodput_after_rps=0.0,
            recovery_ms=0.0,
            recovered=True,
        )
    phases = {p.name: p for p in fr.phases}
    before = phases.get("before")
    during = phases.get("during")
    after = phases.get("after")
    accounted = r.n_offered == r.n_completed + r.n_shed + r.n_failed
    # "Recovered" asks two things: nothing fell through the accounting,
    # and — when the plan actually ends (an after phase with traffic
    # exists) — post-repair goodput is back within 5% of pre-fault.
    recovered = accounted and fr.recovery_time_s is not None
    if before is not None and after is not None and after.n_completed:
        recovered = recovered and (
            after.goodput_rps >= RECOVERY_GOODPUT_RATIO * before.goodput_rps
        )
    return ChaosRow(
        name=sc.name,
        spec=fr.spec,
        hedged=sc.hedge,
        n_completed=r.n_completed,
        n_failed=r.n_failed,
        n_shed=r.n_shed,
        goodput_rps=r.goodput_rps,
        p99_ms=r.latency.p99_s * 1e3,
        n_retries=fr.counters.n_retries,
        n_hedges=fr.counters.n_hedges,
        n_breaker_trips=fr.counters.n_breaker_trips,
        duplicate_work_ratio=fr.counters.duplicate_work_ratio,
        goodput_before_rps=before.goodput_rps if before is not None else 0.0,
        goodput_during_rps=during.goodput_rps if during is not None else 0.0,
        goodput_after_rps=after.goodput_rps if after is not None else 0.0,
        recovery_ms=(
            fr.recovery_time_s * 1e3 if fr.recovery_time_s is not None else None
        ),
        recovered=recovered,
    )


def _gateway_cell(
    scenario,
    *,
    seed,
    n_requests,
    rate_hz,
    n_cards,
    max_batch,
    queue_depth,
    n_states,
    telemetry,
    monitor_config,
):
    """Run the monitored gateway crash cell and return its MonitorResult.

    The chaos workload replays through a two-server gateway (the matrix
    card budget split across the servers) while :data:`GATEWAY_CELL_SPEC`
    crashes one card on the first server — one card of four under the
    default matrix shape, hence the cell name.
    """
    from repro.analysis.gateway import generate_gateway_report
    from repro.gateway import DEFAULT_TENANTS
    from repro.monitor import Monitor, MonitorConfig, tenant_objectives

    config = monitor_config
    if config is None:
        config = MonitorConfig(
            objectives=tenant_objectives(tuple(p.name for p in DEFAULT_TENANTS))
        )
    cell_monitor = Monitor(config)
    plan = FaultPlan.from_spec(GATEWAY_CELL_SPEC, seed=seed)
    generate_gateway_report(
        scenario,
        n_requests=n_requests,
        rate_hz=rate_hz,
        n_servers=2,
        n_cards=max(1, n_cards // 2),
        max_batch=max_batch,
        queue_depth=queue_depth,
        n_states=n_states,
        seed=seed,
        telemetry=telemetry,
        faults=plan,
        fault_server=0,
        monitor=cell_monitor,
    )
    return cell_monitor.result


def generate_chaos_report(
    scenario: PaperScenario | None = None,
    *,
    seed: int = 7,
    n_requests: int = 2000,
    rate_hz: float = 4000.0,
    n_cards: int = 4,
    max_batch: int = 64,
    queue_depth: int = 512,
    n_states: int = 64,
    matrix: tuple[ChaosScenario, ...] = DEFAULT_CHAOS_MATRIX,
    telemetry=None,
    monitor: bool = False,
    monitor_config=None,
    gateway: bool = False,
) -> ChaosReport:
    """Replay one seeded workload under every fault scenario in the matrix.

    Deterministic in ``seed``: every scenario reuses the same book, tape
    and request stream, and the fault machinery draws its jitter from a
    ``seed``-keyed generator, so the whole resilience table reproduces
    exactly.

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario).
    seed / n_requests / rate_hz / n_cards / max_batch / queue_depth /
    n_states:
        The shared serving workload (defaults match the committed
        chaos baseline golden).
    matrix:
        Fault scenarios to run; must contain at least one cell.  A cell
        with an empty spec is the zero-fault baseline; the first such
        cell's report is attached as :attr:`ChaosReport.baseline`.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle, forwarded
        to every underlying serving run.
    monitor / monitor_config:
        With ``monitor=True`` every cell replays under a fresh
        :class:`~repro.monitor.Monitor` (policy ``monitor_config``,
        default :class:`~repro.monitor.MonitorConfig`) and the report's
        :attr:`ChaosReport.monitor` maps cell names to their
        :class:`~repro.monitor.MonitorResult` — SLO budgets, burn-rate
        alerts, and detection scoring against each cell's fault plan.
        The resilience rows themselves are identical either way.
    gateway:
        With ``gateway=True`` one extra monitored cell
        (:data:`GATEWAY_CELL`) replays the same seed through a
        two-server :class:`~repro.gateway.Gateway` while a card on the
        first server crashes and repairs, and its
        :class:`~repro.monitor.MonitorResult` — judged against
        per-tenant :func:`~repro.monitor.tenant_objectives` unless
        ``monitor_config`` overrides them — joins
        :attr:`ChaosReport.monitor`.  Implies monitoring for that cell;
        the resilience rows and the baseline stay untouched.
    """
    if not matrix:
        raise ValidationError("chaos matrix must contain at least one scenario")
    rows: list[ChaosRow] = []
    baseline: ServingReport | None = None
    monitor_results: dict | None = {} if monitor else None
    for cell in matrix:
        plan = (
            FaultPlan.from_spec(cell.spec, seed=seed) if cell.spec else None
        )
        hedge = HedgePolicy(enabled=True) if cell.hedge else None
        cell_monitor = None
        if monitor:
            from repro.monitor import Monitor

            cell_monitor = Monitor(monitor_config)
        report = generate_serving_report(
            scenario,
            n_requests=n_requests,
            rate_hz=rate_hz,
            n_cards=n_cards,
            max_batch=max_batch,
            queue_depth=queue_depth,
            n_states=n_states,
            seed=seed,
            telemetry=telemetry,
            faults=plan,
            hedge=hedge,
            monitor=cell_monitor,
        )
        if plan is None and baseline is None:
            baseline = report
        if cell_monitor is not None:
            monitor_results[cell.name] = cell_monitor.result
        rows.append(_row_from_report(cell, report))
    if gateway:
        if monitor_results is None:
            monitor_results = {}
        monitor_results[GATEWAY_CELL] = _gateway_cell(
            scenario,
            seed=seed,
            n_requests=n_requests,
            rate_hz=rate_hz,
            n_cards=n_cards,
            max_batch=max_batch,
            queue_depth=queue_depth,
            n_states=n_states,
            telemetry=telemetry,
            monitor_config=monitor_config,
        )
    return ChaosReport(
        seed=seed,
        n_requests=n_requests,
        rate_hz=rate_hz,
        n_states=n_states,
        n_cards=n_cards,
        max_batch=max_batch,
        queue_depth=queue_depth,
        rows=tuple(rows),
        baseline=baseline,
        monitor=monitor_results,
    )


def render_chaos_report(report: ChaosReport) -> str:
    """Text rendering of the resilience table (byte-deterministic)."""
    lines = [
        f"Chaos matrix — {report.n_requests} requests at "
        f"{report.rate_hz:,.0f} req/s, {report.n_cards} card(s), "
        f"seed {report.seed}",
        f"  {'Scenario':<18} {'Done':>5} {'Fail':>4} {'Shed':>4} "
        f"{'Goodput':>8} {'p99(ms)':>8} {'Retry':>5} {'Hedge':>5} "
        f"{'Trips':>5} {'Dup':>6} {'Recovery':>9} {'OK':>3}",
    ]
    for row in report.rows:
        recovery = (
            f"{row.recovery_ms:.1f}ms" if row.recovery_ms is not None else "never"
        )
        lines.append(
            f"  {row.name:<18} {row.n_completed:>5} {row.n_failed:>4} "
            f"{row.n_shed:>4} {row.goodput_rps:>8,.0f} {row.p99_ms:>8.3f} "
            f"{row.n_retries:>5} {row.n_hedges:>5} {row.n_breaker_trips:>5} "
            f"{row.duplicate_work_ratio:>6.1%} {recovery:>9} "
            f"{'yes' if row.recovered else 'NO':>3}"
        )
    if report.monitor is not None:
        from repro.monitor import render_monitor_result

        lines.append("  Monitoring (per cell):")
        for name, result in report.monitor.items():
            lines.append(f"  - {name}:")
            lines.append(render_monitor_result(result))
    return "\n".join(lines)


def chaos_report_dict(report: ChaosReport) -> dict:
    """JSON-friendly dict of the resilience table.

    The ``baseline`` block is the zero-fault serving report verbatim
    (same schema as ``repro-cds serve --json``), so CI can diff it
    against the committed serving golden.
    """
    out = {
        "seed": report.seed,
        "n_requests": report.n_requests,
        "rate_hz": report.rate_hz,
        "n_states": report.n_states,
        "n_cards": report.n_cards,
        "max_batch": report.max_batch,
        "queue_depth": report.queue_depth,
        "rows": [
            {
                "name": row.name,
                "spec": row.spec,
                "hedged": row.hedged,
                "n_completed": row.n_completed,
                "n_failed": row.n_failed,
                "n_shed": row.n_shed,
                "goodput_rps": row.goodput_rps,
                "p99_ms": row.p99_ms,
                "n_retries": row.n_retries,
                "n_hedges": row.n_hedges,
                "n_breaker_trips": row.n_breaker_trips,
                "duplicate_work_ratio": row.duplicate_work_ratio,
                "goodput_before_rps": row.goodput_before_rps,
                "goodput_during_rps": row.goodput_during_rps,
                "goodput_after_rps": row.goodput_after_rps,
                "recovery_ms": row.recovery_ms,
                "recovered": row.recovered,
            }
            for row in report.rows
        ],
    }
    if report.baseline is not None:
        out["baseline"] = serving_report_dict(report.baseline)
    if report.monitor is not None:
        from repro.monitor import monitor_result_dict

        out["monitor"] = {
            name: monitor_result_dict(result)
            for name, result in report.monitor.items()
        }
    return out
