"""Table II extended across cards: the cluster scaling roll-up.

Table II of the paper stops at five engines on one card.  This module
produces the same three-column story (options/second, watts,
options/watt) for multi-card configurations, with a speedup column against
the single-card row — the table the ``repro-cds cluster --sweep`` command
prints and ``benchmarks/test_cluster_scaling.py`` asserts against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import options_per_watt
from repro.cluster.cluster import CDSCluster
from repro.errors import ValidationError
from repro.workloads.cluster import make_cluster_portfolio
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "ClusterTableRow",
    "generate_cluster_table",
    "render_cluster_table",
]


@dataclass(frozen=True)
class ClusterTableRow:
    """One row of the extended scaling table.

    Attributes
    ----------
    key:
        Machine-readable row key, e.g. ``cluster_4_cards``.
    description:
        Human-readable configuration.
    cards / engines_per_card:
        Cluster shape.
    options_per_second / watts / options_per_watt:
        The Table II triple, aggregated across the cluster.
    speedup_vs_base:
        Throughput ratio against the table's baseline row — the 1-card
        row when the sweep includes one, otherwise the first row.
    mean_utilisation:
        Mean busy fraction across active cards.
    """

    key: str
    description: str
    cards: int
    engines_per_card: int
    options_per_second: float
    watts: float
    options_per_watt: float
    speedup_vs_base: float
    mean_utilisation: float


def generate_cluster_table(
    scenario: PaperScenario | None = None,
    card_counts: tuple[int, ...] = (1, 2, 4),
    *,
    policy: str = "least-loaded",
    n_engines: int = 5,
    workload: str = "uniform",
    portfolio: list | None = None,
) -> list[ClusterTableRow]:
    """Run the cluster at each card count and return the scaling rows.

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario).
    card_counts:
        Cluster sizes to run, in row order.  Speedups are quoted against
        the 1-card row when present, else against the first row.
    policy:
        Scheduler policy name for every row.
    n_engines:
        Engines per card (default: the paper's five).
    workload:
        Cluster workload registry key for the portfolio.
    portfolio:
        Pre-built option list; overrides ``workload`` so callers that
        already generated a portfolio (the CLI) don't rebuild it.

    Returns
    -------
    list[ClusterTableRow]
        One row per card count, in the order given.
    """
    if not card_counts:
        raise ValidationError("card_counts must be non-empty")
    sc = scenario if scenario is not None else PaperScenario()
    if portfolio is None:
        portfolio = make_cluster_portfolio(workload, sc.n_options)
    results = {
        n: CDSCluster(
            sc, n_cards=n, n_engines=n_engines, scheduler=policy
        ).run(portfolio)
        for n in card_counts
    }
    # Speedups are quoted against one card when the sweep includes it;
    # otherwise against the first (smallest measured) configuration.
    base_rate = results[1 if 1 in results else card_counts[0]].options_per_second
    rows: list[ClusterTableRow] = []
    for n in card_counts:
        result = results[n]
        active = [c for c in result.cards if not c.idle]
        rows.append(
            ClusterTableRow(
                key=f"cluster_{n}_cards",
                description=(
                    f"{n} card{'s' if n > 1 else ''} x "
                    f"{n_engines} engines ({workload})"
                ),
                cards=n,
                engines_per_card=n_engines,
                options_per_second=result.options_per_second,
                watts=result.total_watts,
                options_per_watt=options_per_watt(
                    result.options_per_second, result.total_watts
                ),
                speedup_vs_base=result.options_per_second / base_rate,
                mean_utilisation=(
                    sum(c.utilisation for c in active) / len(active)
                ),
            )
        )
    return rows


def render_cluster_table(rows: list[ClusterTableRow]) -> str:
    """Text rendering in the Table II layout plus speedup and utilisation.

    Parameters
    ----------
    rows:
        Output of :func:`generate_cluster_table`.
    """
    lines = [
        f"{'Description':<28} {'Options/s':>12} {'Watts':>8} "
        f"{'Opt/Watt':>10} {'Speedup':>8} {'Util':>6}",
        "-" * 78,
    ]
    for r in rows:
        lines.append(
            f"{r.description:<28} {r.options_per_second:>12,.0f} "
            f"{r.watts:>8.2f} {r.options_per_watt:>10,.1f} "
            f"{r.speedup_vs_base:>7.2f}x {r.mean_utilisation:>5.0%}"
        )
    return "\n".join(lines)
