"""Paper-vs-measured comparison records.

The reproduction's promise is *shape*, not absolute numbers: who wins, by
roughly what factor, and where the crossovers fall.  :class:`Comparison`
captures one such check (a measured ratio against the paper's ratio with a
tolerance); :func:`shape_report` renders a batch of them, and the
benchmarks assert ``all(c.passes for c in ...)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["Comparison", "compare_ratio", "shape_report"]


@dataclass(frozen=True)
class Comparison:
    """One shape check.

    Parameters
    ----------
    label:
        What is being compared (e.g. ``"vectorised / baseline speedup"``).
    measured / expected:
        The two values.
    rel_tolerance:
        Allowed relative deviation of ``measured`` from ``expected``.
    """

    label: str
    measured: float
    expected: float
    rel_tolerance: float = 0.25

    def __post_init__(self) -> None:
        if self.expected == 0:
            raise ValidationError(f"{self.label}: expected value must be non-zero")
        if self.rel_tolerance <= 0:
            raise ValidationError(f"{self.label}: tolerance must be > 0")

    @property
    def relative_error(self) -> float:
        """``|measured - expected| / |expected|``."""
        return abs(self.measured - self.expected) / abs(self.expected)

    @property
    def passes(self) -> bool:
        """Whether the measurement falls within tolerance."""
        return self.relative_error <= self.rel_tolerance

    def render(self) -> str:
        """One-line PASS/FAIL rendering."""
        status = "PASS" if self.passes else "FAIL"
        return (
            f"[{status}] {self.label}: measured {self.measured:,.3f} vs "
            f"paper {self.expected:,.3f} "
            f"(dev {self.relative_error:.1%}, tol {self.rel_tolerance:.0%})"
        )


def compare_ratio(
    label: str,
    measured_num: float,
    measured_den: float,
    paper_num: float,
    paper_den: float,
    *,
    rel_tolerance: float = 0.25,
) -> Comparison:
    """Compare a measured ratio against the same ratio from the paper."""
    if measured_den == 0 or paper_den == 0:
        raise ValidationError(f"{label}: denominators must be non-zero")
    return Comparison(
        label=label,
        measured=measured_num / measured_den,
        expected=paper_num / paper_den,
        rel_tolerance=rel_tolerance,
    )


def shape_report(title: str, comparisons: list[Comparison]) -> str:
    """Render a batch of comparisons with a summary verdict line."""
    lines = [title, "=" * len(title)]
    lines.extend(c.render() for c in comparisons)
    n_pass = sum(1 for c in comparisons if c.passes)
    lines.append(f"-- {n_pass}/{len(comparisons)} shape checks pass")
    return "\n".join(lines)
