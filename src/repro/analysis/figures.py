"""Regeneration of the paper's figures as topology diagrams.

* **Figure 1** — the flowchart of the Xilinx engine's sequential structure;
  rendered from the static phase chain of the baseline engine.
* **Figure 2** — "Illustration of our CDS dataflow architecture": extracted
  from a *live* built network of the inter-option engine, with per-option
  streams marked (the paper's red arrows) versus per-time-point streams
  (blue).
* **Figure 3** — "Vectorisation of defaulting probability calculation": the
  same extraction from the vectorised engine, showing the round-robin
  scheduler, the replica clusters and the cyclic collector.

Each function returns a :class:`~repro.dataflow.graph.DataflowGraph`;
callers render with ``.to_dot()`` (Graphviz) or ``.to_ascii()``.
"""

from __future__ import annotations

from repro.dataflow.engine import Simulator
from repro.dataflow.graph import DataflowGraph
from repro.engines.base import EngineWorkload
from repro.engines.builder import build_dataflow_network
from repro.engines.stages import StageModels
from repro.engines.xilinx_baseline import baseline_flowchart
from repro.workloads.scenarios import PaperScenario

__all__ = ["figure1_baseline", "figure2_dataflow", "figure3_vectorised"]


def _built_network(scenario: PaperScenario, replication: int, name: str) -> DataflowGraph:
    """Build (without running) a network and extract its topology."""
    wl = EngineWorkload.build(
        scenario.options(2), scenario.yield_curve(), scenario.hazard_curve()
    )
    models = StageModels.for_scenario(scenario, interleaved=True)
    sim = Simulator(name)
    build_dataflow_network(
        sim,
        wl,
        [0, 1],
        models,
        stream_depth=scenario.stream_depth,
        replication=replication,
        uram_ports=scenario.effective_uram_ports,
    )
    return DataflowGraph.from_simulator(sim)


def figure1_baseline() -> DataflowGraph:
    """Paper Fig. 1: sequential flowchart of the Xilinx engine."""
    return baseline_flowchart()


def figure2_dataflow(scenario: PaperScenario | None = None) -> DataflowGraph:
    """Paper Fig. 2: the dataflow architecture (un-replicated)."""
    sc = scenario if scenario is not None else PaperScenario()
    return _built_network(sc, replication=1, name="figure2_dataflow")


def figure3_vectorised(scenario: PaperScenario | None = None) -> DataflowGraph:
    """Paper Fig. 3: round-robin replication of hazard/interpolation."""
    sc = scenario if scenario is not None else PaperScenario()
    return _built_network(
        sc, replication=sc.replication_factor, name="figure3_vectorised"
    )
