"""The gateway report: one command from tenant mix to cache economics.

The multi-tenant counterpart of :mod:`repro.analysis.serving`: one call
builds the book, the market tape and a tenant-labelled request stream,
replays it through a :class:`~repro.gateway.engine.Gateway` fronting N
quote servers, and returns a structured :class:`GatewayReport` that
renders as the ``repro-cds gateway`` table or serialises to a
JSON-friendly dict.

With one tenant the stream degrades to the exact single-server serving
workload (:func:`~repro.serving.workload.make_request_stream`, same seed
offsets), so ``--tenants 1 --servers 1 --cache off`` reproduces the
``repro-cds serve`` numbers — the identity pin the golden suite holds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.gateway.engine import Gateway
from repro.gateway.metrics import GatewayResult
from repro.gateway.tenancy import DEFAULT_TENANTS, PASSTHROUGH_TENANT
from repro.gateway.workload import make_tenant_stream, make_tick_stream
from repro.risk.engine import make_book
from repro.serving.workload import make_market_tape, make_request_stream
from repro.workloads.scenarios import PaperScenario
from repro.workloads.traffic import TRAFFIC_PROCESSES

from repro.analysis.serving import STREAM_SEED_OFFSET, TAPE_SEED_OFFSET

__all__ = [
    "GatewayReport",
    "generate_gateway_report",
    "render_gateway_report",
    "gateway_report_dict",
]


@dataclass(frozen=True)
class GatewayReport:
    """Everything the ``repro-cds gateway`` subcommand prints.

    Attributes
    ----------
    traffic / rate_hz / n_requests / seed:
        Offered-load configuration (aggregate across tenants).
    n_servers / n_cards / n_engines / policy:
        Gateway tier shape: server replicas and each replica's cluster.
    n_tenants / cache / n_ticks / tick_rate_hz:
        Tenant-mix size, whether the quote cache is on, and the market
        tick stream driving invalidation.
    max_batch / max_delay_s / queue_depth:
        Per-server coalescing and admission-control policy.
    n_states / n_positions:
        Market-tape length and book size.
    backend:
        Base pricing-backend registry name behind every server.
    result:
        The aggregate :class:`~repro.gateway.metrics.GatewayResult`.
    host_seconds / requests_per_sec_host:
        Measured wall-clock of the host-side replay (excluded from
        equality so deterministic runs still compare equal).
    fault_spec:
        The injected fault plan's spec ("" on fault-free runs).
    """

    traffic: str
    rate_hz: float
    n_requests: int
    seed: int
    n_servers: int
    n_cards: int
    n_engines: int
    policy: str
    n_tenants: int
    cache: bool
    n_ticks: int
    tick_rate_hz: float
    max_batch: int
    max_delay_s: float
    queue_depth: int
    n_states: int
    n_positions: int
    backend: str
    result: GatewayResult
    host_seconds: float = field(compare=False, default=0.0)
    requests_per_sec_host: float = field(compare=False, default=0.0)
    fault_spec: str = ""


def generate_gateway_report(
    scenario: PaperScenario | None = None,
    *,
    n_requests: int = 4_000,
    rate_hz: float = 200_000.0,
    n_servers: int = 2,
    n_cards: int = 2,
    n_engines: int = 5,
    policy: str = "least-loaded",
    workload: str = "heterogeneous",
    traffic: str = "poisson",
    n_tenants: int = 3,
    cache: bool = True,
    n_ticks: int = 200,
    tick_rate_hz: float = 2_000.0,
    max_batch: int = 128,
    max_delay_s: float = 1e-3,
    queue_depth: int = 4096,
    n_states: int = 64,
    seed: int = 17,
    chunk_size: int | None = None,
    backend: str = "vectorized",
    telemetry=None,
    faults=None,
    fault_server: int = 0,
    hedge=None,
    retry=None,
    monitor=None,
) -> GatewayReport:
    """Run the full gateway pipeline and return the report.

    Deterministic in ``seed``: the book, the tape, the tenant-labelled
    stream, the tick stream and therefore every simulated number
    reproduce exactly (only the measured ``host_seconds`` varies).

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario); its
        ``n_options`` is the book size.
    n_requests / rate_hz / traffic:
        Offered load across all tenants.
    n_servers:
        Quote-server replicas behind the consistent-hash ring.
    n_cards / n_engines / policy:
        Each replica's cluster shape and sharding policy.
    workload:
        Contract-mix registry key for the shared book.
    n_tenants:
        How many of the default tenant tiers to admit (1 =
        single-tenant passthrough, which also switches the stream to
        the exact single-server serving workload).
    cache:
        Whether the market-state-keyed quote cache is on.
    n_ticks / tick_rate_hz:
        Market-tick stream length and rate (cache invalidation
        pressure; ignored with the cache off).
    max_batch / max_delay_s / queue_depth:
        Per-server coalescing and admission bounds.
    n_states:
        Market-tape length.
    seed:
        Master seed for book, tape, streams and ticks.
    chunk_size / backend:
        Kernel chunking and the base pricing backend per server.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle shared by
        the gateway and every server.
    faults / fault_server / hedge / retry:
        Optional :class:`~repro.faults.FaultPlan` applied to one lane,
        plus its hedging/retry policies.
    monitor:
        Optional :class:`~repro.monitor.Monitor` scoring the run.
    """
    if traffic not in TRAFFIC_PROCESSES:
        raise ValidationError(
            f"unknown traffic process {traffic!r}; "
            f"choose from {sorted(TRAFFIC_PROCESSES)}"
        )
    if not 1 <= n_tenants <= len(DEFAULT_TENANTS):
        raise ValidationError(
            f"n_tenants must be 1..{len(DEFAULT_TENANTS)}, got {n_tenants}"
        )
    if n_ticks < 0:
        raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
    sc = scenario if scenario is not None else PaperScenario()
    book = make_book(workload, sc.n_options, seed=seed)
    tape = make_market_tape(
        sc.yield_curve(), sc.hazard_curve(), n_states,
        seed=seed + TAPE_SEED_OFFSET,
    )
    if n_tenants == 1:
        tenants = (PASSTHROUGH_TENANT,)
        requests = make_request_stream(
            n_requests,
            rate_hz=rate_hz,
            n_states=n_states,
            n_positions=len(book),
            traffic=traffic,
            seed=seed + STREAM_SEED_OFFSET,
        )
    else:
        tenants = DEFAULT_TENANTS[:n_tenants]
        requests = make_tenant_stream(
            n_requests,
            rate_hz=rate_hz,
            n_states=n_states,
            n_positions=len(book),
            tenants=tenants,
            traffic=traffic,
            seed=seed + STREAM_SEED_OFFSET,
        )
    ticks = (
        make_tick_stream(
            n_ticks, rate_hz=tick_rate_hz, n_states=n_states, seed=seed
        )
        if cache and n_ticks
        else None
    )
    gateway = Gateway(
        book,
        tape,
        scenario=sc,
        n_servers=n_servers,
        n_cards=n_cards,
        n_engines=n_engines,
        scheduler=policy,
        queue=BatchQueue(max_batch=max_batch, linger_s=max_delay_s),
        queue_depth=queue_depth,
        chunk_size=chunk_size,
        backend=backend,
        tenants=tenants,
        cache=cache,
        telemetry=telemetry,
    )
    t0 = time.perf_counter()
    result = gateway.serve(
        requests, ticks=ticks, faults=faults, fault_server=fault_server,
        hedge=hedge, retry=retry, monitor=monitor,
    )
    host_seconds = time.perf_counter() - t0
    return GatewayReport(
        traffic=traffic,
        rate_hz=rate_hz,
        n_requests=n_requests,
        seed=seed,
        n_servers=n_servers,
        n_cards=n_cards,
        n_engines=n_engines,
        policy=policy,
        n_tenants=n_tenants,
        cache=cache,
        n_ticks=n_ticks if cache else 0,
        tick_rate_hz=tick_rate_hz,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        queue_depth=queue_depth,
        n_states=n_states,
        n_positions=len(book),
        backend=backend,
        result=result,
        host_seconds=host_seconds,
        requests_per_sec_host=(
            n_requests / host_seconds if host_seconds > 0 else 0.0
        ),
        fault_spec=faults.spec() if faults is not None else "",
    )


def render_gateway_report(report: GatewayReport) -> str:
    """Text rendering of the gateway report (byte-deterministic)."""
    r = report.result
    cache_label = "on" if report.cache else "off"
    lines = [
        f"Gateway report — {report.n_requests} requests at "
        f"{report.rate_hz:,.0f} req/s ({report.traffic}) over "
        f"{report.n_tenants} tenant(s), {report.n_servers} server(s) x "
        f"{report.n_cards} card(s), seed {report.seed}",
        f"  book {report.n_positions} position(s), market tape "
        f"{report.n_states} state(s), policy {report.policy}, "
        f"cache {cache_label} ({report.n_ticks} tick(s)), "
        f"backend {report.backend}",
        f"  {r.summary()}",
        f"  sheds: {r.n_shed_quota} quota / {r.n_shed_queue} queue / "
        f"{r.n_shed_deadline} deadline; cache {r.n_cache_hits} hit(s) + "
        f"{r.n_cache_joins} join(s), {r.n_cache_invalidations} "
        f"invalidation(s), dedup {r.cache_dedup_rate:.1%}",
    ]
    if report.fault_spec:
        lines.append(f"  faults: {report.fault_spec} -> {r.n_failed} failed")
    lines.append("  tenants:")
    for t in r.tenants:
        lines.append(
            f"    {t.tenant:>8} ({t.tier}): {t.n_completed}/{t.n_offered} "
            f"done, {t.n_shed} shed ({t.n_shed_quota} quota), "
            f"goodput {t.goodput_rps:,.0f} req/s, "
            f"p99 {t.latency.p99_s * 1e3:.3f} ms, "
            f"{t.n_cache_hits} cache-served"
        )
    lines.append("  servers:")
    for i, s in enumerate(r.servers):
        lines.append(
            f"    server {i}: {s.n_completed}/{s.n_offered} done, "
            f"goodput {s.goodput_rps:,.0f} req/s, "
            f"p99 {s.latency.p99_s * 1e3:.3f} ms, "
            f"{s.n_dispatches} batch(es)"
        )
    return "\n".join(lines)


def _latency_dict(latency) -> dict:
    return {
        "n": latency.n,
        "mean_s": latency.mean_s,
        "p50_s": latency.p50_s,
        "p95_s": latency.p95_s,
        "p99_s": latency.p99_s,
        "max_s": latency.max_s,
    }


def gateway_report_dict(report: GatewayReport) -> dict:
    """JSON-friendly dict of the report (raw responses/sheds excluded)."""
    r = report.result
    return {
        "traffic": report.traffic,
        "rate_hz": report.rate_hz,
        "n_requests": report.n_requests,
        "seed": report.seed,
        "n_servers": report.n_servers,
        "n_cards": report.n_cards,
        "n_engines": report.n_engines,
        "policy": report.policy,
        "n_tenants": report.n_tenants,
        "cache": "on" if report.cache else "off",
        "n_ticks": report.n_ticks,
        "tick_rate_hz": report.tick_rate_hz,
        "max_batch": report.max_batch,
        "max_delay_s": report.max_delay_s,
        "queue_depth": report.queue_depth,
        "n_states": report.n_states,
        "n_positions": report.n_positions,
        "backend": report.backend,
        "fault_spec": report.fault_spec,
        "n_offered": r.n_offered,
        "n_completed": r.n_completed,
        "n_failed": r.n_failed,
        "n_shed": r.n_shed,
        "n_shed_quota": r.n_shed_quota,
        "n_shed_queue": r.n_shed_queue,
        "n_shed_deadline": r.n_shed_deadline,
        "n_cache_hits": r.n_cache_hits,
        "n_cache_joins": r.n_cache_joins,
        "n_cache_invalidations": r.n_cache_invalidations,
        "cache_hit_rate": r.cache_hit_rate,
        "cache_dedup_rate": r.cache_dedup_rate,
        "n_deadline_met": r.n_deadline_met,
        "n_late": r.n_late,
        "span_seconds": r.span_seconds,
        "throughput_rps": r.throughput_rps,
        "goodput_rps": r.goodput_rps,
        "shed_rate": r.shed_rate,
        "deadline_hit_rate": r.deadline_hit_rate,
        "latency": _latency_dict(r.latency),
        "tenants": [
            {
                "tenant": t.tenant,
                "tier": t.tier,
                "n_offered": t.n_offered,
                "n_completed": t.n_completed,
                "n_shed": t.n_shed,
                "n_shed_quota": t.n_shed_quota,
                "n_failed": t.n_failed,
                "n_cache_hits": t.n_cache_hits,
                "n_deadline_met": t.n_deadline_met,
                "goodput_rps": t.goodput_rps,
                "deadline_hit_rate": t.deadline_hit_rate,
                "latency": _latency_dict(t.latency),
            }
            for t in r.tenants
        ],
        "servers": [
            {
                "server": i,
                "n_offered": s.n_offered,
                "n_completed": s.n_completed,
                "n_shed_queue": s.n_shed_queue,
                "n_shed_deadline": s.n_shed_deadline,
                "goodput_rps": s.goodput_rps,
                "deadline_hit_rate": s.deadline_hit_rate,
                "latency": _latency_dict(s.latency),
                "n_dispatches": s.n_dispatches,
                "mean_batch_requests": s.mean_batch_requests,
                "mean_batch_rows": s.mean_batch_rows,
            }
            for i, s in enumerate(r.servers)
        ],
        "host_seconds": report.host_seconds,
        "requests_per_sec_host": report.requests_per_sec_host,
    }
