"""Per-option latency analysis from simulation traces.

Throughput (options/second) is the paper's batch metric; its future-work
direction — "combining our optimised CDS engine with Xilinx's high
frequency trading AAT platform" — cares about *latency*: how long after an
option enters the engine does its spread emerge?

This module reconstructs per-option completion times from a traced
free-running engine run and summarises the latency distribution, giving the
streaming-session view an HFT integration would need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.engine import Simulator
from repro.dataflow.tracing import Trace
from repro.telemetry import NULL_RECORDER
from repro.engines.base import EngineWorkload
from repro.engines.builder import build_dataflow_network
from repro.engines.stages import StageModels
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = ["LatencyProfile", "measure_streaming_latency"]


@dataclass(frozen=True)
class LatencyProfile:
    """Latency distribution of a streaming engine session.

    All figures are in cycles; convert with the scenario clock.

    Attributes
    ----------
    completion_cycles:
        Per-option completion times (cycle at which the spread token was
        drained), in option order.
    inter_completion_cycles:
        Gaps between consecutive completions (the steady-state cadence —
        its reciprocal is the throughput).
    first_result_cycles:
        Fill latency: cycles until the first spread emerged.
    """

    completion_cycles: np.ndarray
    inter_completion_cycles: np.ndarray
    first_result_cycles: float

    @property
    def steady_cadence_cycles(self) -> float:
        """Median inter-completion gap (robust steady-state cadence)."""
        if self.inter_completion_cycles.size == 0:
            return 0.0
        return float(np.median(self.inter_completion_cycles))

    def percentile(self, q: float) -> float:
        """Percentile of the inter-completion gaps (tail cadence)."""
        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"q must be in [0, 100], got {q}")
        if self.inter_completion_cycles.size == 0:
            return 0.0
        return float(np.percentile(self.inter_completion_cycles, q))

    def render(self, clock_hz: float) -> str:
        """Text summary at the given clock."""
        us = 1e6 / clock_hz
        lines = [
            f"streaming latency over {self.completion_cycles.size} options:",
            f"  fill (first result):   {self.first_result_cycles * us:10.1f} us",
            f"  steady cadence (p50):  {self.steady_cadence_cycles * us:10.1f} us",
            f"  cadence p95:           {self.percentile(95) * us:10.1f} us",
            f"  cadence p99:           {self.percentile(99) * us:10.1f} us",
        ]
        return "\n".join(lines)


def measure_streaming_latency(
    scenario: PaperScenario,
    *,
    replication: int | None = None,
    n_options: int | None = None,
) -> LatencyProfile:
    """Run a traced free-running session and extract the latency profile.

    Parameters
    ----------
    scenario:
        Workload and calibration.
    replication:
        Hazard/interp replica count (defaults to the scenario's factor).
    n_options:
        Session length (defaults to the scenario batch size).
    """
    k = replication if replication is not None else scenario.replication_factor
    n = n_options if n_options is not None else scenario.n_options
    wl = EngineWorkload.build(
        scenario.options(n), scenario.yield_curve(), scenario.hazard_curve()
    )
    models = StageModels.for_scenario(scenario, interleaved=True)
    sim = Simulator("latency_session")
    trace = Trace(recorder=NULL_RECORDER)
    sim.tracer = trace
    build_dataflow_network(
        sim,
        wl,
        list(range(n)),
        models,
        stream_depth=scenario.stream_depth,
        replication=k,
        uram_ports=scenario.effective_uram_ports,
    )
    sim.run()

    completions = np.array(
        [
            e.time
            for e in trace.events
            if e.kind == "read" and e.stream == "combine->drain"
        ]
    )
    if completions.size != n:
        raise ValidationError(
            f"expected {n} completions, saw {completions.size}"
        )
    return LatencyProfile(
        completion_cycles=completions,
        inter_completion_cycles=np.diff(completions),
        first_result_cycles=float(completions[0]),
    )
