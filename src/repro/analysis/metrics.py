"""Shared metric arithmetic."""

from __future__ import annotations

from repro.errors import ValidationError

__all__ = ["speedup", "options_per_watt", "relative_error", "geometric_mean"]


def speedup(fast: float, slow: float) -> float:
    """``fast / slow`` with validation (both rates must be positive)."""
    if fast <= 0 or slow <= 0:
        raise ValidationError(f"rates must be > 0, got {fast} and {slow}")
    return fast / slow


def options_per_watt(options_per_second: float, watts: float) -> float:
    """Power efficiency (Table II's final column)."""
    if watts <= 0:
        raise ValidationError(f"watts must be > 0, got {watts}")
    if options_per_second < 0:
        raise ValidationError("options_per_second must be >= 0")
    return options_per_second / watts


def relative_error(measured: float, reference: float) -> float:
    """``|measured - reference| / |reference|``."""
    if reference == 0:
        raise ValidationError("reference must be non-zero")
    return abs(measured - reference) / abs(reference)


def geometric_mean(values: list[float]) -> float:
    """Geometric mean of positive values (ratio aggregation)."""
    if not values:
        raise ValidationError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValidationError("values must all be > 0")
    import math

    return math.exp(sum(math.log(v) for v in values) / len(values))
