"""The risk report: scenario VaR/ES and ladders as an analysis table.

This is the risk-desk counterpart of the paper-table modules: one call
runs the full overnight pipeline — book construction, scenario
generation, cluster-sharded revaluation, aggregation — and returns a
structured :class:`RiskReport` that renders as the ``repro-cds risk``
table or serialises to a JSON-friendly dict.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from collections.abc import Sequence

from repro.errors import ValidationError
from repro.risk.engine import ScenarioRevaluation, ScenarioRiskEngine, make_book
from repro.risk.measures import (
    JTDConcentration,
    SensitivityLadder,
    TailMeasure,
    cs01_ladder,
    ir01_ladder,
    jtd_concentration,
    tail_measures,
)
from repro.risk.scenarios import (
    CALM_STRESSED_REGIMES,
    ScenarioSet,
    historical_replay,
    monte_carlo,
    parallel_shocks,
)
from repro.risk.sharding import ClusterTiming, FaultedClusterTiming
from repro.workloads.history import make_curve_history
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "RISK_GENERATORS",
    "RiskReport",
    "generate_risk_report",
    "render_risk_report",
    "risk_report_dict",
]

#: Scenario-generator registry for the CLI ``--generator`` flag.
RISK_GENERATORS: tuple[str, ...] = ("mc", "mixture", "historical", "parallel")

#: Offset separating the scenario-generation seed from the book seed, so
#: the two never consume the same ``default_rng`` bit stream (which would
#: correlate the book's composition with the shocks it is tested under).
SCENARIO_SEED_OFFSET = 7919


@dataclass(frozen=True)
class RiskReport:
    """Everything the ``repro-cds risk`` subcommand prints.

    Attributes
    ----------
    generator / n_scenarios / n_positions / seed:
        Run configuration: scenario family, grid shape, seed.
    gross_notional:
        Sum of absolute position notionals.
    mean_pnl / std_pnl:
        First two moments of the scenario P&L distribution.
    worst_label / worst_pnl / best_label / best_pnl:
        The distribution's extremes, with their scenario labels.
    measures:
        VaR/ES pairs, one per confidence level.
    cs01 / ir01:
        Bucketed sensitivity ladders with their parallel references.
    jtd:
        Jump-to-default concentration statistics.
    timing:
        Simulated cluster roll-up for the revaluation run.
    batched / chunk_size / backend:
        Host revaluation mode: batched tensor kernel or per-scenario
        loop, the kernel chunk size (``None`` = automatic), and the
        base pricing backend behind the session (registry name).
    host_seconds / scenarios_per_sec:
        Measured wall-clock of the host-side grid revaluation (numerics
        only — the discrete-event cluster simulation runs outside the
        measured window) and the resulting throughput: the real-machine
        number next to the simulated cluster roll-up.
    """

    generator: str
    n_scenarios: int
    n_positions: int
    seed: int
    gross_notional: float
    mean_pnl: float
    std_pnl: float
    worst_label: str
    worst_pnl: float
    best_label: str
    best_pnl: float
    measures: tuple[TailMeasure, ...]
    cs01: SensitivityLadder
    ir01: SensitivityLadder
    jtd: JTDConcentration
    timing: ClusterTiming
    batched: bool
    chunk_size: int | None
    backend: str
    # Measured wall-clock: excluded from equality so deterministic runs
    # still compare equal report-to-report.
    host_seconds: float = field(compare=False, default=0.0)
    scenarios_per_sec: float = field(compare=False, default=0.0)


def _make_scenarios(
    generator: str,
    engine: ScenarioRiskEngine,
    n_scenarios: int,
    seed: int,
) -> ScenarioSet:
    yc, hc = engine.yield_curve, engine.hazard_curve
    seed = seed + SCENARIO_SEED_OFFSET
    if generator == "mc":
        return monte_carlo(yc, hc, n_scenarios, seed=seed)
    if generator == "mixture":
        return monte_carlo(
            yc, hc, n_scenarios, seed=seed, regimes=CALM_STRESSED_REGIMES
        )
    if generator == "historical":
        history = make_curve_history(n_scenarios + 1, seed=seed)
        return historical_replay(yc, hc, history)
    if generator == "parallel":
        return parallel_shocks(yc, hc)
    raise ValidationError(
        f"unknown scenario generator {generator!r}; "
        f"choose from {sorted(RISK_GENERATORS)}"
    )


def generate_risk_report(
    scenario: PaperScenario | None = None,
    *,
    n_scenarios: int = 1000,
    n_cards: int = 4,
    n_engines: int = 5,
    policy: str = "least-loaded",
    workload: str = "heterogeneous",
    generator: str = "mc",
    seed: int = 7,
    confidences: Sequence[float] = (0.95, 0.99),
    batch: bool = True,
    chunk_size: int | None = None,
    backend: str = "vectorized",
    telemetry=None,
    faults=None,
) -> RiskReport:
    """Run the full scenario-risk pipeline and return the report.

    Deterministic in ``seed``: the book, the scenarios and therefore
    every number in the report reproduce exactly (``batch`` and
    ``chunk_size`` only change the wall-clock, never the numbers).

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario); its
        ``n_options`` is the book size and its curves the base state.
    n_scenarios:
        Scenarios to draw (for ``parallel`` the ladder size is fixed).
    n_cards / n_engines / policy:
        Cluster shape for the sharded revaluation.
    workload:
        Contract-mix registry key for the book.
    generator:
        Scenario family: ``mc``, ``mixture``, ``historical`` or
        ``parallel``.
    seed:
        Master seed for book and scenario generation.
    confidences:
        VaR/ES confidence levels, in report order.
    batch:
        Revalue with the batched scenario-tensor kernel (default) or the
        per-scenario loop.
    chunk_size:
        Scenarios per kernel chunk (``None`` = automatic sizing).
    backend:
        Base pricing-backend registry name behind the engine's session
        (``vectorized``, ``cpu``, ...); numbers are backend-independent
        up to floating-point reassociation, wall-clock is not.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle: the grid
        replay records spans and metrics into it, and the host kernel is
        profiled (``kernel_*`` metrics, wall vs simulated busy time).
        The report itself is identical either way.
    faults:
        Optional :class:`~repro.faults.FaultPlan` injected into the
        cluster timing replay (crashes re-shard surviving scenarios,
        stragglers stretch the makespan).  Numerics are untouched —
        VaR/ES and the ladders are identical; only the ``timing`` block
        becomes a :class:`~repro.risk.sharding.FaultedClusterTiming`.
    """
    sc = scenario if scenario is not None else PaperScenario()
    book = make_book(workload, sc.n_options, seed=seed)
    engine = ScenarioRiskEngine(
        book,
        sc.yield_curve(),
        sc.hazard_curve(),
        scenario=sc,
        n_cards=n_cards,
        n_engines=n_engines,
        scheduler=policy,
        batch=batch,
        chunk_size=chunk_size,
        backend=backend,
        telemetry=telemetry,
    )
    shocks = _make_scenarios(generator, engine, n_scenarios, seed)
    # Time the host-side numerics alone; the discrete-event cluster
    # simulation runs outside the measured window (it would otherwise
    # dominate scenarios_per_sec and mask the batching speedup).
    if telemetry is not None:
        from repro.telemetry import KernelProfiler

        profiler = KernelProfiler(telemetry.metrics)
        t0 = time.perf_counter()
        with profiler:
            rev: ScenarioRevaluation = engine.revalue(shocks, with_timing=False)
        host_seconds = time.perf_counter() - t0
        timing = engine.simulate_timing(len(shocks), faults=faults)
        profiler.set_simulated_busy(sum(s.seconds for s in timing.cards))
    else:
        t0 = time.perf_counter()
        rev = engine.revalue(shocks, with_timing=False)
        host_seconds = time.perf_counter() - t0
        timing = engine.simulate_timing(len(shocks), faults=faults)
    worst_label, worst_pnl = rev.worst()
    best_label, best_pnl = rev.best()
    return RiskReport(
        generator=shocks.name,
        n_scenarios=len(shocks),
        n_positions=len(book),
        seed=seed,
        gross_notional=book.gross_notional,
        mean_pnl=float(rev.pnl.mean()),
        std_pnl=float(rev.pnl.std()),
        worst_label=worst_label,
        worst_pnl=worst_pnl,
        best_label=best_label,
        best_pnl=best_pnl,
        measures=tail_measures(rev.pnl, confidences),
        cs01=cs01_ladder(engine),
        ir01=ir01_ladder(engine),
        jtd=jtd_concentration(engine),
        timing=timing,
        # Report the *negotiated* mode: a base backend without batch-
        # tensor support runs the per-scenario path even when asked to
        # batch (capability negotiation in the pricing session).
        batched=batch and engine.session.capabilities.supports_batch_tensor,
        chunk_size=chunk_size,
        backend=backend,
        host_seconds=host_seconds,
        scenarios_per_sec=len(shocks) / host_seconds if host_seconds > 0 else 0.0,
    )


def render_risk_report(
    report: RiskReport, *, measures: Sequence[str] = ("var", "es")
) -> str:
    """Text rendering of the risk report.

    Parameters
    ----------
    report:
        Output of :func:`generate_risk_report`.
    measures:
        Which tail measures to print (subset of ``{"var", "es"}``); the
        ladders, extremes and concentration block always print.
    """
    unknown = set(measures) - {"var", "es"}
    if unknown:
        raise ValidationError(
            f"unknown measures {sorted(unknown)}; choose from ['es', 'var']"
        )
    lines = [
        f"Risk report — {report.n_scenarios} {report.generator} scenario(s) x "
        f"{report.n_positions} position(s), seed {report.seed}",
        f"  gross notional {report.gross_notional:,.2f}  |  "
        f"P&L mean {report.mean_pnl:+.6f}, std {report.std_pnl:.6f}",
        f"  worst {report.worst_pnl:+.6f} ({report.worst_label})  |  "
        f"best {report.best_pnl:+.6f} ({report.best_label})",
        "",
    ]
    if measures:
        header = f"{'Confidence':>10}"
        if "var" in measures:
            header += f" {'VaR':>12}"
        if "es" in measures:
            header += f" {'ES':>12}"
        lines.append(header)
        lines.append("-" * len(header))
        for m in report.measures:
            row = f"{m.confidence:>10.2%}"
            if "var" in measures:
                row += f" {m.var:>12.6f}"
            if "es" in measures:
                row += f" {m.es:>12.6f}"
            lines.append(row)
        lines.append("")
    lines.append(report.cs01.render())
    lines.append(report.ir01.render())
    lines.append(
        f"JTD: net {report.jtd.net:+.4f}, gross {report.jtd.gross:.4f}, "
        f"largest {report.jtd.largest:.4f} (position {report.jtd.largest_index}), "
        f"top-{report.jtd.top_n} share {report.jtd.top_share:.0%}, "
        f"HHI {report.jtd.herfindahl:.3f}"
    )
    lines.append(report.timing.summary())
    if isinstance(report.timing, FaultedClusterTiming):
        t = report.timing
        lines.append(
            f"faults [{t.fault_spec}]: {t.n_repartitions} repartition(s), "
            f"{t.n_rescheduled} scenario(s) rescheduled, "
            f"{t.n_failed_scenarios} failed, "
            f"{t.wasted_seconds * 1e3:.3f} ms wasted"
        )
    # Text output stays byte-deterministic for a fixed seed, so the
    # measured wall-clock numbers (host_seconds / scenarios_per_sec) are
    # surfaced via --json only; here we state the mode.
    mode = "batched" if report.batched else "looped"
    chunk = "auto" if report.chunk_size is None else str(report.chunk_size)
    lines.append(
        f"host revaluation: {mode} (chunk {chunk}, backend {report.backend})"
    )
    return "\n".join(lines)


def risk_report_dict(report: RiskReport) -> dict:
    """JSON-friendly dict of the full report (plain python scalars)."""
    return asdict(report)
