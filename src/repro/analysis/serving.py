"""The serving report: one command from traffic shape to tail latency.

The serving-desk counterpart of :mod:`repro.analysis.risk`: one call
builds the book, the market tape and the request stream, replays the
stream through a :class:`~repro.serving.engine.QuoteServer`, and returns
a structured :class:`ServingReport` that renders as the ``repro-cds
serve`` table or serialises to a JSON-friendly dict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.risk.engine import make_book
from repro.serving.engine import QuoteServer
from repro.serving.metrics import ServingResult
from repro.serving.workload import make_market_tape, make_request_stream
from repro.cluster.batching import BatchQueue
from repro.workloads.scenarios import PaperScenario
from repro.workloads.traffic import TRAFFIC_PROCESSES

__all__ = [
    "ServingReport",
    "generate_serving_report",
    "render_serving_report",
    "serving_report_dict",
]

#: Offsets separating the tape and stream seeds from the book seed, so
#: no two generators consume the same ``default_rng`` bit stream.
TAPE_SEED_OFFSET = 4099
STREAM_SEED_OFFSET = 9973


@dataclass(frozen=True)
class ServingReport:
    """Everything the ``repro-cds serve`` subcommand prints.

    Attributes
    ----------
    traffic / rate_hz / n_requests / seed:
        Offered-load configuration.
    n_cards / n_engines / policy:
        Cluster shape and row-sharding policy.
    max_batch / max_delay_s / queue_depth:
        Coalescing and admission-control policy.
    n_states / n_positions:
        Market-tape length and book size.
    backend:
        Base pricing-backend registry name behind the server's session.
    result:
        The aggregate :class:`~repro.serving.metrics.ServingResult`.
    host_seconds / requests_per_sec_host:
        Measured wall-clock of the host-side replay (numerics plus event
        loop; excluded from equality so deterministic runs still compare
        equal).
    fault_spec / fault_report:
        The injected :class:`~repro.faults.FaultPlan` spec and the
        resulting :class:`~repro.faults.FaultReport`; both empty/None on
        fault-free runs, so those reports compare (and serialise)
        exactly as before.
    """

    traffic: str
    rate_hz: float
    n_requests: int
    seed: int
    n_cards: int
    n_engines: int
    policy: str
    max_batch: int
    max_delay_s: float
    queue_depth: int
    n_states: int
    n_positions: int
    backend: str
    result: ServingResult
    host_seconds: float = field(compare=False, default=0.0)
    requests_per_sec_host: float = field(compare=False, default=0.0)
    fault_spec: str = ""
    fault_report: object | None = None


def generate_serving_report(
    scenario: PaperScenario | None = None,
    *,
    n_requests: int = 10_000,
    rate_hz: float = 5_000.0,
    n_cards: int = 4,
    n_engines: int = 5,
    policy: str = "least-loaded",
    workload: str = "heterogeneous",
    traffic: str = "poisson",
    max_batch: int = 128,
    max_delay_s: float = 1e-3,
    queue_depth: int = 4096,
    n_states: int = 256,
    seed: int = 17,
    chunk_size: int | None = None,
    backend: str = "vectorized",
    telemetry=None,
    faults=None,
    hedge=None,
    retry=None,
    monitor=None,
) -> ServingReport:
    """Run the full serving pipeline and return the report.

    Deterministic in ``seed``: the book, the tape, the request stream
    and therefore every simulated number reproduce exactly (only the
    measured ``host_seconds`` varies run to run).

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario); its
        ``n_options`` is the book size.
    n_requests / rate_hz / traffic:
        Offered load: trace length, mean arrival rate, arrival process.
    n_cards / n_engines / policy:
        Cluster shape and per-batch row-sharding policy.
    workload:
        Contract-mix registry key for the book.
    max_batch / max_delay_s:
        Size-or-linger coalescing policy.
    queue_depth:
        Bound on admitted-but-incomplete requests (backpressure).
    n_states:
        Market-tape length.
    seed:
        Master seed for book, tape and stream.
    chunk_size:
        Kernel chunk size for the host numerics (``None`` = automatic).
    backend:
        Base pricing-backend registry name (must advertise
        ``supports_streaming``; see :mod:`repro.api`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle: the replay
        records spans and metrics into it, and the host kernel is
        profiled (``kernel_*`` metrics, wall vs simulated busy time).
        The report itself is identical either way.
    faults / hedge / retry:
        Optional :class:`~repro.faults.FaultPlan` plus hedging/retry
        policies, forwarded to :meth:`~repro.serving.engine.QuoteServer.
        serve`.  ``None`` (or an empty plan) keeps the legacy replay
        byte-identical.
    monitor:
        Optional :class:`~repro.monitor.Monitor`, forwarded to
        :meth:`~repro.serving.engine.QuoteServer.serve`; the evaluation
        lands on ``monitor.result`` and the report itself is identical
        either way.
    """
    if traffic not in TRAFFIC_PROCESSES:
        raise ValidationError(
            f"unknown traffic process {traffic!r}; "
            f"choose from {sorted(TRAFFIC_PROCESSES)}"
        )
    sc = scenario if scenario is not None else PaperScenario()
    book = make_book(workload, sc.n_options, seed=seed)
    tape = make_market_tape(
        sc.yield_curve(), sc.hazard_curve(), n_states, seed=seed + TAPE_SEED_OFFSET
    )
    server = QuoteServer(
        book,
        tape,
        scenario=sc,
        n_cards=n_cards,
        n_engines=n_engines,
        scheduler=policy,
        queue=BatchQueue(max_batch=max_batch, linger_s=max_delay_s),
        queue_depth=queue_depth,
        chunk_size=chunk_size,
        backend=backend,
        telemetry=telemetry,
    )
    requests = make_request_stream(
        n_requests,
        rate_hz=rate_hz,
        n_states=n_states,
        n_positions=len(book),
        traffic=traffic,
        seed=seed + STREAM_SEED_OFFSET,
    )
    t0 = time.perf_counter()
    if telemetry is not None:
        from repro.telemetry import KernelProfiler

        profiler = KernelProfiler(telemetry.metrics)
        with profiler:
            result = server.serve(
                requests, faults=faults, hedge=hedge, retry=retry,
                monitor=monitor,
            )
        profiler.set_simulated_busy(
            sum(c.busy_seconds for c in result.cards)
        )
    else:
        result = server.serve(
            requests, faults=faults, hedge=hedge, retry=retry, monitor=monitor
        )
    host_seconds = time.perf_counter() - t0
    fault_report = server.last_fault_report
    return ServingReport(
        traffic=traffic,
        rate_hz=rate_hz,
        n_requests=n_requests,
        seed=seed,
        n_cards=n_cards,
        n_engines=n_engines,
        policy=server.scheduler.name,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        queue_depth=queue_depth,
        n_states=n_states,
        n_positions=len(book),
        backend=backend,
        result=result,
        host_seconds=host_seconds,
        requests_per_sec_host=(
            n_requests / host_seconds if host_seconds > 0 else 0.0
        ),
        fault_spec=fault_report.spec if fault_report is not None else "",
        fault_report=fault_report,
    )


def render_serving_report(report: ServingReport) -> str:
    """Text rendering of the serving report (byte-deterministic).

    The measured host wall-clock is surfaced via ``--json`` only, so a
    fixed seed reproduces this text exactly.
    """
    r = report.result
    lines = [
        f"Serving report — {report.n_requests} requests at "
        f"{report.rate_hz:,.0f} req/s ({report.traffic}), "
        f"{report.n_cards} card(s) x {report.n_engines} engine(s), "
        f"seed {report.seed}",
        f"  book {report.n_positions} position(s), market tape "
        f"{report.n_states} state(s), policy {report.policy}",
        f"  coalescing: max batch {report.max_batch}, max delay "
        f"{report.max_delay_s * 1e3:g} ms, queue depth {report.queue_depth}, "
        f"backend {report.backend}",
        r.render(),
    ]
    if report.fault_report is not None:
        fr = report.fault_report
        c = fr.counters
        lines.append(f"  faults: {fr.spec}")
        lines.append(
            f"    retries {c.n_retries}, hedges {c.n_hedges} "
            f"({c.n_hedge_wins} won), breaker trips {c.n_breaker_trips}, "
            f"failed requests {c.n_failed_requests}, degraded sheds "
            f"{c.n_shed_degraded}"
        )
        recovery = (
            f"{fr.recovery_time_s * 1e3:.3f} ms"
            if fr.recovery_time_s is not None
            else "never"
        )
        lines.append(
            f"    duplicate work {c.duplicate_work_ratio:.1%}, "
            f"recovery {recovery}"
        )
        for phase in fr.phases:
            lines.append(
                f"    {phase.name:>7}: {phase.n_completed} done, "
                f"goodput {phase.goodput_rps:,.0f} req/s, "
                f"p99 {phase.p99_latency_ms:.3f} ms"
            )
    return "\n".join(lines)


def _serving_report_base_dict(report: ServingReport) -> dict:
    """The fault-free key set shared by every serving-report dict."""
    r = report.result
    return {
        "traffic": report.traffic,
        "rate_hz": report.rate_hz,
        "n_requests": report.n_requests,
        "seed": report.seed,
        "n_cards": report.n_cards,
        "n_engines": report.n_engines,
        "policy": report.policy,
        "max_batch": report.max_batch,
        "max_delay_s": report.max_delay_s,
        "queue_depth": report.queue_depth,
        "n_states": report.n_states,
        "n_positions": report.n_positions,
        "backend": report.backend,
        "n_offered": r.n_offered,
        "n_completed": r.n_completed,
        "n_shed_queue": r.n_shed_queue,
        "n_shed_deadline": r.n_shed_deadline,
        "n_deadline_met": r.n_deadline_met,
        "n_late": r.n_late,
        "span_seconds": r.span_seconds,
        "throughput_rps": r.throughput_rps,
        "goodput_rps": r.goodput_rps,
        "shed_rate": r.shed_rate,
        "deadline_hit_rate": r.deadline_hit_rate,
        "latency": {
            "n": r.latency.n,
            "mean_s": r.latency.mean_s,
            "p50_s": r.latency.p50_s,
            "p95_s": r.latency.p95_s,
            "p99_s": r.latency.p99_s,
            "max_s": r.latency.max_s,
        },
        "n_dispatches": r.n_dispatches,
        "mean_batch_requests": r.mean_batch_requests,
        "mean_batch_rows": r.mean_batch_rows,
        "per_card": [
            {
                "card_id": c.card_id,
                "dispatches": c.dispatches,
                "n_rows": c.n_rows,
                "n_cells": c.n_cells,
                "busy_seconds": c.busy_seconds,
                "utilisation": c.utilisation,
            }
            for c in r.cards
        ],
        "host_seconds": report.host_seconds,
        "requests_per_sec_host": report.requests_per_sec_host,
    }


def serving_report_dict(report: ServingReport) -> dict:
    """JSON-friendly dict of the report (raw responses/sheds excluded).

    Fault keys (``n_failed``, ``shed_reasons``, ``faults``) appear only
    when a fault plan was injected, so fault-free JSON is byte-identical
    to the historical output.
    """
    out = _serving_report_base_dict(report)
    if report.fault_report is not None:
        out["n_failed"] = report.result.n_failed
        out["shed_reasons"] = report.result.shed_reason_counts()
        out["faults"] = report.fault_report.to_dict()
    return out
