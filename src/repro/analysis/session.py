"""Market-session queueing study: the engine under a live request flow.

The paper's AAT/HFT future-work direction means pricing requests arriving
continuously rather than in overnight batches.  This module simulates such
a session with the dataflow DES: a seeded Poisson-like arrival process
feeds requests into a bounded queue served by an engine at its steady-state
cadence; the output is the *response-time* distribution (queueing delay +
service), the quantity a trading integration is judged on.

The model is deliberately the classic single-server queue built from our
own simulator primitives, so the same back-pressure semantics (a bounded
queue that drops nothing but delays the producer) apply.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataflow.engine import Simulator
from repro.dataflow.process import Delay, Kernel, Read, Write
from repro.dataflow.stream import Stream
from repro.dataflow.tracing import Trace
from repro.telemetry import NULL_RECORDER
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = ["SessionResult", "simulate_market_session", "engine_service_cycles"]


@dataclass(frozen=True)
class SessionResult:
    """Response-time statistics of one simulated session.

    All times in cycles; convert with the scenario clock.

    Attributes
    ----------
    n_requests:
        Requests served.
    utilisation:
        Offered load: service cadence over mean inter-arrival gap.
    response_cycles:
        Per-request response times (arrival to completion), arrival order.
    """

    n_requests: int
    utilisation: float
    response_cycles: np.ndarray

    def mean(self) -> float:
        """Mean response time."""
        return float(np.mean(self.response_cycles))

    def percentile(self, q: float) -> float:
        """Response-time percentile."""
        if not 0.0 <= q <= 100.0:
            raise ValidationError(f"q must be in [0, 100], got {q}")
        return float(np.percentile(self.response_cycles, q))

    def render(self, clock_hz: float) -> str:
        """Text summary at the given clock."""
        us = 1e6 / clock_hz
        return "\n".join(
            [
                f"market session: {self.n_requests} requests at "
                f"{self.utilisation:.0%} load",
                f"  response mean {self.mean() * us:8.1f} us   "
                f"p50 {self.percentile(50) * us:8.1f} us   "
                f"p95 {self.percentile(95) * us:8.1f} us   "
                f"p99 {self.percentile(99) * us:8.1f} us",
            ]
        )


def engine_service_cycles(scenario: PaperScenario) -> float:
    """The engine's steady-state per-request cadence.

    Bottleneck model: time points x fixed-bound table scan, divided by the
    effective replication speedup (capped at the URAM port bandwidth).
    """
    n_points = scenario.options(1)[0].n_payments
    speedup = min(scenario.replication_factor, scenario.effective_uram_ports)
    return n_points * scenario.n_rates / speedup


def _arrivals(out: Stream, gaps: np.ndarray, stamps: list[float]) -> Kernel:
    """Request source: one token per arrival, recording arrival times."""
    t = 0.0
    for i, gap in enumerate(gaps):
        yield Delay(float(gap))
        t += float(gap)
        stamps.append(t)
        yield Write(out, i)


def _serving(inp: Stream, done: Stream, n: int, service: float) -> Kernel:
    """The engine as a FIFO server with deterministic service time."""
    for i in range(n):
        yield Read(inp)
        yield Delay(service)
        yield Write(done, i)


def _drain(done: Stream, n: int) -> Kernel:
    """Completion sink (the trace records the completion timestamps)."""
    for _ in range(n):
        yield Read(done)


def simulate_market_session(
    scenario: PaperScenario,
    *,
    n_requests: int = 200,
    load: float = 0.7,
    queue_depth: int = 64,
    seed: int = 7,
) -> SessionResult:
    """Simulate a pricing session at a given offered load.

    Parameters
    ----------
    scenario:
        Provides the engine cadence (see :func:`engine_service_cycles`).
    n_requests:
        Session length.
    load:
        Offered utilisation in (0, 1]; arrivals are exponential with mean
        ``service / load``.
    queue_depth:
        Request queue capacity (back-pressures the source when full,
        modelling a bounded ingress buffer).
    seed:
        Arrival-process seed.
    """
    if n_requests < 1:
        raise ValidationError("n_requests must be >= 1")
    if not 0.0 < load <= 1.0:
        raise ValidationError(f"load must be in (0, 1], got {load}")
    if queue_depth < 1:
        raise ValidationError("queue_depth must be >= 1")

    service = engine_service_cycles(scenario)
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(scale=service / load, size=n_requests)

    sim = Simulator("market_session")
    q = sim.stream("requests", depth=queue_depth)
    done = sim.stream("done", depth=2)
    arrival_stamps: list[float] = []
    sim.process("arrivals", _arrivals(q, gaps, arrival_stamps))
    sim.process("engine", _serving(q, done, n_requests, service))
    sim.process("drain", _drain(done, n_requests))
    trace = Trace(recorder=NULL_RECORDER)
    sim.tracer = trace
    sim.run()

    completion_times = sorted(
        e.time for e in trace.events if e.kind == "read" and e.stream == "done"
    )
    arrivals_arr = np.asarray(arrival_stamps)
    completions_arr = np.asarray(completion_times)
    if completions_arr.size != arrivals_arr.size:
        raise ValidationError("session lost requests (simulator bug)")
    response = completions_arr - arrivals_arr
    if np.any(response < -1e-9):
        raise ValidationError("negative response time (simulator bug)")
    return SessionResult(
        n_requests=n_requests,
        utilisation=load,
        response_cycles=response,
    )
