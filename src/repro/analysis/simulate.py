"""The mixed-workload simulation report: quotes and risk on one cluster.

The ``repro-cds simulate`` scenario: a bursty live-quote stream and a
periodic risk-refresh heartbeat share one cluster through one
:class:`~repro.serving.engine.QuoteServer` — both workloads' arrivals,
linger timers and card busy windows on the **same**
:class:`~repro.sim.Simulation` clock (the unified event loop the
``repro.sim`` rebuild exists for).  The report answers the capacity
question neither single-workload command can: what does the periodic
batch work cost the quote tail, and what latency does the risk desk see
in return?

Follows the :mod:`repro.analysis.serving` pattern: one ``generate_*``
call, a deterministic text rendering, a JSON-friendly dict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.risk.engine import make_book
from repro.serving.engine import QuoteServer
from repro.serving.metrics import KindStats, ServingResult, per_kind_stats
from repro.serving.workload import (
    make_market_tape,
    make_request_stream,
    make_risk_refresh_stream,
)
from repro.workloads.scenarios import PaperScenario
from repro.workloads.traffic import TRAFFIC_PROCESSES

__all__ = [
    "SimulationReport",
    "generate_simulation_report",
    "render_simulation_report",
    "simulation_report_dict",
]

#: Seed offsets keeping the four generators off each other's bit streams
#: (book, tape, quote stream, refresh rows).
TAPE_SEED_OFFSET = 4099
STREAM_SEED_OFFSET = 9973
REFRESH_SEED_OFFSET = 28019


@dataclass(frozen=True)
class SimulationReport:
    """Everything the ``repro-cds simulate`` subcommand prints.

    Attributes
    ----------
    traffic / rate_hz / n_requests / seed:
        Quote-side offered load.
    refresh_period_s / n_refreshes / refresh_rows:
        Risk-side heartbeat: period, stream length (derived from the
        quote trace's span), market rows per refresh.
    n_cards / n_engines / policy:
        Cluster shape and row-sharding policy.
    max_batch / max_delay_s / queue_depth:
        Coalescing and admission-control policy.
    n_states / n_positions:
        Market-tape length and book size.
    backend:
        Base pricing-backend registry name behind the server's session.
    result:
        The aggregate :class:`~repro.serving.metrics.ServingResult` over
        both workloads.
    kinds:
        Per-workload breakdown (quotes versus risk refreshes).
    host_seconds:
        Measured wall-clock of the host-side replay (excluded from
        equality so deterministic runs still compare equal).
    fault_spec / fault_report:
        The injected :class:`~repro.faults.FaultPlan` spec and the
        resulting :class:`~repro.faults.FaultReport`; both empty/None on
        fault-free runs.
    """

    traffic: str
    rate_hz: float
    n_requests: int
    seed: int
    refresh_period_s: float
    n_refreshes: int
    refresh_rows: int
    n_cards: int
    n_engines: int
    policy: str
    max_batch: int
    max_delay_s: float
    queue_depth: int
    n_states: int
    n_positions: int
    backend: str
    result: ServingResult
    kinds: tuple[KindStats, ...]
    host_seconds: float = field(compare=False, default=0.0)
    fault_spec: str = ""
    fault_report: object | None = None


def generate_simulation_report(
    scenario: PaperScenario | None = None,
    *,
    n_requests: int = 8_000,
    rate_hz: float = 20_000.0,
    traffic: str = "bursty",
    refresh_period_s: float = 2e-3,
    refresh_rows: int = 16,
    n_cards: int = 4,
    n_engines: int = 5,
    policy: str = "least-loaded",
    workload: str = "heterogeneous",
    max_batch: int = 128,
    max_delay_s: float = 1e-3,
    queue_depth: int = 4096,
    n_states: int = 256,
    seed: int = 17,
    chunk_size: int | None = None,
    backend: str = "vectorized",
    telemetry=None,
    faults=None,
    hedge=None,
    retry=None,
) -> SimulationReport:
    """Replay quotes plus periodic risk refreshes on one cluster.

    The quote stream is pure single-name quotes (the reval/var mix of
    ``repro-cds serve`` is replaced by the explicit heartbeat); risk
    refreshes arrive every ``refresh_period_s`` from one period in until
    the last quote, each a VaR over ``refresh_rows`` fresh tape rows.
    Deterministic in ``seed``: only ``host_seconds`` varies run to run.

    Parameters
    ----------
    scenario:
        Experimental configuration (default: the paper scenario); its
        ``n_options`` is the book size.
    n_requests / rate_hz / traffic:
        Quote-side offered load (default: bursty — the regime where the
        shared cluster is interesting).
    refresh_period_s / refresh_rows:
        Risk-side heartbeat period and VaR sample width.
    n_cards / n_engines / policy:
        Cluster shape and per-batch row-sharding policy.
    workload:
        Contract-mix registry key for the book.
    max_batch / max_delay_s / queue_depth:
        Coalescing and admission-control policy.
    n_states:
        Market-tape length.
    seed:
        Master seed for book, tape and both streams.
    chunk_size:
        Kernel chunk size for the host numerics (``None`` = automatic).
    backend:
        Base pricing-backend registry name (must advertise
        ``supports_streaming``).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle: the replay
        records spans and metrics into it, and the host kernel is
        profiled (``kernel_*`` metrics, wall vs simulated busy time).
        The report itself is identical either way.
    faults / hedge / retry:
        Optional :class:`~repro.faults.FaultPlan` plus hedging/retry
        policies, forwarded to :meth:`~repro.serving.engine.QuoteServer.
        serve`.  The degradation ladder sheds the risk heartbeat before
        quotes when capacity is reduced.
    """
    if traffic not in TRAFFIC_PROCESSES:
        raise ValidationError(
            f"unknown traffic process {traffic!r}; "
            f"choose from {sorted(TRAFFIC_PROCESSES)}"
        )
    if refresh_period_s <= 0:
        raise ValidationError(
            f"refresh_period_s must be > 0, got {refresh_period_s}"
        )
    sc = scenario if scenario is not None else PaperScenario()
    book = make_book(workload, sc.n_options, seed=seed)
    tape = make_market_tape(
        sc.yield_curve(), sc.hazard_curve(), n_states,
        seed=seed + TAPE_SEED_OFFSET,
    )
    server = QuoteServer(
        book,
        tape,
        scenario=sc,
        n_cards=n_cards,
        n_engines=n_engines,
        scheduler=policy,
        queue=BatchQueue(max_batch=max_batch, linger_s=max_delay_s),
        queue_depth=queue_depth,
        chunk_size=chunk_size,
        backend=backend,
        telemetry=telemetry,
    )
    quotes = make_request_stream(
        n_requests,
        rate_hz=rate_hz,
        n_states=n_states,
        n_positions=len(book),
        traffic=traffic,
        mix=(1.0, 0.0, 0.0),
        seed=seed + STREAM_SEED_OFFSET,
    )
    # The heartbeat runs for the quote trace's span: first refresh one
    # period in, last no later than the final quote arrival.
    span = quotes[-1].arrival_s
    n_refreshes = max(1, int(span / refresh_period_s))
    refreshes = make_risk_refresh_stream(
        n_refreshes,
        period_s=refresh_period_s,
        n_states=n_states,
        var_rows=refresh_rows,
        request_id_base=n_requests,
        seed=seed + REFRESH_SEED_OFFSET,
    )
    t0 = time.perf_counter()
    if telemetry is not None:
        from repro.telemetry import KernelProfiler

        profiler = KernelProfiler(telemetry.metrics)
        with profiler:
            result = server.serve(
                quotes + refreshes, faults=faults, hedge=hedge, retry=retry
            )
        profiler.set_simulated_busy(
            sum(c.busy_seconds for c in result.cards)
        )
    else:
        result = server.serve(
            quotes + refreshes, faults=faults, hedge=hedge, retry=retry
        )
    host_seconds = time.perf_counter() - t0
    fault_report = server.last_fault_report
    return SimulationReport(
        traffic=traffic,
        rate_hz=rate_hz,
        n_requests=n_requests,
        seed=seed,
        refresh_period_s=refresh_period_s,
        n_refreshes=n_refreshes,
        refresh_rows=refresh_rows,
        n_cards=n_cards,
        n_engines=n_engines,
        policy=server.scheduler.name,
        max_batch=max_batch,
        max_delay_s=max_delay_s,
        queue_depth=queue_depth,
        n_states=n_states,
        n_positions=len(book),
        backend=backend,
        result=result,
        kinds=per_kind_stats(result),
        host_seconds=host_seconds,
        fault_spec=fault_report.spec if fault_report is not None else "",
        fault_report=fault_report,
    )


def render_simulation_report(report: SimulationReport) -> str:
    """Text rendering of the simulation report (byte-deterministic).

    The measured host wall-clock is surfaced via ``--json`` only, so a
    fixed seed reproduces this text exactly.
    """
    r = report.result
    lines = [
        f"Mixed-workload simulation — {report.n_requests} quotes at "
        f"{report.rate_hz:,.0f} req/s ({report.traffic}) + "
        f"{report.n_refreshes} risk refreshes every "
        f"{report.refresh_period_s * 1e3:g} ms, "
        f"{report.n_cards} card(s) x {report.n_engines} engine(s), "
        f"seed {report.seed}",
        f"  book {report.n_positions} position(s), market tape "
        f"{report.n_states} state(s), refresh VaR over "
        f"{report.refresh_rows} row(s), policy {report.policy}",
        f"  coalescing: max batch {report.max_batch}, max delay "
        f"{report.max_delay_s * 1e3:g} ms, queue depth {report.queue_depth}, "
        f"backend {report.backend}",
        f"  {'Workload':>8} {'Offered':>8} {'Done':>6} {'Shed':>5} "
        f"{'Hit':>6} {'Goodput':>10} {'p50(ms)':>8} {'p99(ms)':>8}",
    ]
    for k in report.kinds:
        lines.append(
            f"  {k.kind:>8} {k.n_offered:>8} {k.n_completed:>6} "
            f"{k.n_shed:>5} {k.deadline_hit_rate:>6.1%} "
            f"{k.goodput_rps:>10,.0f} {k.latency.p50_s * 1e3:>8.3f} "
            f"{k.latency.p99_s * 1e3:>8.3f}"
        )
    lines.append(r.render())
    if report.fault_report is not None:
        fr = report.fault_report
        c = fr.counters
        recovery = (
            f"{fr.recovery_time_s * 1e3:.3f} ms"
            if fr.recovery_time_s is not None
            else "never"
        )
        lines.append(
            f"  faults [{fr.spec}]: retries {c.n_retries}, hedges "
            f"{c.n_hedges}, breaker trips {c.n_breaker_trips}, failed "
            f"{c.n_failed_requests}, degraded sheds {c.n_shed_degraded}, "
            f"recovery {recovery}"
        )
    return "\n".join(lines)


def simulation_report_dict(report: SimulationReport) -> dict:
    """JSON-friendly dict of the report (raw responses/sheds excluded).

    Fault keys appear only when a plan was injected, so fault-free JSON
    is byte-identical to the historical output.
    """
    r = report.result
    out = {
        "traffic": report.traffic,
        "rate_hz": report.rate_hz,
        "n_requests": report.n_requests,
        "seed": report.seed,
        "refresh_period_s": report.refresh_period_s,
        "n_refreshes": report.n_refreshes,
        "refresh_rows": report.refresh_rows,
        "n_cards": report.n_cards,
        "n_engines": report.n_engines,
        "policy": report.policy,
        "max_batch": report.max_batch,
        "max_delay_s": report.max_delay_s,
        "queue_depth": report.queue_depth,
        "n_states": report.n_states,
        "n_positions": report.n_positions,
        "backend": report.backend,
        "n_offered": r.n_offered,
        "n_completed": r.n_completed,
        "n_shed_queue": r.n_shed_queue,
        "n_shed_deadline": r.n_shed_deadline,
        "span_seconds": r.span_seconds,
        "throughput_rps": r.throughput_rps,
        "goodput_rps": r.goodput_rps,
        "shed_rate": r.shed_rate,
        "deadline_hit_rate": r.deadline_hit_rate,
        "n_dispatches": r.n_dispatches,
        "mean_batch_requests": r.mean_batch_requests,
        "mean_batch_rows": r.mean_batch_rows,
        "per_workload": [
            {
                "kind": k.kind,
                "n_offered": k.n_offered,
                "n_completed": k.n_completed,
                "n_shed": k.n_shed,
                "n_deadline_met": k.n_deadline_met,
                "goodput_rps": k.goodput_rps,
                "deadline_hit_rate": k.deadline_hit_rate,
                "p50_s": k.latency.p50_s,
                "p95_s": k.latency.p95_s,
                "p99_s": k.latency.p99_s,
            }
            for k in report.kinds
        ],
        "per_card": [
            {
                "card_id": c.card_id,
                "dispatches": c.dispatches,
                "n_rows": c.n_rows,
                "n_cells": c.n_cells,
                "busy_seconds": c.busy_seconds,
                "utilisation": c.utilisation,
            }
            for c in r.cards
        ],
        "host_seconds": report.host_seconds,
    }
    if report.fault_report is not None:
        out["n_failed"] = r.n_failed
        out["shed_reasons"] = r.shed_reason_counts()
        out["faults"] = report.fault_report.to_dict()
    return out
