"""Generic parameter-sweep harness for ablation studies.

A sweep varies one scenario field over a set of values, runs a measurement
function for each configured scenario, and collects ``(value, measurement)``
pairs with rendering helpers.  The ablation benchmarks use it for
replication factors, stream depths, URAM port counts, batch sizes and rate
table lengths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = ["SweepPoint", "SweepResult", "sweep"]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the swept value and its measurement."""

    value: Any
    measurement: float


@dataclass(frozen=True)
class SweepResult:
    """All samples of one sweep, in sweep order."""

    parameter: str
    points: list[SweepPoint]

    def values(self) -> list[Any]:
        """The swept parameter values."""
        return [p.value for p in self.points]

    def measurements(self) -> list[float]:
        """The measurements, aligned with :meth:`values`."""
        return [p.measurement for p in self.points]

    def best(self, *, maximise: bool = True) -> SweepPoint:
        """The best point (``maximise=False`` for a minimisation sweep)."""
        if not self.points:
            raise ValidationError("sweep produced no points")
        key = (lambda p: p.measurement) if maximise else (lambda p: -p.measurement)
        return max(self.points, key=key)

    def render(self, *, unit: str = "", bar_width: int = 40) -> str:
        """ASCII bar chart of the sweep."""
        if not self.points:
            return f"(empty sweep of {self.parameter})"
        peak = max(abs(p.measurement) for p in self.points) or 1.0
        lines = [f"sweep of {self.parameter}:"]
        for p in self.points:
            bar = "#" * max(1, int(bar_width * abs(p.measurement) / peak))
            lines.append(f"  {p.value!s:>10} {p.measurement:>14,.1f}{unit}  |{bar}")
        return "\n".join(lines)


def sweep(
    parameter: str,
    values: Sequence[Any],
    measure: Callable[[PaperScenario], float],
    *,
    base: PaperScenario | None = None,
) -> SweepResult:
    """Sweep ``parameter`` over ``values``.

    Parameters
    ----------
    parameter:
        Name of a :class:`~repro.workloads.scenarios.PaperScenario` field.
    values:
        Values to assign.
    measure:
        Measurement callback invoked with each configured scenario.
    base:
        Scenario providing all other fields (defaults to the paper setup).
    """
    if not values:
        raise ValidationError("sweep needs at least one value")
    sc = base if base is not None else PaperScenario()
    if not hasattr(sc, parameter):
        raise ValidationError(f"PaperScenario has no field {parameter!r}")
    points = []
    for v in values:
        configured = sc.with_overrides(**{parameter: v})
        points.append(SweepPoint(value=v, measurement=float(measure(configured))))
    return SweepResult(parameter=parameter, points=points)
