"""Regeneration of the paper's two tables.

:func:`generate_table1` runs the four simulated FPGA engine variants plus
the calibrated single-core CPU model and returns rows mirroring paper
Table I; :func:`generate_table2` does the same for the scaling/power study
of Table II.  Both return structured rows (so tests can assert the shape)
and have text renderers matching the paper's layout.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import options_per_watt
from repro.cpu.scaling import CPUWorkEstimate
from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.workloads.scenarios import PAPER_TABLE1, PAPER_TABLE2, PaperScenario

__all__ = [
    "Table1Row",
    "Table2Row",
    "generate_table1",
    "generate_table2",
    "render_table1",
    "render_table2",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of Table I: an engine version's throughput.

    ``paper_options_per_second`` is ``None`` for rows the paper does not
    report (none by default, but sweeps reuse this type).
    """

    key: str
    description: str
    options_per_second: float
    paper_options_per_second: float | None

    @property
    def ratio_to_paper(self) -> float | None:
        """measured / paper, or ``None`` when the paper has no value."""
        if self.paper_options_per_second is None:
            return None
        return self.options_per_second / self.paper_options_per_second


@dataclass(frozen=True)
class Table2Row:
    """One row of Table II: throughput, power, efficiency."""

    key: str
    description: str
    options_per_second: float
    watts: float
    options_per_watt: float
    paper: tuple[float, float, float] | None

    @property
    def ratio_to_paper(self) -> float | None:
        """measured/paper throughput ratio."""
        if self.paper is None:
            return None
        return self.options_per_second / self.paper[0]


def _cpu_work(scenario: PaperScenario) -> CPUWorkEstimate:
    return CPUWorkEstimate.for_option(
        scenario.options(1)[0], scenario.yield_curve(), scenario.hazard_curve()
    )


def generate_table1(scenario: PaperScenario | None = None) -> list[Table1Row]:
    """Run every Table I configuration and return its rows in paper order."""
    sc = scenario if scenario is not None else PaperScenario()
    work = _cpu_work(sc)
    rows = [
        Table1Row(
            key="cpu_single_core",
            description="Xeon Platinum CPU core",
            options_per_second=sc.cpu_perf.single_core_rate(work),
            paper_options_per_second=PAPER_TABLE1["cpu_single_core"],
        )
    ]
    engines = [
        ("xilinx_baseline", "Xilinx Vitis library CDS engine", XilinxBaselineEngine),
        ("optimised_dataflow", "Optimised Dataflow CDS engine", OptimisedDataflowEngine),
        ("dataflow_interoption", "Dataflow inter-options", InterOptionDataflowEngine),
        ("vectorised_dataflow", "Vectorisation of dataflow engine", VectorizedDataflowEngine),
    ]
    for key, description, cls in engines:
        result = cls(sc).run()
        rows.append(
            Table1Row(
                key=key,
                description=description,
                options_per_second=result.options_per_second,
                paper_options_per_second=PAPER_TABLE1[key],
            )
        )
    return rows


def generate_table2(
    scenario: PaperScenario | None = None,
    engine_counts: tuple[int, ...] = (1, 2, 5),
) -> list[Table2Row]:
    """Run every Table II configuration and return its rows in paper order."""
    sc = scenario if scenario is not None else PaperScenario()
    work = _cpu_work(sc)
    cpu_rate = sc.cpu_perf.rate(work, sc.cpu_perf.cpu.cores)
    cpu_watts = sc.cpu_power.watts(sc.cpu_perf.cpu.cores)
    rows = [
        Table2Row(
            key="cpu_24_cores",
            description=f"{sc.cpu_perf.cpu.cores} core Xeon CPU",
            options_per_second=cpu_rate,
            watts=cpu_watts,
            options_per_watt=options_per_watt(cpu_rate, cpu_watts),
            paper=PAPER_TABLE2.get("cpu_24_cores"),
        )
    ]
    for n in engine_counts:
        result = MultiEngineSystem(sc, n_engines=n).run()
        watts = sc.fpga_power.watts(n)
        rows.append(
            Table2Row(
                key=f"fpga_{n}_engines",
                description=f"{n} FPGA engine{'s' if n > 1 else ''}",
                options_per_second=result.options_per_second,
                watts=watts,
                options_per_watt=options_per_watt(result.options_per_second, watts),
                paper=PAPER_TABLE2.get(
                    f"fpga_{n}_engine" + ("s" if n > 1 else "")
                ),
            )
        )
    return rows


def render_table1(rows: list[Table1Row]) -> str:
    """Text rendering in the paper's Table I layout plus a ratio column."""
    lines = [
        f"{'Description':<36} {'Performance':>14} {'Paper':>12} {'ratio':>7}",
        f"{'':<36} {'(Options/sec)':>14} {'':>12} {'':>7}",
        "-" * 72,
    ]
    for r in rows:
        paper = f"{r.paper_options_per_second:,.2f}" if r.paper_options_per_second else "-"
        ratio = f"{r.ratio_to_paper:.2f}" if r.ratio_to_paper is not None else "-"
        lines.append(
            f"{r.description:<36} {r.options_per_second:>14,.2f} {paper:>12} {ratio:>7}"
        )
    return "\n".join(lines)


def render_table2(rows: list[Table2Row]) -> str:
    """Text rendering in the paper's Table II layout plus ratio columns."""
    lines = [
        f"{'Description':<22} {'Options/s':>12} {'Watts':>8} {'Opt/Watt':>10} "
        f"{'paper opt/s':>12} {'ratio':>6}",
        "-" * 76,
    ]
    for r in rows:
        paper = f"{r.paper[0]:,.0f}" if r.paper else "-"
        ratio = f"{r.ratio_to_paper:.2f}" if r.ratio_to_paper is not None else "-"
        lines.append(
            f"{r.description:<22} {r.options_per_second:>12,.0f} {r.watts:>8.2f} "
            f"{r.options_per_watt:>10,.1f} {paper:>12} {ratio:>6}"
        )
    return "\n".join(lines)
