"""The trace report: where simulated time went, summarised offline.

``repro-cds serve/risk/simulate --trace-out`` write a Chrome trace-event
JSON; this module is the other half of that round trip — ``repro-cds
trace FILE`` loads the file back into spans and answers the three
questions a latency investigation starts with:

* **critical path** — the slowest requests end to end, with each one's
  latency broken into its sequential phases (coalesce wait, host-link
  dispatch, card queue, card service);
* **busy share** — which resource tracks (host link, each card) were
  busiest over the trace span;
* **queue wait by kind** — how long each workload class (quote, reval,
  var, risk refreshes) sat waiting (coalescer plus card queue) before
  any card touched it.

Follows the :mod:`repro.analysis.serving` pattern: one ``summarise_*``
call on the payload, a deterministic text rendering, a JSON-friendly
dict.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.telemetry import Span, load_chrome_trace

__all__ = [
    "KindWait",
    "RequestPath",
    "TraceSummary",
    "TrackBusy",
    "render_trace_summary",
    "summarise_trace",
    "trace_summary_dict",
]

#: Request phases in pipeline order (the order they tile a latency).
PHASE_ORDER = ("coalesce", "host_link", "card_queue", "card_service")

#: Phases that count as *waiting* (no card is pricing the request yet).
WAIT_PHASES = ("coalesce", "card_queue")


@dataclass(frozen=True)
class RequestPath:
    """One request's end-to-end path through the pipeline.

    Attributes
    ----------
    trace_id / kind:
        Request identity and workload class.
    start_s / end_s / latency_s:
        Earliest phase start, latest phase end, and their difference
        (the request's simulated latency).
    phases:
        Phase name → seconds, in :data:`PHASE_ORDER` where present.
    """

    trace_id: int
    kind: str
    start_s: float
    end_s: float
    latency_s: float
    phases: tuple[tuple[str, float], ...]

    @property
    def wait_s(self) -> float:
        """Seconds spent in the waiting phases (coalesce + card queue)."""
        return sum(d for name, d in self.phases if name in WAIT_PHASES)


@dataclass(frozen=True)
class TrackBusy:
    """Busy roll-up for one resource track (host link or one card)."""

    track: str
    n_spans: int
    busy_seconds: float
    busy_share: float


@dataclass(frozen=True)
class KindWait:
    """Queue-wait roll-up for one workload class."""

    kind: str
    n_requests: int
    mean_wait_s: float
    p95_wait_s: float
    max_wait_s: float
    mean_latency_s: float


@dataclass(frozen=True)
class TraceSummary:
    """Everything the ``repro-cds trace`` subcommand prints.

    Attributes
    ----------
    n_spans / n_requests / n_shed:
        Raw span count, completed requests reconstructed, sheds seen.
    span_seconds:
        Trace extent: latest span end minus earliest span start.
    critical_path:
        The ``top`` slowest requests, slowest first.
    tracks:
        Resource tracks by descending busy share.
    kinds:
        Per-workload queue-wait roll-up, by kind name.
    """

    n_spans: int
    n_requests: int
    n_shed: int
    span_seconds: float
    critical_path: tuple[RequestPath, ...]
    tracks: tuple[TrackBusy, ...]
    kinds: tuple[KindWait, ...]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (non-empty)."""
    rank = max(0, min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1))))
    return sorted_values[rank]


def summarise_trace(source, *, top: int = 10) -> TraceSummary:
    """Summarise a Chrome trace payload written by ``--trace-out``.

    Parameters
    ----------
    source:
        Path to the trace JSON, an already-parsed payload dict, or an
        iterable of :class:`~repro.telemetry.Span` (a recorder works).
    top:
        Critical-path depth: how many of the slowest requests to keep.

    Returns
    -------
    TraceSummary
        Deterministic roll-up (ties broken by trace id / track name).
    """
    if top < 1:
        raise ValidationError(f"top must be >= 1, got {top}")
    if isinstance(source, (list, tuple)) and (
        not source or isinstance(source[0], Span)
    ):
        spans: tuple[Span, ...] = tuple(source)
    elif hasattr(source, "spans"):
        spans = tuple(source.spans)
    else:
        try:
            spans = load_chrome_trace(source)
        except OSError as exc:
            raise ValidationError(f"cannot read trace: {exc}") from exc
        except ValueError as exc:  # json.JSONDecodeError subclasses this
            raise ValidationError(f"not a JSON trace payload: {exc}") from exc
    if not spans:
        raise ValidationError("trace holds no spans; was recording enabled?")

    extent_start = min(s.start_s for s in spans)
    extent_end = max(s.end_s for s in spans)
    span_seconds = extent_end - extent_start

    # --- requests: group phase spans by trace id ----------------------
    by_trace: dict[int, list[Span]] = defaultdict(list)
    n_shed = 0
    for s in spans:
        if s.trace_id is None:
            continue
        if s.name == "shed":
            n_shed += 1
            continue
        by_trace[s.trace_id].append(s)
    requests: list[RequestPath] = []
    for trace_id in sorted(by_trace):
        group = by_trace[trace_id]
        durations = {s.name: s.duration_s for s in group}
        phases = tuple(
            (name, durations.pop(name))
            for name in PHASE_ORDER
            if name in durations
        )
        # Phases outside the canonical order still count, after it.
        phases += tuple(sorted(durations.items()))
        start = min(s.start_s for s in group)
        end = max(s.end_s for s in group)
        kinds = {s.kind for s in group if s.kind}
        requests.append(
            RequestPath(
                trace_id=trace_id,
                kind=min(kinds) if kinds else "",
                start_s=start,
                end_s=end,
                latency_s=end - start,
                phases=phases,
            )
        )
    critical = tuple(
        sorted(requests, key=lambda r: (-r.latency_s, r.trace_id))[:top]
    )

    # --- resource tracks: busy share over the trace extent ------------
    busy: dict[str, list[Span]] = defaultdict(list)
    for s in spans:
        if s.category == "resource":
            busy[s.track].append(s)
    tracks = tuple(
        sorted(
            (
                TrackBusy(
                    track=track,
                    n_spans=len(group),
                    busy_seconds=sum(s.duration_s for s in group),
                    busy_share=(
                        sum(s.duration_s for s in group) / span_seconds
                        if span_seconds > 0
                        else 0.0
                    ),
                )
                for track, group in busy.items()
            ),
            key=lambda t: (-t.busy_seconds, t.track),
        )
    )

    # --- queue wait by workload kind ----------------------------------
    by_kind: dict[str, list[RequestPath]] = defaultdict(list)
    for r in requests:
        by_kind[r.kind or "?"].append(r)
    kinds = []
    for kind in sorted(by_kind):
        group = by_kind[kind]
        waits = sorted(r.wait_s for r in group)
        kinds.append(
            KindWait(
                kind=kind,
                n_requests=len(group),
                mean_wait_s=sum(waits) / len(waits),
                p95_wait_s=_percentile(waits, 0.95),
                max_wait_s=waits[-1],
                mean_latency_s=sum(r.latency_s for r in group) / len(group),
            )
        )

    return TraceSummary(
        n_spans=len(spans),
        n_requests=len(requests),
        n_shed=n_shed,
        span_seconds=span_seconds,
        critical_path=critical,
        tracks=tracks,
        kinds=tuple(kinds),
    )


def render_trace_summary(summary: TraceSummary) -> str:
    """Text rendering of the trace summary (byte-deterministic)."""
    lines = [
        f"Trace summary — {summary.n_spans} span(s), "
        f"{summary.n_requests} request(s), {summary.n_shed} shed, "
        f"extent {summary.span_seconds * 1e3:.3f} ms",
    ]
    if summary.tracks:
        lines.append("  resources by busy share:")
        lines.append(
            f"  {'Track':>10} {'Spans':>6} {'Busy (ms)':>10} {'Share':>6}"
        )
        for t in summary.tracks:
            lines.append(
                f"  {t.track:>10} {t.n_spans:>6} "
                f"{t.busy_seconds * 1e3:>10.3f} {t.busy_share:>6.1%}"
            )
    if summary.kinds:
        lines.append("  queue wait by workload kind (coalesce + card queue):")
        lines.append(
            f"  {'Kind':>10} {'Reqs':>6} {'Mean(ms)':>9} {'p95(ms)':>8} "
            f"{'Max(ms)':>8} {'Lat(ms)':>8}"
        )
        for k in summary.kinds:
            lines.append(
                f"  {k.kind:>10} {k.n_requests:>6} "
                f"{k.mean_wait_s * 1e3:>9.3f} {k.p95_wait_s * 1e3:>8.3f} "
                f"{k.max_wait_s * 1e3:>8.3f} {k.mean_latency_s * 1e3:>8.3f}"
            )
    if summary.critical_path:
        lines.append(
            f"  critical path — {len(summary.critical_path)} slowest "
            f"request(s):"
        )
        for r in summary.critical_path:
            phases = ", ".join(
                f"{name} {d * 1e3:.3f}" for name, d in r.phases
            )
            lines.append(
                f"    #{r.trace_id} [{r.kind or '?'}] "
                f"{r.latency_s * 1e3:.3f} ms ({phases})"
            )
    return "\n".join(lines)


def trace_summary_dict(summary: TraceSummary) -> dict:
    """JSON-friendly dict of the trace summary."""
    return {
        "n_spans": summary.n_spans,
        "n_requests": summary.n_requests,
        "n_shed": summary.n_shed,
        "span_seconds": summary.span_seconds,
        "critical_path": [
            {
                "trace_id": r.trace_id,
                "kind": r.kind,
                "start_s": r.start_s,
                "end_s": r.end_s,
                "latency_s": r.latency_s,
                "phases": {name: d for name, d in r.phases},
            }
            for r in summary.critical_path
        ],
        "tracks": [
            {
                "track": t.track,
                "n_spans": t.n_spans,
                "busy_seconds": t.busy_seconds,
                "busy_share": t.busy_share,
            }
            for t in summary.tracks
        ],
        "kinds": [
            {
                "kind": k.kind,
                "n_requests": k.n_requests,
                "mean_wait_s": k.mean_wait_s,
                "p95_wait_s": k.p95_wait_s,
                "max_wait_s": k.max_wait_s,
                "mean_latency_s": k.mean_latency_s,
            }
            for k in summary.kinds
        ],
    }
