"""Unified pricing-backend API: one protocol, one registry, one session.

Before this package, each consumer layer reached into its own pricing
entry point — engines via :meth:`~repro.engines.base.CDSEngineBase.run`,
risk via the packed kernels, serving via the risk engine's internals.
:mod:`repro.api` replaces that fan-out with one surface:

* :class:`PricingBackend` — the backend protocol: bind a book, answer
  typed :class:`PriceRequest` objects with :class:`PriceResult`
  surfaces, advertise :class:`BackendCapabilities`, expose a dispatch
  cost-model hook.
* the **registry** — ``cpu``, ``vectorized``, ``dataflow`` and
  ``cluster`` ship built in; :func:`register_backend` adds new execution
  targets (a real FPGA driver, a GPU kernel, a remote worker) without
  touching any consumer layer.
* :class:`PricingSession` / :func:`open_session` — the facade every
  consumer goes through, negotiating tensor-batched versus per-state
  execution from the capability flags.

See ``docs/api.md`` for the full protocol description and the migration
table from the old entry points.
"""

from repro.api.cost import DispatchCostModel
from repro.api.protocol import (
    BackendCapabilities,
    LegSurfaces,
    MarketGrid,
    PriceRequest,
    PriceResult,
    PricingBackend,
    price_via,
)
from repro.api.registry import (
    available_backends,
    create_backend,
    register_backend,
    unregister_backend,
)
from repro.api.backends import (
    ClusterBackend,
    CpuBackend,
    DataflowBackend,
    VectorizedBackend,
)
from repro.api.session import PricingSession, open_session

__all__ = [
    "BackendCapabilities",
    "MarketGrid",
    "PriceRequest",
    "PriceResult",
    "LegSurfaces",
    "PricingBackend",
    "price_via",
    "DispatchCostModel",
    "register_backend",
    "unregister_backend",
    "available_backends",
    "create_backend",
    "CpuBackend",
    "VectorizedBackend",
    "DataflowBackend",
    "ClusterBackend",
    "PricingSession",
    "open_session",
]
