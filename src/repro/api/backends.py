"""The four built-in pricing backends behind the registry.

============  =========================================================
``cpu``       The scalar reference pricer (:mod:`repro.core.pricing`)
              looped over the book — the repository's numerical ground
              truth, slow on purpose.
``vectorized``  The packed NumPy kernels of
              :mod:`repro.core.vector_pricing`: one market state per
              :func:`~repro.core.vector_pricing.price_packed_book`
              call, whole tensor batches per
              :func:`~repro.core.vector_pricing.price_packed_many`
              call.  The workhorse behind risk and serving.
``dataflow``  A simulated FPGA engine variant
              (:mod:`repro.engines`): real spreads from the
              discrete-event dataflow network plus the simulated
              kernel/PCIe timing in ``meta["engine_result"]``.
``cluster``   A wrapper sharding tensor rows across ``n_cards``
              simulated cards with any
              :class:`~repro.cluster.scheduler.ClusterScheduler`
              policy, delegating each shard to **any** base backend.
              Numerics are bit-identical to the base backend; only the
              shard assignment (``meta["assignment"]``) differs.
============  =========================================================

Every backend produces results bit-identical to the pre-API entry point
it wraps; the property suite (``tests/properties/test_prop_api.py``)
pins that, and the conformance suite
(``tests/api/test_backend_contract.py``) checks the capability flags.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.api.protocol import (
    BackendCapabilities,
    LegSurfaces,
    PriceRequest,
    PriceResult,
    PricingBackend,
    price_via,
)
from repro.api.registry import register_backend
from repro.cluster.scheduler import (
    ClusterScheduler,
    make_scheduler,
    validate_partition,
)
from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.core.vector_pricing import (
    PackedPortfolio,
    price_packed_book,
    price_packed_many,
)
from repro.engines import (
    InterOptionDataflowEngine,
    MultiEngineSystem,
    OptimisedDataflowEngine,
    VectorizedDataflowEngine,
    XilinxBaselineEngine,
)
from repro.errors import CapabilityError, ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "CpuBackend",
    "VectorizedBackend",
    "DataflowBackend",
    "ClusterBackend",
]


class CpuBackend(PricingBackend):
    """The scalar reference pricer, looped over the book.

    Ground truth: every other backend's conformance is measured against
    this one.  No batch-tensor support — the session decomposes tensor
    requests into per-state calls.
    """

    name = "cpu"
    capabilities = BackendCapabilities(
        supports_batch_tensor=False,
        supports_streaming=True,
        supports_legs=True,
        simulated_timing=False,
        description="scalar reference pricer (ground truth, per-option loop)",
    )

    def _price_state(self, request: PriceRequest) -> PriceResult:
        pricer = CDSPricer(
            yield_curve=request.yield_curve, hazard_curve=request.hazard_curve
        )
        options = list(self.options)
        if request.recovery is not None:
            rec = np.asarray(request.recovery, dtype=np.float64)
            if rec.shape != (self.n_options,):
                raise ValidationError(
                    f"recovery override must have shape ({self.n_options},), "
                    f"got {rec.shape}"
                )
            options = [
                replace(o, recovery_rate=float(r))
                for o, r in zip(options, rec)
            ]
        results = [pricer.price(o) for o in options]
        spreads = np.asarray(
            [r.spread_bps for r in results], dtype=np.float64
        ).reshape(1, self.n_options)
        legs = None
        if request.want_legs:
            legs = LegSurfaces.from_arrays(
                (
                    np.asarray([r.legs.premium_leg for r in results]),
                    np.asarray([r.legs.protection_leg for r in results]),
                    np.asarray([r.legs.accrual_leg for r in results]),
                    np.asarray(
                        [r.legs.survival_at_maturity for r in results]
                    ),
                ),
                1,
                self.n_options,
            )
        return PriceResult(backend=self.name, spreads_bps=spreads, legs=legs)


class VectorizedBackend(PricingBackend):
    """The packed NumPy kernels: the host-side workhorse.

    Binding packs the book once (:class:`~repro.core.vector_pricing.
    PackedPortfolio`), so every request pays only curve evaluation and
    the leg reductions — exactly the pre-redesign hot path of the risk
    and serving layers, now behind the uniform protocol.
    """

    name = "vectorized"
    capabilities = BackendCapabilities(
        supports_batch_tensor=True,
        supports_streaming=True,
        supports_legs=True,
        simulated_timing=False,
        description="packed NumPy kernels (price_packed_book/_many)",
    )

    def __init__(self) -> None:
        super().__init__()
        self._packed: PackedPortfolio | None = None

    def _on_bind(self, options: list[CDSOption]) -> None:
        self._packed = PackedPortfolio.pack(options)

    @property
    def packed(self) -> PackedPortfolio:
        """The packed book (state-independent kernel intermediates)."""
        if self._packed is None:
            raise ValidationError("backend 'vectorized' has no bound book")
        return self._packed

    def _price_state(self, request: PriceRequest) -> PriceResult:
        spreads, legs = price_packed_book(
            self.packed,
            request.yield_curve,
            request.hazard_curve,
            recovery=request.recovery,
            want_legs=request.want_legs,
        )
        return PriceResult(
            backend=self.name,
            spreads_bps=spreads.reshape(1, self.n_options),
            legs=(
                LegSurfaces.from_arrays(legs, 1, self.n_options)
                if request.want_legs
                else None
            ),
        )

    def _price_tensor(self, request: PriceRequest) -> PriceResult:
        grid = request.tensor
        idx = request.row_indices
        spreads, legs = price_packed_many(
            self.packed,
            grid.yield_times,
            grid.yield_values[idx],
            grid.hazard_times,
            grid.hazard_values[idx],
            recovery_shifts=grid.recovery_shifts[idx],
            want_legs=request.want_legs,
            chunk_size=request.chunk_size,
        )
        return PriceResult(
            backend=self.name,
            spreads_bps=spreads,
            legs=(
                LegSurfaces.from_arrays(legs, idx.size, self.n_options)
                if request.want_legs
                else None
            ),
        )

    def close(self) -> None:
        self._packed = None
        super().close()


class DataflowBackend(PricingBackend):
    """A simulated FPGA engine variant behind the protocol.

    Spreads are genuine outputs of the discrete-event dataflow network
    (bit-identical to the engine's direct :meth:`~repro.engines.base.
    CDSEngineBase.run`); the simulated
    :class:`~repro.engines.base.EngineResult` rides along in
    ``meta["engine_result"]``.  No leg surfaces — the fabric engines
    emit spreads only — so PV consumers (risk, serving) must negotiate a
    ``supports_legs`` backend instead.

    Parameters
    ----------
    scenario:
        Experimental configuration (default
        :class:`~repro.workloads.scenarios.PaperScenario`).
    variant:
        Engine variant: ``baseline``, ``optimised``, ``interoption``,
        ``vectorised`` (alias ``vectorized``) or ``multi``.
    n_engines:
        Engine instances for the ``multi`` variant.
    """

    name = "dataflow"
    capabilities = BackendCapabilities(
        supports_batch_tensor=False,
        supports_streaming=False,
        supports_legs=False,
        simulated_timing=True,
        description="simulated FPGA dataflow engine (spreads + DES timing)",
    )

    _VARIANTS = {
        "baseline": XilinxBaselineEngine,
        "optimised": OptimisedDataflowEngine,
        "interoption": InterOptionDataflowEngine,
        "vectorised": VectorizedDataflowEngine,
        "vectorized": VectorizedDataflowEngine,
        "multi": MultiEngineSystem,
    }

    def __init__(
        self,
        scenario: PaperScenario | None = None,
        variant: str = "vectorised",
        n_engines: int = 5,
    ) -> None:
        super().__init__()
        if variant not in self._VARIANTS:
            raise ValidationError(
                f"unknown dataflow variant {variant!r}; choose from "
                f"{sorted(set(self._VARIANTS))}"
            )
        self.scenario = scenario if scenario is not None else PaperScenario()
        self.variant = variant
        cls = self._VARIANTS[variant]
        if cls is MultiEngineSystem:
            self._engine = cls(self.scenario, n_engines=n_engines)
        else:
            self._engine = cls(self.scenario)

    def _price_state(self, request: PriceRequest) -> PriceResult:
        if request.recovery is not None:
            raise CapabilityError(
                "backend 'dataflow' prices contracts as written; recovery "
                "overrides need the 'cpu' or 'vectorized' backend"
            )
        result = self._engine.run(
            list(self.options), request.yield_curve, request.hazard_curve
        )
        return PriceResult(
            backend=self.name,
            spreads_bps=result.spreads_bps.reshape(1, self.n_options),
            meta={"engine_result": result},
        )


class ClusterBackend(PricingBackend):
    """Shard tensor rows across simulated cards, over **any** base backend.

    The wrapper owns only the *where*: request rows are partitioned by a
    cluster scheduling policy and each shard is delegated, in one call,
    to the wrapped base backend.  The *what* — every number — is
    bit-identical to the base backend pricing the same rows directly;
    the shard assignment rides along in ``meta["assignment"]`` for
    timing roll-ups.

    Tensor sharding engages when the wrapped base advertises
    ``supports_batch_tensor`` (the wrapper mirrors the base's flag, so
    for a non-batch base the session facade decomposes tensor requests
    per state *before* they reach the wrapper and no assignment is
    recorded).  Consumers that need a card plan either way — e.g. the
    risk engine's per-scenario fallback and its timing roll-up — call
    :meth:`shard_rows` directly.

    Parameters
    ----------
    base:
        Registry name or backend instance to wrap (default
        ``vectorized``).
    n_cards:
        Cards to shard across.
    scheduler:
        Sharding policy — name or
        :class:`~repro.cluster.scheduler.ClusterScheduler` instance.
    base_config:
        Extra keywords forwarded to the base backend's factory when
        ``base`` is a registry name.
    """

    name = "cluster"

    def __init__(
        self,
        base: str | PricingBackend = "vectorized",
        n_cards: int = 1,
        scheduler: ClusterScheduler | str = "least-loaded",
        **base_config,
    ) -> None:
        super().__init__()
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        if isinstance(base, str):
            from repro.api.registry import create_backend

            base = create_backend(base, **base_config)
        elif base_config:
            raise ValidationError(
                "base_config keywords only apply when base is a registry name"
            )
        if isinstance(base, ClusterBackend):
            raise ValidationError("cluster backends do not nest")
        self.base = base
        self.n_cards = n_cards
        self.scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )

    @property
    def capabilities(self) -> BackendCapabilities:  # type: ignore[override]
        """Derived from the wrapped base backend."""
        base = self.base.capabilities
        return BackendCapabilities(
            supports_batch_tensor=base.supports_batch_tensor,
            supports_streaming=base.supports_streaming,
            supports_legs=base.supports_legs,
            simulated_timing=True,
            description=(
                f"{self.n_cards}-card {self.scheduler.name} shard over "
                f"'{self.base.name}'"
            ),
        )

    def _on_bind(self, options: list[CDSOption]) -> None:
        self.base.bind(options)

    def shard_rows(self, n_rows: int) -> list[list[int]]:
        """Partition ``n_rows`` request positions across the cards.

        Uniform costs (every row reprices the whole book), sorted chunks
        — the exact assignment :func:`repro.risk.sharding.
        shard_scenarios` produced before the redesign, so timing
        roll-ups built on it are unchanged.
        """
        if n_rows < 1:
            raise ValidationError(f"n_rows must be >= 1, got {n_rows}")
        assignment = self.scheduler.partition([1.0] * n_rows, self.n_cards)
        validate_partition(assignment, n_rows)
        for chunk in assignment:
            chunk.sort()
        return assignment

    def _price_state(self, request: PriceRequest) -> PriceResult:
        part = price_via(self.base, request)
        return PriceResult(
            backend=self.name,
            spreads_bps=part.spreads_bps,
            legs=part.legs,
            meta={"base": self.base.name, "n_cards": self.n_cards, **part.meta},
        )

    _LEG_NAMES = ("premium", "protection", "accrual", "survival_at_maturity")

    def _price_tensor(self, request: PriceRequest) -> PriceResult:
        idx = request.row_indices
        assignment = self.shard_rows(int(idx.size))
        spreads = np.empty((idx.size, self.n_options), dtype=np.float64)
        # Shard results scatter straight into the stitched surfaces so
        # only one shard's legs are in flight on top of the output
        # arrays (holding every card's parts before stitching would
        # double peak leg memory on large grids).
        surfaces = (
            {
                name: np.empty((idx.size, self.n_options), dtype=np.float64)
                for name in self._LEG_NAMES
            }
            if request.want_legs
            else None
        )
        for chunk in assignment:
            if not chunk:
                continue
            pos = np.asarray(chunk, dtype=np.intp)
            sub = PriceRequest.tensor_rows(
                request.tensor,
                idx[pos],
                want_legs=request.want_legs,
                chunk_size=request.chunk_size,
            )
            part = price_via(self.base, sub)
            spreads[pos] = part.spreads_bps
            if surfaces is not None:
                for name in self._LEG_NAMES:
                    surfaces[name][pos] = getattr(part.legs, name)
        legs = LegSurfaces(**surfaces) if surfaces is not None else None
        return PriceResult(
            backend=self.name,
            spreads_bps=spreads,
            legs=legs,
            meta={
                "base": self.base.name,
                "n_cards": self.n_cards,
                "policy": self.scheduler.name,
                "assignment": [list(chunk) for chunk in assignment],
            },
        )

    def dispatch_cost_model(
        self, scenario, yield_curve, hazard_curve, *, n_engines: int = 5
    ):
        """Delegate to the wrapped base backend's cost model."""
        return self.base.dispatch_cost_model(
            scenario, yield_curve, hazard_curve, n_engines=n_engines
        )

    def close(self) -> None:
        self.base.close()
        super().close()


register_backend("cpu", CpuBackend)
register_backend("vectorized", VectorizedBackend)
register_backend("dataflow", DataflowBackend)
register_backend("cluster", ClusterBackend)
