"""Dispatch cost modelling: the per-batch economics behind every backend.

:class:`DispatchCostModel` started life inside the serving layer; it
lives here now because it is the *backend's* answer to "what does one
dispatched batch cost on your device?" — the
:meth:`~repro.api.protocol.PricingBackend.dispatch_cost_model` hook of
the unified pricing API.  The serving layer consumes it through the
session; :mod:`repro.serving.engine` re-exports it for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.interconnect import HostLinkModel
from repro.cluster.node import ClusterNode
from repro.errors import ValidationError
from repro.sim import Reservation, Resource, Simulation

__all__ = ["DispatchCostModel", "ClusterTimingRig"]

#: PCIe payload sizes reused from :meth:`~repro.fpga.pcie.PCIeModel.
#: batch_seconds`: one rate-table entry (two doubles), one option down
#: plus one spread result up.
_RATE_ENTRY_BYTES = 16
_CELL_BYTES = 24 + 8


@dataclass(frozen=True)
class DispatchCostModel:
    """Simulated card time of one micro-batch dispatch.

    The per-dispatch service time splits into a fixed overhead and two
    marginal terms::

        service = invocation
                + contention * (pcie_latency + rows * row_transfer
                                             + cells * cell_transfer)
                + cells * cell_kernel

    where *rows* counts the distinct market states the card receives
    (each ships a fresh pair of rate tables) and *cells* the (row,
    option) pairs it prices.  Host-side contention stretches only the
    PCIe terms, mirroring :mod:`repro.risk.sharding`.

    Parameters
    ----------
    invocation_seconds:
        Fixed kernel-invocation overhead per dispatch.
    pcie_latency_s:
        Fixed DMA setup latency per dispatch.
    row_transfer_seconds:
        Marginal PCIe time per market-state row (both rate tables).
    cell_transfer_seconds:
        Marginal PCIe time per priced cell (option down, spread up).
    cell_kernel_seconds:
        Marginal fabric time per priced cell.
    """

    invocation_seconds: float
    pcie_latency_s: float
    row_transfer_seconds: float
    cell_transfer_seconds: float
    cell_kernel_seconds: float

    def __post_init__(self) -> None:
        for name in (
            "invocation_seconds",
            "pcie_latency_s",
            "row_transfer_seconds",
            "cell_transfer_seconds",
            "cell_kernel_seconds",
        ):
            if getattr(self, name) < 0:
                raise ValidationError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    @classmethod
    def calibrate(
        cls,
        scenario,
        options,
        yield_curve,
        hazard_curve,
        *,
        n_engines: int = 5,
    ) -> "DispatchCostModel":
        """Derive the model from one representative card batch.

        One :class:`~repro.cluster.node.ClusterNode` discrete-event run
        over the book gives the kernel cycles of a full-book repricing;
        subtracting the scenario's invocation overhead and dividing by
        the book size yields the per-cell fabric cost.  The PCIe terms
        come straight from the scenario's
        :class:`~repro.fpga.pcie.PCIeModel` payload sizes.

        Parameters
        ----------
        scenario:
            Experimental configuration (clock, PCIe, overheads).
        options:
            The book the backend quotes (sets the representative batch).
        yield_curve / hazard_curve:
            Base rate tables (sizes drive the simulated costs).
        n_engines:
            CDS engines per card.
        """
        node = ClusterNode(0, scenario, n_engines=n_engines)
        result = node.price(list(options), yield_curve, hazard_curve)
        compute_cycles = max(
            result.kernel_cycles - scenario.invocation_overhead_cycles, 0.0
        )
        bandwidth = scenario.pcie.bandwidth_bytes_per_sec
        return cls(
            invocation_seconds=scenario.clock.seconds(
                scenario.invocation_overhead_cycles
            ),
            pcie_latency_s=scenario.pcie.latency_s,
            row_transfer_seconds=2 * scenario.n_rates * _RATE_ENTRY_BYTES
            / bandwidth,
            cell_transfer_seconds=_CELL_BYTES / bandwidth,
            cell_kernel_seconds=scenario.clock.seconds(compute_cycles)
            / len(options),
        )

    def service_seconds(
        self, n_rows: int, n_cells: int, *, contention: float = 1.0
    ) -> float:
        """Card busy time for one dispatched chunk.

        Parameters
        ----------
        n_rows / n_cells:
            Distinct market-state rows transferred and cells priced.
        contention:
            Host-link stretch factor for the PCIe terms (see
            :meth:`~repro.cluster.interconnect.HostLinkModel.
            contention_factor`).
        """
        if n_rows < 1 or n_cells < 1:
            raise ValidationError(
                f"a dispatch needs >= 1 row and cell, got {n_rows}/{n_cells}"
            )
        if contention < 1.0:
            raise ValidationError(f"contention must be >= 1, got {contention}")
        pcie = (
            self.pcie_latency_s
            + n_rows * self.row_transfer_seconds
            + n_cells * self.cell_transfer_seconds
        )
        return (
            self.invocation_seconds
            + contention * pcie
            + n_cells * self.cell_kernel_seconds
        )

    def reserve(
        self,
        resource: Resource,
        ready_s: float,
        n_rows: int,
        n_cells: int,
        *,
        contention: float = 1.0,
        span_args=None,
    ) -> Reservation:
        """Reserve one dispatch's busy window on a simulated card.

        The :mod:`repro.sim` spelling of :meth:`service_seconds`: the
        chunk becomes ready at ``ready_s`` (its host dispatch completed)
        and occupies ``resource`` from ``max(ready_s, busy_until)`` for
        exactly the modelled service time.

        Parameters
        ----------
        resource:
            The card's :class:`~repro.sim.Resource`.
        ready_s:
            Instant the dispatched chunk reaches the card.
        n_rows / n_cells / contention:
            As for :meth:`service_seconds`.
        span_args:
            Telemetry metadata forwarded to the card resource's busy
            span (only read when the resource records spans).
        """
        return resource.reserve(
            ready_s,
            self.service_seconds(n_rows, n_cells, contention=contention),
            span_name="chunk",
            span_kind="dispatch",
            span_args=span_args
            if span_args is not None
            else {"rows": n_rows, "cells": n_cells},
        )


class ClusterTimingRig:
    """One simulated cluster's timing surfaces: host thread + N cards.

    The rig is what a ``simulated_timing`` backend hands the serving
    layer through :meth:`~repro.api.session.PricingSession.timing_rig`:
    a fresh :class:`~repro.sim.Simulation` carrying one serially-occupied
    host :class:`~repro.sim.Resource` (chunk dispatches pay
    :meth:`~repro.cluster.interconnect.HostLinkModel.dispatch_seconds`
    each, in issue order) and one resource per card (busy windows granted
    by the backend's :class:`DispatchCostModel`).  All three surfaces
    share the rig's single clock — the unified-simulation invariant.

    Parameters
    ----------
    cost_model:
        The backend's per-dispatch economics.
    link:
        Host-path timing model.
    n_cards:
        Simulated cards to stand up.
    sim:
        Share an existing simulation (default: a fresh one), letting
        several workloads contend for the same cards on one clock.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle.  When it
        records, every host and card busy window is emitted as a span on
        that resource's track; :attr:`last_host_window` always tracks
        the most recent host reservation so callers can split a
        dispatch's latency into host-link and card phases.
    """

    def __init__(
        self,
        cost_model: DispatchCostModel,
        link: HostLinkModel,
        n_cards: int,
        *,
        sim: Simulation | None = None,
        telemetry=None,
    ) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        self.cost_model = cost_model
        self.link = link
        self.sim = sim if sim is not None else Simulation()
        recorder = telemetry.recorder if telemetry is not None else None
        self.telemetry = telemetry
        self.host = Resource("host", recorder=recorder)
        self.cards = [
            Resource(f"card{c}", recorder=recorder) for c in range(n_cards)
        ]
        #: The host reservation of the most recent :meth:`dispatch` —
        #: the "issued" half of the chained pair, which the serving
        #: layer reads to attribute host-link time per request.
        self.last_host_window: Reservation | None = None

    @property
    def n_cards(self) -> int:
        """Cards on the rig."""
        return len(self.cards)

    def dispatch(
        self,
        ready_s: float,
        card_index: int,
        n_rows: int,
        n_cells: int,
        *,
        contention: float = 1.0,
    ) -> Reservation:
        """Time one chunk: serial host dispatch, then the card window.

        The host thread issues the dispatch no earlier than ``ready_s``
        (batch formation) and no earlier than its previous dispatch; the
        card then starts when both the dispatch and its own previous
        window have completed — the exact legacy ``host_free`` /
        ``busy_until`` recurrence, now two chained reservations.
        """
        issued = self.host.reserve(
            ready_s,
            self.link.dispatch_seconds(1),
            span_name="dispatch",
            span_kind="host_link",
            span_args={"card": card_index},
        )
        self.last_host_window = issued
        return self.cost_model.reserve(
            self.cards[card_index],
            issued.done_s,
            n_rows,
            n_cells,
            contention=contention,
        )
