"""The pricing-backend protocol: typed requests, results, capabilities.

Four PRs of growth left the repository with four parallel entry points
into the pricing core — :meth:`repro.engines.base.CDSEngineBase.run`,
the packed kernels of :mod:`repro.core.vector_pricing`, the risk
engine's revaluation methods and the quote server's dispatch path.  This
module defines the *one* contract they all meet:

* :class:`PriceRequest` — a typed description of one pricing job: either
  a single market state (a yield/hazard curve pair) or a batch of tensor
  rows (any :class:`MarketGrid`, e.g. a lowered scenario set or a live
  market tape).
* :class:`PriceResult` — the uniform answer: a ``(n_states, n_options)``
  spread surface, optional leg surfaces, and backend-specific metadata.
* :class:`BackendCapabilities` — the capability flags a
  :class:`~repro.api.session.PricingSession` negotiates against:
  ``supports_batch_tensor`` (one call prices many market states),
  ``supports_streaming`` (usable under the serving layer),
  ``supports_legs`` (PV surfaces available), ``simulated_timing``
  (results carry a simulated device timing).
* :class:`PricingBackend` — the abstract backend: bind a book once,
  answer :class:`PriceRequest` objects, expose capabilities and a
  dispatch cost-model hook for the serving layer.

:func:`price_via` is the negotiation kernel shared by the session facade
and the cluster backend: a tensor request against a backend without
``supports_batch_tensor`` is transparently decomposed into per-state
requests (the per-scenario path), bit-identical to the batched one.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.core.vector_pricing import shifted_recovery_row
from repro.errors import CapabilityError, ValidationError

__all__ = [
    "BackendCapabilities",
    "MarketGrid",
    "PriceRequest",
    "LegSurfaces",
    "PriceResult",
    "PricingBackend",
    "price_via",
]


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do; the session negotiates against these flags.

    Attributes
    ----------
    supports_batch_tensor:
        One :meth:`PricingBackend.price` call can price many market
        states (a tensor request) in one kernel invocation.  Backends
        without it still answer tensor requests through the session —
        :func:`price_via` decomposes the batch into per-state requests,
        bit-identically.
    supports_streaming:
        The backend can sit under the live serving layer: quote surfaces
        with leg breakdowns at micro-batch granularity.
    supports_legs:
        Leg surfaces (premium/protection/accrual/survival) are available,
        which is what PV-based consumers (risk, serving) require.
    simulated_timing:
        Results carry a simulated device timing in ``meta`` (the
        discrete-event FPGA backends) rather than being host-only math.
    description:
        One line for registry listings (``repro-cds backends``).
    """

    supports_batch_tensor: bool
    supports_streaming: bool
    supports_legs: bool
    simulated_timing: bool
    description: str = ""


@runtime_checkable
class MarketGrid(Protocol):
    """Structural type of a batch of market states on shared knot grids.

    Anything exposing these arrays works as the ``tensor`` of a
    :class:`PriceRequest` — in particular
    :class:`repro.risk.tensor.ScenarioTensor` (lowered scenario sets and
    live market tapes) satisfies it without :mod:`repro.api` importing
    the risk layer.
    """

    @property
    def yield_times(self) -> np.ndarray: ...  # pragma: no cover - protocol

    @property
    def yield_values(self) -> np.ndarray: ...  # pragma: no cover - protocol

    @property
    def hazard_times(self) -> np.ndarray: ...  # pragma: no cover - protocol

    @property
    def hazard_values(self) -> np.ndarray: ...  # pragma: no cover - protocol

    @property
    def recovery_shifts(self) -> np.ndarray: ...  # pragma: no cover - protocol

    @property
    def n_scenarios(self) -> int: ...  # pragma: no cover - protocol


@dataclass(frozen=True, eq=False)
class PriceRequest:
    """One pricing job against a session's bound book.

    Compared by identity, like :class:`PriceResult` and
    :class:`LegSurfaces` — the optional array field makes a field-wise
    ``==`` ill-defined.

    Exactly one market-state form must be given:

    * **state** — a ``yield_curve``/``hazard_curve`` pair (one market
      state, the whole book), optionally with a per-option ``recovery``
      override;
    * **tensor** — a :class:`MarketGrid` plus optional ``rows`` selecting
      which of its states to price, in output order.

    Attributes
    ----------
    yield_curve / hazard_curve:
        The single market state (state requests).
    tensor:
        The market-state batch (tensor requests).
    rows:
        Tensor rows to price, in output order; ``None`` prices every row.
    recovery:
        Optional ``(n_options,)`` recovery-rate override (state requests
        only; tensor requests carry shifts in the grid itself).
    want_legs:
        Request the leg surfaces (needed for PVs); backends without
        ``supports_legs`` refuse such requests.
    chunk_size:
        States per internal kernel chunk for batch-capable backends
        (``None`` = automatic); never changes the numbers.
    """

    yield_curve: YieldCurve | None = None
    hazard_curve: HazardCurve | None = None
    tensor: MarketGrid | None = None
    rows: tuple[int, ...] | None = None
    recovery: np.ndarray | None = None
    want_legs: bool = False
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        has_state = self.yield_curve is not None or self.hazard_curve is not None
        if self.tensor is None:
            if self.yield_curve is None or self.hazard_curve is None:
                raise ValidationError(
                    "a state request needs both yield_curve and hazard_curve"
                )
            if self.rows is not None:
                raise ValidationError("rows only apply to tensor requests")
        else:
            if has_state:
                raise ValidationError(
                    "give either a curve pair or a tensor, not both"
                )
            if self.recovery is not None:
                raise ValidationError(
                    "recovery overrides only apply to state requests; tensor "
                    "requests carry recovery_shifts in the grid"
                )
            if self.rows is not None:
                if len(self.rows) == 0:
                    raise ValidationError("rows must be non-empty when given")
                n = self.tensor.n_scenarios
                bad = [r for r in self.rows if not 0 <= int(r) < n]
                if bad:
                    raise ValidationError(
                        f"rows {bad} fall outside the {n}-state tensor"
                    )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    # ------------------------------------------------------------------
    @classmethod
    def state(
        cls,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        recovery: np.ndarray | None = None,
        want_legs: bool = False,
    ) -> "PriceRequest":
        """A single-market-state request."""
        return cls(
            yield_curve=yield_curve,
            hazard_curve=hazard_curve,
            recovery=recovery,
            want_legs=want_legs,
        )

    @classmethod
    def tensor_rows(
        cls,
        tensor: MarketGrid,
        rows: Sequence[int] | np.ndarray | None = None,
        *,
        want_legs: bool = False,
        chunk_size: int | None = None,
    ) -> "PriceRequest":
        """A batched request over ``tensor`` (all rows when ``rows=None``)."""
        return cls(
            tensor=tensor,
            rows=None if rows is None else tuple(int(r) for r in rows),
            want_legs=want_legs,
            chunk_size=chunk_size,
        )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"state"`` or ``"tensor"``."""
        return "state" if self.tensor is None else "tensor"

    @property
    def row_indices(self) -> np.ndarray:
        """Tensor rows this request prices (tensor requests only)."""
        if self.tensor is None:
            raise ValidationError("state requests have no tensor rows")
        if self.rows is None:
            return np.arange(self.tensor.n_scenarios, dtype=np.intp)
        return np.asarray(self.rows, dtype=np.intp)

    @property
    def n_states(self) -> int:
        """Market states this request prices."""
        return 1 if self.tensor is None else int(self.row_indices.size)


@dataclass(frozen=True, eq=False)
class LegSurfaces:
    """Per-leg PV surfaces, each of shape ``(n_states, n_options)``.

    The unit-notional quote surfaces every PV consumer derives from:
    ``annuity`` and :meth:`buyer_pv` centralise the two derived
    quantities the risk and serving layers used to recompute locally.
    """

    premium: np.ndarray
    protection: np.ndarray
    accrual: np.ndarray
    survival_at_maturity: np.ndarray

    @property
    def annuity(self) -> np.ndarray:
        """Risky annuity: premium plus accrual-on-default."""
        return self.premium + self.accrual

    def buyer_pv(self, unit_spread: np.ndarray) -> np.ndarray:
        """Unit-notional protection-buyer PV at contract ``unit_spread``.

        Parameters
        ----------
        unit_spread:
            ``(n_options,)`` contracted running spreads as unit fractions
            (bps / 10 000).
        """
        return self.protection - unit_spread[None, :] * self.annuity

    @classmethod
    def from_arrays(
        cls, legs: tuple[np.ndarray, ...], n_states: int, n_options: int
    ) -> "LegSurfaces":
        """Build from a kernel's raw leg tuple, normalising to 2-D."""
        premium, protection, accrual, survival = (
            np.asarray(a, dtype=np.float64).reshape(n_states, n_options)
            for a in legs
        )
        return cls(
            premium=premium,
            protection=protection,
            accrual=accrual,
            survival_at_maturity=survival,
        )


@dataclass(frozen=True, eq=False)
class PriceResult:
    """The uniform outcome of one :class:`PriceRequest`.

    Attributes
    ----------
    backend:
        Registry name of the backend that priced the request.
    spreads_bps:
        ``(n_states, n_options)`` par-spread surface — state requests
        have one row.
    legs:
        Leg surfaces when the request asked for them, else ``None``.
    meta:
        Backend-specific extras (simulated timing, shard assignment,
        negotiation notes); never needed for the numbers.
    """

    backend: str
    spreads_bps: np.ndarray
    legs: LegSurfaces | None = None
    meta: Mapping[str, object] = field(default_factory=dict, repr=False)

    @property
    def n_states(self) -> int:
        """Market states priced."""
        return int(self.spreads_bps.shape[0])

    @property
    def n_options(self) -> int:
        """Book size."""
        return int(self.spreads_bps.shape[1])


class PricingBackend(abc.ABC):
    """One pricing implementation behind the unified API.

    Subclasses bind a book once (:meth:`bind`), then answer
    :class:`PriceRequest` objects.  The class-level :attr:`capabilities`
    are the contract the session facade negotiates against — a backend
    must honour every flag it advertises (the conformance suite checks
    each registered backend).
    """

    #: Registry name; subclasses override.
    name = "abstract"

    #: Capability flags; subclasses override.
    capabilities = BackendCapabilities(
        supports_batch_tensor=False,
        supports_streaming=False,
        supports_legs=False,
        simulated_timing=False,
    )

    def __init__(self) -> None:
        self._options: tuple[CDSOption, ...] | None = None

    # ------------------------------------------------------------------
    def bind(self, options: Sequence[CDSOption]) -> None:
        """Attach the book this backend will price (packs once).

        A backend instance serves one bound book at a time: rebinding is
        refused while a book is attached — a silent rebind would repoint
        every session sharing the instance at the new book.  Call
        :meth:`close` first to release the binding.

        Parameters
        ----------
        options:
            The contracts, in result-column order.
        """
        if self._options is not None:
            raise ValidationError(
                f"backend {self.name!r} is already bound to a "
                f"{len(self._options)}-option book; close() it before "
                "rebinding (one backend instance serves one session)"
            )
        opts = tuple(options)
        if not opts:
            raise ValidationError("a backend needs at least one option")
        self._options = opts
        self._on_bind(list(opts))

    def _on_bind(self, options: list[CDSOption]) -> None:
        """Subclass hook: precompute bound-book state (packing etc.)."""

    @property
    def options(self) -> tuple[CDSOption, ...]:
        """The bound book (raises until :meth:`bind` ran)."""
        if self._options is None:
            raise ValidationError(
                f"backend {self.name!r} has no bound book; call bind() "
                "(or go through repro.api.open_session)"
            )
        return self._options

    @property
    def n_options(self) -> int:
        """Bound book size."""
        return len(self.options)

    # ------------------------------------------------------------------
    def price(self, request: PriceRequest) -> PriceResult:
        """Answer one request (the book must be bound).

        Tensor requests require ``supports_batch_tensor``; use
        :func:`price_via` (or the session facade) to have unsupported
        batches decomposed into per-state requests automatically.
        """
        if request.want_legs and not self.capabilities.supports_legs:
            raise CapabilityError(
                f"backend {self.name!r} does not produce leg surfaces "
                "(capabilities.supports_legs is False)"
            )
        if request.kind == "state":
            result = self._price_state(request)
        else:
            if not self.capabilities.supports_batch_tensor:
                raise CapabilityError(
                    f"backend {self.name!r} cannot price tensor batches "
                    "directly; negotiate through the session facade"
                )
            result = self._price_tensor(request)
        if result.spreads_bps.shape != (request.n_states, self.n_options):
            raise ValidationError(
                f"backend {self.name!r} returned a "
                f"{result.spreads_bps.shape} spread surface for a "
                f"({request.n_states}, {self.n_options}) request"
            )
        return result

    @abc.abstractmethod
    def _price_state(self, request: PriceRequest) -> PriceResult:
        """Price one market state (``request.kind == "state"``)."""

    def _price_tensor(self, request: PriceRequest) -> PriceResult:
        """Price a tensor batch; only batch-capable backends override."""
        raise CapabilityError(
            f"backend {self.name!r} does not implement tensor batches"
        )

    # ------------------------------------------------------------------
    def dispatch_cost_model(
        self,
        scenario,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        n_engines: int = 5,
    ):
        """Cost-model hook: simulated per-dispatch economics of this backend.

        The serving layer prices micro-batch dispatch decisions against
        this model.  The default calibrates
        :class:`repro.api.cost.DispatchCostModel` from one representative
        card batch over the bound book; backends may override (a real
        device backend would measure instead of simulate).

        Parameters
        ----------
        scenario:
            Experimental configuration
            (:class:`~repro.workloads.scenarios.PaperScenario`).
        yield_curve / hazard_curve:
            Base rate tables (sizes drive the simulated costs).
        n_engines:
            CDS engines per card.
        """
        from repro.api.cost import DispatchCostModel

        return DispatchCostModel.calibrate(
            scenario,
            list(self.options),
            yield_curve,
            hazard_curve,
            n_engines=n_engines,
        )

    def close(self) -> None:
        """Release bound state (idempotent)."""
        self._options = None


# ----------------------------------------------------------------------
def _decompose_tensor(
    backend: PricingBackend, request: PriceRequest
) -> PriceResult:
    """Price a tensor request one state at a time (negotiated fallback).

    Each row becomes a curve pair on the grid's knot times — exactly the
    per-scenario path the risk engine ran before the redesign, so the
    stacked result is bit-identical to it (and to the batched kernel,
    which the property suite pins).
    """
    grid = request.tensor
    assert grid is not None
    idx = request.row_indices
    base_recovery = np.asarray(
        [o.recovery_rate for o in backend.options], dtype=np.float64
    )
    spreads = np.empty((idx.size, backend.n_options), dtype=np.float64)
    legs: list[LegSurfaces] = []
    for out_row, i in enumerate(idx):
        recovery = shifted_recovery_row(
            base_recovery, float(grid.recovery_shifts[i])
        )
        sub = PriceRequest.state(
            YieldCurve(grid.yield_times, grid.yield_values[i]),
            HazardCurve(grid.hazard_times, grid.hazard_values[i]),
            recovery=recovery,
            want_legs=request.want_legs,
        )
        part = backend.price(sub)
        spreads[out_row] = part.spreads_bps[0]
        if request.want_legs:
            assert part.legs is not None
            legs.append(part.legs)
    surfaces = None
    if request.want_legs:
        surfaces = LegSurfaces(
            premium=np.vstack([l.premium for l in legs]),
            protection=np.vstack([l.protection for l in legs]),
            accrual=np.vstack([l.accrual for l in legs]),
            survival_at_maturity=np.vstack(
                [l.survival_at_maturity for l in legs]
            ),
        )
    return PriceResult(
        backend=backend.name,
        spreads_bps=spreads,
        legs=surfaces,
        meta={"negotiated": "per-state", "n_calls": int(idx.size)},
    )


def price_via(backend: PricingBackend, request: PriceRequest) -> PriceResult:
    """Answer ``request`` on ``backend``, negotiating around missing flags.

    The one rule of capability negotiation: a tensor request against a
    backend without ``supports_batch_tensor`` runs the per-state path
    (bit-identical, slower); every other capability mismatch is an error
    the caller must resolve by choosing another backend.
    """
    if request.want_legs and not backend.capabilities.supports_legs:
        raise CapabilityError(
            f"backend {backend.name!r} does not produce leg surfaces; "
            "PV consumers need a supports_legs backend "
            "(e.g. 'vectorized' or 'cpu')"
        )
    if (
        request.kind == "tensor"
        and not backend.capabilities.supports_batch_tensor
    ):
        return _decompose_tensor(backend, request)
    return backend.price(request)
