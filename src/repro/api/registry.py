"""String-keyed backend registry: every engine is an entry, not a fork.

The registry maps names (``cpu``, ``vectorized``, ``dataflow``,
``cluster``) to backend factories.  :func:`repro.api.open_session`
resolves through it, so adding a new execution target — a real FPGA
driver, a GPU kernel, a remote worker pool — is one
:func:`register_backend` call and zero changes to the risk, serving or
analysis layers.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.api.protocol import PricingBackend
from repro.errors import ValidationError

__all__ = [
    "register_backend",
    "unregister_backend",
    "available_backends",
    "create_backend",
]

#: Name -> factory.  Factories take the backend's ``**config`` keywords
#: and return an unbound :class:`PricingBackend`.
_FACTORIES: dict[str, Callable[..., PricingBackend]] = {}


def register_backend(
    name: str,
    factory: Callable[..., PricingBackend],
    *,
    replace: bool = False,
) -> None:
    """Register ``factory`` under ``name``.

    Parameters
    ----------
    name:
        Registry key (lower-case by convention).
    factory:
        Callable returning an unbound backend; keyword arguments are the
        backend's configuration (forwarded from ``open_session``).
    replace:
        Allow overwriting an existing entry (default: refuse, loudly).
    """
    if not name or not isinstance(name, str):
        raise ValidationError(f"backend name must be a non-empty str, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ValidationError(
            f"backend {name!r} is already registered; pass replace=True to "
            "overwrite it"
        )
    _FACTORIES[name] = factory


def unregister_backend(name: str) -> None:
    """Remove ``name`` from the registry (missing names are an error)."""
    if name not in _FACTORIES:
        raise ValidationError(f"backend {name!r} is not registered")
    del _FACTORIES[name]


def available_backends() -> tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_FACTORIES))


def create_backend(name: str, **config) -> PricingBackend:
    """Instantiate the backend registered under ``name``.

    Parameters
    ----------
    name:
        Registry key.
    config:
        Forwarded to the factory (backend-specific: ``n_cards`` and
        ``scheduler`` for ``cluster``, ``scenario`` for ``dataflow``...).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown pricing backend {name!r}; choose from "
            f"{list(available_backends())}"
        ) from None
    backend = factory(**config)
    if not isinstance(backend, PricingBackend):
        raise ValidationError(
            f"factory for backend {name!r} returned "
            f"{type(backend).__name__}, not a PricingBackend"
        )
    return backend
