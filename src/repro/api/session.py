"""The :class:`PricingSession` facade: one public door into every backend.

A session binds a book to a backend once and then answers pricing
requests with capability negotiation — tensor batches run in one kernel
call on batch-capable backends and decompose into bit-identical
per-state calls everywhere else.  :func:`open_session` is the single
public entry point the risk, serving and analysis layers build on::

    from repro.api import open_session
    from repro.workloads.scenarios import PaperScenario

    sc = PaperScenario(n_options=16)
    with open_session("vectorized", sc.options()) as session:
        result = session.price_state(sc.yield_curve(), sc.hazard_curve())
        spreads = result.spreads_bps[0]
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.api.protocol import (
    BackendCapabilities,
    MarketGrid,
    PriceRequest,
    PriceResult,
    PricingBackend,
    price_via,
)
from repro.api.registry import create_backend
from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.errors import CapabilityError, ValidationError

__all__ = ["PricingSession", "open_session"]

#: Human phrasing for capability flags in :meth:`PricingSession.require`
#: error messages.
_CAPABILITY_PHRASES = {
    "supports_batch_tensor": "batched tensor pricing",
    "supports_streaming": "streaming quote serving",
    "supports_legs": "leg surfaces",
    "simulated_timing": "simulated device timing",
}


class PricingSession:
    """A book bound to a backend, answering requests with negotiation.

    Parameters
    ----------
    backend:
        The backend to drive (bound to ``options`` at construction).
    options:
        The book, in result-column order.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle; defaults to
        the process-wide no-op :data:`~repro.telemetry.NULL_TELEMETRY`.
        Timing rigs built through :meth:`timing_rig` inherit it, so one
        recording handle observes every resource the session stands up.

    Notes
    -----
    Sessions are context managers; :meth:`close` releases the backend's
    bound state and further pricing raises.
    """

    def __init__(
        self,
        backend: PricingBackend,
        options: Sequence[CDSOption],
        *,
        telemetry=None,
    ) -> None:
        backend.bind(options)
        self._backend = backend
        self._closed = False
        if telemetry is None:
            from repro.telemetry import NULL_TELEMETRY

            telemetry = NULL_TELEMETRY
        self._telemetry = telemetry

    # ------------------------------------------------------------------
    @property
    def backend(self) -> PricingBackend:
        """The driven backend."""
        return self._backend

    @property
    def backend_name(self) -> str:
        """Registry name of the driven backend."""
        return self._backend.name

    @property
    def capabilities(self) -> BackendCapabilities:
        """The backend's capability flags (negotiation contract)."""
        return self._backend.capabilities

    @property
    def options(self) -> tuple[CDSOption, ...]:
        """The bound book."""
        return self._backend.options

    @property
    def n_options(self) -> int:
        """Bound book size."""
        return self._backend.n_options

    @property
    def telemetry(self):
        """The session's :class:`~repro.telemetry.Telemetry` handle."""
        return self._telemetry

    # ------------------------------------------------------------------
    def require(
        self, *flags: str, reason: str = "this operation"
    ) -> "PricingSession":
        """Assert capability flags, releasing the backend on failure.

        Consumer layers call this right after opening a session: if any
        flag is missing the session is **closed** (so a caller-supplied
        backend instance stays reusable) and :class:`~repro.errors.
        CapabilityError` names the base backend and the missing
        capability.  Returns ``self`` for chaining.

        Parameters
        ----------
        flags:
            :class:`~repro.api.BackendCapabilities` field names that
            must be true.
        reason:
            What needs them, for the error message (e.g. ``"risk
            revaluation"``).
        """
        caps = self.capabilities
        for flag in flags:
            if not hasattr(caps, flag):
                raise ValidationError(f"unknown capability flag {flag!r}")
        missing = [f for f in flags if not getattr(caps, f)]
        if missing:
            base = getattr(self._backend, "base", self._backend)
            name = base.name
            self.close()
            phrases = ", ".join(
                _CAPABILITY_PHRASES.get(f, f) for f in missing
            )
            raise CapabilityError(
                f"{reason} needs {phrases}, which backend {name!r} does "
                f"not advertise; choose one with "
                f"{'/'.join(missing)} (`repro-cds backends` lists them)"
            )
        return self

    def price(self, request: PriceRequest) -> PriceResult:
        """Answer one request, negotiating around missing capabilities.

        Tensor requests against a backend without
        ``supports_batch_tensor`` decompose into per-state calls
        (bit-identical); a ``want_legs`` request against a backend
        without leg surfaces raises
        :class:`~repro.errors.CapabilityError`.
        """
        self._check_open()
        return price_via(self._backend, request)

    def price_state(
        self,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        recovery: np.ndarray | None = None,
        want_legs: bool = False,
    ) -> PriceResult:
        """Price the book under one market state."""
        return self.price(
            PriceRequest.state(
                yield_curve, hazard_curve, recovery=recovery, want_legs=want_legs
            )
        )

    def price_tensor(
        self,
        tensor: MarketGrid,
        rows: Sequence[int] | np.ndarray | None = None,
        *,
        want_legs: bool = False,
        chunk_size: int | None = None,
    ) -> PriceResult:
        """Price the book under (selected rows of) a market-state batch."""
        return self.price(
            PriceRequest.tensor_rows(
                tensor, rows, want_legs=want_legs, chunk_size=chunk_size
            )
        )

    def spreads(
        self, yield_curve: YieldCurve, hazard_curve: HazardCurve
    ) -> np.ndarray:
        """Convenience: ``(n_options,)`` par spreads under one state."""
        return self.price_state(yield_curve, hazard_curve).spreads_bps[0]

    def dispatch_cost_model(
        self,
        scenario,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        n_engines: int = 5,
    ):
        """The backend's per-dispatch cost model (serving-layer hook)."""
        self._check_open()
        return self._backend.dispatch_cost_model(
            scenario, yield_curve, hazard_curve, n_engines=n_engines
        )

    def timing_rig(
        self,
        scenario,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        n_cards: int,
        n_engines: int = 5,
        link=None,
        cost_model=None,
        sim=None,
    ):
        """A fresh simulated-timing rig for this backend's device model.

        The :mod:`repro.sim` hook of the unified API: requires the
        ``simulated_timing`` capability and returns a
        :class:`~repro.api.cost.ClusterTimingRig` — host-thread and
        per-card :class:`~repro.sim.Resource` surfaces on one
        :class:`~repro.sim.Simulation` clock, with busy windows priced by
        the backend's :meth:`dispatch_cost_model`.  Consumers that replay
        timing (the quote server, the mixed-workload simulator) build one
        rig per run.

        Parameters
        ----------
        scenario / yield_curve / hazard_curve / n_engines:
            Calibration inputs for the cost model (ignored when
            ``cost_model`` is supplied).
        n_cards:
            Simulated cards on the rig.
        link:
            Host-path timing model (default
            :class:`~repro.cluster.interconnect.HostLinkModel`).
        cost_model:
            Reuse an already-calibrated
            :class:`~repro.api.cost.DispatchCostModel` (calibration
            prices a representative batch, so per-run callers cache it).
        sim:
            Share an existing :class:`~repro.sim.Simulation` so several
            workloads contend on one clock.
        """
        from repro.api.cost import ClusterTimingRig
        from repro.cluster.interconnect import HostLinkModel

        self._check_open()
        self.require("simulated_timing", reason="a timing rig")
        if cost_model is None:
            cost_model = self.dispatch_cost_model(
                scenario, yield_curve, hazard_curve, n_engines=n_engines
            )
        return ClusterTimingRig(
            cost_model,
            link if link is not None else HostLinkModel(),
            n_cards,
            sim=sim,
            telemetry=self._telemetry,
        )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the backend's bound state (idempotent)."""
        if not self._closed:
            self._closed = True
            self._backend.close()

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` ran."""
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise ValidationError("this pricing session is closed")

    def __enter__(self) -> "PricingSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self._closed else f"{self.n_options} option(s)"
        return f"PricingSession(backend={self.backend_name!r}, {state})"


def open_session(
    backend: str | PricingBackend = "vectorized",
    options: Sequence[CDSOption] | None = None,
    *,
    telemetry=None,
    **config,
) -> PricingSession:
    """Open a pricing session: the one public entry point of the API.

    Parameters
    ----------
    backend:
        Registry name (``cpu``, ``vectorized``, ``dataflow``,
        ``cluster``) or an already-constructed backend instance.
    options:
        The book to bind.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle (pass
        ``Telemetry.recording()`` to capture spans and metrics; default
        is the no-op handle).
    config:
        Backend configuration, forwarded to the registry factory
        (``n_cards``/``scheduler``/``base`` for ``cluster``,
        ``scenario``/``variant`` for ``dataflow``...).  Not allowed with
        a backend instance.

    Examples
    --------
    >>> from repro.api import open_session
    >>> from repro.workloads.scenarios import PaperScenario
    >>> sc = PaperScenario(n_rates=64, n_options=4)
    >>> with open_session("vectorized", sc.options()) as session:
    ...     session.spreads(sc.yield_curve(), sc.hazard_curve()).shape
    (4,)
    """
    if options is None:
        raise ValidationError(
            "open_session needs the book to bind (options=...)"
        )
    if isinstance(backend, str):
        backend = create_backend(backend, **config)
    elif config:
        raise ValidationError(
            "backend configuration keywords only apply when backend is a "
            "registry name"
        )
    return PricingSession(backend, options, telemetry=telemetry)
