"""Command-line interface: ``python -m repro`` or the ``repro-cds`` script.

Subcommands
-----------
``table1``
    Regenerate paper Table I (engine-version throughput).
``table2``
    Regenerate paper Table II (scaling and power).
``cluster``
    Shard a portfolio across N simulated U280 cards and report aggregate
    throughput, per-card utilisation and total power ("Table II
    extended").
``risk``
    The overnight batch: revalue a signed CDS book under a scenario set
    sharded across cluster cards and print the risk report (VaR/ES,
    CS01/IR01 ladders, JTD concentration, simulated cluster throughput).
``serve``
    The live counterpart: replay a request stream (quotes, revals, VaR
    refreshes) through the micro-batching quote server and print tail
    latency, goodput and shed rates.
``simulate``
    Both desks on one cluster: bursty live quotes plus a periodic
    risk-refresh heartbeat replayed on one unified simulation clock,
    with a per-workload latency/goodput breakdown.
``chaos``
    Resilience matrix: replay the serving workload under a family of
    fault plans (card crash, straggler, correlated loss, link brownout)
    and report goodput, retries, breaker trips and recovery time per
    scenario.  With ``--monitor`` every cell also runs under the SLO
    engine (burn-rate alerts, detection scoring vs the injected plan).
``dashboard``
    Run one monitored serving replay and write a self-contained HTML
    dashboard: SLO budget bars, alert/fault timelines, and sparklines
    over the sampled series (no external assets).
``bench-check``
    Perf watchdog: re-measure the serving and risk benchmarks and
    compare against the committed ``BENCH_serving.json`` /
    ``BENCH_risk.json`` under per-metric tolerances; nonzero exit on
    regression (the CI gate).
``trace``
    Summarise a Chrome trace JSON written by ``--trace-out``: critical
    path, busiest resources, per-workload queue wait.
``backends``
    List the pricing backends registered with :mod:`repro.api` and
    their capability flags (``risk`` and ``serve`` accept any of them
    via ``--backend``).
``figures``
    Print the three paper figures as ASCII (or DOT with ``--dot``).
``price``
    Price a single CDS from the command line.
``report``
    Synthesis-style resource report for an engine configuration.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict

import numpy as np

from repro.errors import ReproError
from repro.workloads.scenarios import PaperScenario

__all__ = ["main", "build_parser"]


def _json_default(obj):
    """Serialise the numpy scalars/arrays that reach JSON payloads."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"not JSON serialisable: {type(obj).__name__}")


def _print_json(payload) -> None:
    print(json.dumps(payload, indent=2, default=_json_default))


def _backend_choices() -> tuple[str, ...]:
    """Base backends selectable from the CLI.

    ``cluster`` is excluded: the risk and serving engines already wrap
    the chosen base in the cluster backend, and cluster backends do not
    nest.
    """
    from repro.api import available_backends

    return tuple(n for n in available_backends() if n != "cluster")


def _add_subcommand(
    sub,
    name: str,
    help_text: str,
    *,
    seed: bool = False,
    json_flag: bool = False,
    cluster_shape: bool = False,
    workload: str | None = None,
    chunk: bool = False,
    backend: bool = False,
    telemetry: bool = False,
    faults: bool = False,
) -> argparse.ArgumentParser:
    """Register one subcommand with the shared flag wiring.

    Every data-producing subcommand used to re-declare its own copies of
    the common flags; registering them here means a new subcommand opts
    in with keywords instead of re-declaring the arguments:

    ``seed`` / ``json_flag``
        The ``--seed`` / ``--json`` pair every reproducible command has.
    ``cluster_shape``
        The cluster trio: ``--cards``, ``--engines``, ``--policy``.
    ``workload``
        ``--workload`` with the given default contract mix.
    ``chunk``
        ``--chunk-size`` for the batched host kernels.
    ``backend``
        ``--backend`` choosing the base pricing backend from the
        :mod:`repro.api` registry.
    ``telemetry``
        The ``--trace-out`` / ``--metrics-out`` pair: record spans and
        metrics during the run and write a Chrome trace JSON
        (Perfetto-loadable) and/or a metrics snapshot.  Recording never
        changes the report itself.
    ``faults``
        ``--faults <spec>`` injecting a deterministic fault plan into
        the timing replay (see :mod:`repro.faults`); for serving
        commands also ``--hedge`` enabling straggler hedging.
    """
    parser = sub.add_parser(name, help=help_text)
    if seed:
        parser.add_argument(
            "--seed",
            type=int,
            default=None,
            help="override the scenario/workload seed for a reproducible run",
        )
    if json_flag:
        parser.add_argument(
            "--json",
            action="store_true",
            help="emit machine-readable JSON rows instead of the text table",
        )
    if cluster_shape:
        parser.add_argument(
            "--cards", type=int, default=4, help="cards in the cluster"
        )
        parser.add_argument(
            "--engines",
            type=int,
            default=5,
            help="CDS engines per card (paper maximum: 5)",
        )
        parser.add_argument(
            "--policy",
            choices=("round-robin", "least-loaded", "work-stealing"),
            default="least-loaded",
            help="cluster sharding policy",
        )
    if workload is not None:
        parser.add_argument(
            "--workload",
            choices=("uniform", "skewed", "heterogeneous"),
            default=workload,
            help="contract mix of the portfolio",
        )
    if chunk:
        parser.add_argument(
            "--chunk-size",
            type=int,
            default=None,
            metavar="N",
            help="market states per batched-kernel chunk (bounds peak "
            "memory; default: automatic sizing)",
        )
    if backend:
        parser.add_argument(
            "--backend",
            choices=_backend_choices(),
            default="vectorized",
            help="base pricing backend from the repro.api registry",
        )
    if telemetry:
        parser.add_argument(
            "--trace-out",
            default=None,
            metavar="FILE",
            help="record simulated-time spans and write a Chrome "
            "trace-event JSON (open with Perfetto or repro-cds trace)",
        )
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="FILE",
            help="record run metrics and write a versioned JSON snapshot",
        )
    if faults:
        parser.add_argument(
            "--faults",
            default=None,
            metavar="SPEC",
            help="inject a deterministic fault plan, e.g. "
            "'crash:card=1,at=0.1,repair=0.1;slow:card=2,at=0.2,for=0.1,"
            "factor=4' (see docs/robustness.md for the grammar)",
        )
        if name != "risk":
            parser.add_argument(
                "--hedge",
                action="store_true",
                help="hedge the slowest straggler chunk onto a second card "
                "(fault-injection runs only)",
            )
    return parser


def _fault_plan(args: argparse.Namespace, seed: int):
    """The parsed ``--faults`` plan (None when the flag is absent)."""
    spec = getattr(args, "faults", None)
    if not spec:
        return None, None
    from repro.faults import FaultPlan, HedgePolicy

    plan = FaultPlan.from_spec(spec, seed=seed)
    hedge = HedgePolicy(enabled=True) if getattr(args, "hedge", False) else None
    return plan, hedge


def _make_telemetry(args: argparse.Namespace):
    """A recording telemetry handle when either output flag asks for one."""
    if getattr(args, "trace_out", None) is None and (
        getattr(args, "metrics_out", None) is None
    ):
        return None
    from repro.telemetry import Telemetry

    return Telemetry.recording()


def _write_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Write the trace/metrics files the flags requested."""
    if telemetry is None:
        return
    from repro.telemetry import write_chrome_trace, write_metrics_snapshot

    if args.trace_out is not None:
        write_chrome_trace(args.trace_out, telemetry.recorder)
        print(f"wrote trace: {args.trace_out}", file=sys.stderr)
    if args.metrics_out is not None:
        write_metrics_snapshot(args.metrics_out, telemetry.metrics)
        print(f"wrote metrics: {args.metrics_out}", file=sys.stderr)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cds",
        description=(
            "Reproduction of the CLUSTER 2021 FPGA CDS dataflow paper: "
            "simulated engines, tables, figures."
        ),
    )
    parser.add_argument(
        "--options",
        type=int,
        default=None,
        help="batch size for simulated runs (default: scenario default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    _add_subcommand(sub, "table1", "regenerate paper Table I", json_flag=True)

    t2 = _add_subcommand(
        sub, "table2", "regenerate paper Table II", json_flag=True
    )
    t2.add_argument(
        "--engines",
        type=int,
        nargs="+",
        default=[1, 2, 5],
        help="engine counts to run (default: 1 2 5)",
    )

    cl = _add_subcommand(
        sub,
        "cluster",
        "simulated multi-card cluster run (Table II extended)",
        seed=True,
        json_flag=True,
        cluster_shape=True,
        workload="uniform",
    )
    cl.add_argument(
        "--sweep",
        type=int,
        nargs="+",
        default=None,
        metavar="CARDS",
        help="also print the scaling table over these card counts",
    )

    rk = _add_subcommand(
        sub,
        "risk",
        "portfolio scenario-risk report (VaR/ES, ladders, cluster roll-up)",
        seed=True,
        json_flag=True,
        cluster_shape=True,
        workload="heterogeneous",
        chunk=True,
        backend=True,
        telemetry=True,
        faults=True,
    )
    rk.add_argument(
        "--scenarios", type=int, default=1000, help="scenarios to draw"
    )
    rk.add_argument(
        "--generator",
        choices=("mc", "mixture", "historical", "parallel"),
        default="mc",
        help="scenario family (default: correlated Monte Carlo)",
    )
    rk.add_argument(
        "--confidence",
        type=float,
        nargs="+",
        default=[0.95, 0.99],
        help="VaR/ES confidence levels",
    )
    rk.add_argument(
        "--measure",
        default="var,es",
        help="comma-separated tail measures to print (var, es)",
    )
    rk.add_argument(
        "--no-batch",
        action="store_true",
        help="revalue scenario by scenario instead of with the batched "
        "tensor kernel (identical numbers, slower)",
    )

    sv = _add_subcommand(
        sub,
        "serve",
        "live quote serving: micro-batched request stream on the cluster",
        seed=True,
        json_flag=True,
        cluster_shape=True,
        workload="heterogeneous",
        chunk=True,
        backend=True,
        telemetry=True,
        faults=True,
    )
    sv.add_argument(
        "--requests", type=int, default=10_000, help="request-trace length"
    )
    sv.add_argument(
        "--rate",
        type=float,
        default=5000.0,
        help="offered arrival rate (requests per second)",
    )
    sv.add_argument(
        "--traffic",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="arrival process of the request stream",
    )
    sv.add_argument(
        "--max-batch",
        type=int,
        default=128,
        help="coalescer size trigger (1 disables micro-batching)",
    )
    sv.add_argument(
        "--max-delay",
        type=float,
        default=1e-3,
        metavar="SECONDS",
        help="coalescer linger bound on the oldest pending request",
    )
    sv.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="admission bound on outstanding requests (backpressure)",
    )
    sv.add_argument(
        "--states",
        type=int,
        default=256,
        help="market-tape length (distinct live market states)",
    )

    sm = _add_subcommand(
        sub,
        "simulate",
        "mixed workloads on one cluster: bursty quotes + periodic risk refresh",
        seed=True,
        json_flag=True,
        cluster_shape=True,
        workload="heterogeneous",
        chunk=True,
        backend=True,
        telemetry=True,
        faults=True,
    )
    sm.add_argument(
        "--requests", type=int, default=8_000, help="quote-trace length"
    )
    sm.add_argument(
        "--rate",
        type=float,
        default=20_000.0,
        help="offered quote arrival rate (requests per second)",
    )
    sm.add_argument(
        "--traffic",
        choices=("poisson", "bursty", "diurnal"),
        default="bursty",
        help="arrival process of the quote stream",
    )
    sm.add_argument(
        "--refresh-period",
        type=float,
        default=2e-3,
        metavar="SECONDS",
        help="risk-refresh heartbeat period",
    )
    sm.add_argument(
        "--refresh-rows",
        type=int,
        default=16,
        help="market states per VaR refresh",
    )
    sm.add_argument(
        "--max-batch",
        type=int,
        default=128,
        help="coalescer size trigger (1 disables micro-batching)",
    )
    sm.add_argument(
        "--max-delay",
        type=float,
        default=1e-3,
        metavar="SECONDS",
        help="coalescer linger bound on the oldest pending request",
    )
    sm.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="admission bound on outstanding requests (backpressure)",
    )
    sm.add_argument(
        "--states",
        type=int,
        default=256,
        help="market-tape length (distinct live market states)",
    )

    gw = _add_subcommand(
        sub,
        "gateway",
        "multi-tenant gateway: hash routing, admission quotas, quote cache",
        seed=True,
        json_flag=True,
        chunk=True,
        backend=True,
        telemetry=True,
        faults=True,
    )
    gw.add_argument(
        "--tenants",
        type=int,
        default=3,
        help="tenant tiers admitted (1 = single-tenant passthrough, "
        "which also reproduces the serve workload exactly)",
    )
    gw.add_argument(
        "--servers",
        type=int,
        default=2,
        help="quote-server replicas behind the consistent-hash ring",
    )
    gw.add_argument(
        "--cache",
        choices=("on", "off"),
        default="on",
        help="market-state-keyed quote cache with single-flight dedup",
    )
    gw.add_argument(
        "--requests", type=int, default=4_000, help="request-trace length"
    )
    gw.add_argument(
        "--rate",
        type=float,
        default=200_000.0,
        help="offered arrival rate across tenants (requests per second)",
    )
    gw.add_argument(
        "--traffic",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="arrival process of the merged request stream",
    )
    gw.add_argument(
        "--cards", type=int, default=2, help="cards per server replica"
    )
    gw.add_argument(
        "--engines",
        type=int,
        default=5,
        help="CDS engines per card (paper maximum: 5)",
    )
    gw.add_argument(
        "--ticks",
        type=int,
        default=200,
        help="market ticks invalidating cached rows (0 = no churn)",
    )
    gw.add_argument(
        "--tick-rate",
        type=float,
        default=2_000.0,
        metavar="HZ",
        help="mean market-tick rate",
    )
    gw.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="per-server admission bound on outstanding requests",
    )
    gw.add_argument(
        "--states",
        type=int,
        default=64,
        help="market-tape length (distinct live market states)",
    )

    ch = _add_subcommand(
        sub,
        "chaos",
        "resilience matrix: the serving workload under a family of fault plans",
        seed=True,
        json_flag=True,
        telemetry=True,
    )
    ch.add_argument(
        "--requests", type=int, default=2000, help="request-trace length"
    )
    ch.add_argument(
        "--rate",
        type=float,
        default=4000.0,
        help="offered arrival rate (requests per second)",
    )
    ch.add_argument(
        "--cards", type=int, default=4, help="cards in the cluster"
    )
    ch.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="coalescer size trigger (1 disables micro-batching)",
    )
    ch.add_argument(
        "--queue-depth",
        type=int,
        default=512,
        help="admission bound on outstanding requests (backpressure)",
    )
    ch.add_argument(
        "--states",
        type=int,
        default=64,
        help="market-tape length (distinct live market states)",
    )
    ch.add_argument(
        "--monitor",
        action="store_true",
        help="evaluate every cell under the SLO engine: burn-rate "
        "alerts plus detection scoring against the injected fault plan",
    )
    ch.add_argument(
        "--monitor-out",
        default=None,
        metavar="FILE",
        help="write the per-cell monitor evaluation as a versioned JSON "
        "document (implies --monitor)",
    )
    ch.add_argument(
        "--gateway",
        action="store_true",
        help="add a monitored gateway-crash-1of4 cell: the same workload "
        "through a two-server gateway with one card crashing, scored "
        "against per-tenant SLOs (implies --monitor)",
    )

    db = _add_subcommand(
        sub,
        "dashboard",
        "monitored serving replay rendered as a self-contained HTML page",
        seed=True,
        cluster_shape=True,
        workload="heterogeneous",
        chunk=True,
        backend=True,
        faults=True,
    )
    db.add_argument(
        "--requests", type=int, default=10_000, help="request-trace length"
    )
    db.add_argument(
        "--rate",
        type=float,
        default=5000.0,
        help="offered arrival rate (requests per second)",
    )
    db.add_argument(
        "--traffic",
        choices=("poisson", "bursty", "diurnal"),
        default="poisson",
        help="arrival process of the request stream",
    )
    db.add_argument(
        "--max-batch",
        type=int,
        default=128,
        help="coalescer size trigger (1 disables micro-batching)",
    )
    db.add_argument(
        "--max-delay",
        type=float,
        default=1e-3,
        metavar="SECONDS",
        help="coalescer linger bound on the oldest pending request",
    )
    db.add_argument(
        "--queue-depth",
        type=int,
        default=4096,
        help="admission bound on outstanding requests (backpressure)",
    )
    db.add_argument(
        "--states",
        type=int,
        default=256,
        help="market-tape length (distinct live market states)",
    )
    db.add_argument(
        "--out",
        default="dashboard.html",
        metavar="FILE",
        help="HTML output path (self-contained; opens from disk)",
    )
    db.add_argument(
        "--title",
        default=None,
        help="page heading (default: derived from the run configuration)",
    )
    db.add_argument(
        "--monitor-out",
        default=None,
        metavar="FILE",
        help="also write the monitor evaluation as JSON (budgets, "
        "alerts, detection)",
    )

    bc = _add_subcommand(
        sub,
        "bench-check",
        "perf watchdog: fresh benchmark runs vs the committed BENCH files",
        json_flag=True,
    )
    bc.add_argument(
        "--serving",
        default="BENCH_serving.json",
        metavar="FILE",
        help="committed serving benchmark snapshot",
    )
    bc.add_argument(
        "--risk",
        default="BENCH_risk.json",
        metavar="FILE",
        help="committed risk benchmark snapshot",
    )
    bc.add_argument(
        "--gateway",
        default="BENCH_gateway.json",
        metavar="FILE",
        help="committed gateway benchmark snapshot",
    )
    bc.add_argument(
        "--only",
        choices=("serving", "risk", "gateway"),
        default=None,
        help="check a single benchmark instead of all",
    )
    bc.add_argument(
        "--fresh-from",
        default=None,
        metavar="FILE",
        help="JSON file with pre-measured fresh snapshots "
        '({"serving": {...}, "risk": {...}, "gateway": {...}}); '
        "benchmarks found there are not re-run",
    )

    tr = _add_subcommand(
        sub,
        "trace",
        "summarise a Chrome trace JSON written by --trace-out",
        json_flag=True,
    )
    tr.add_argument("trace_file", help="path to the trace-event JSON")
    tr.add_argument(
        "--top",
        type=int,
        default=10,
        help="critical-path depth: slowest requests to show",
    )

    _add_subcommand(
        sub,
        "backends",
        "list the registered pricing backends and their capabilities",
        json_flag=True,
    )

    figs = _add_subcommand(sub, "figures", "print paper figures 1-3")
    figs.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    price = _add_subcommand(sub, "price", "price one CDS option")
    price.add_argument("--maturity", type=float, default=5.0)
    price.add_argument("--frequency", type=int, default=4)
    price.add_argument("--recovery", type=float, default=0.4)

    _add_subcommand(sub, "report", "engine synthesis-style resource report")
    return parser


def _scenario(args: argparse.Namespace) -> PaperScenario:
    overrides = {}
    if args.options is not None:
        overrides["n_options"] = args.options
    if getattr(args, "seed", None) is not None:
        overrides["seed"] = args.seed
    return PaperScenario(**overrides)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    sc = _scenario(args)

    if args.command == "table1":
        from repro.analysis.tables import generate_table1, render_table1

        rows = generate_table1(sc)
        if args.json:
            _print_json([asdict(r) for r in rows])
        else:
            print(render_table1(rows))
        return 0

    if args.command == "table2":
        from repro.analysis.tables import generate_table2, render_table2

        rows = generate_table2(sc, tuple(args.engines))
        if args.json:
            _print_json([asdict(r) for r in rows])
        else:
            print(render_table2(rows))
        return 0

    if args.command == "cluster":
        from repro.analysis.cluster import (
            generate_cluster_table,
            render_cluster_table,
        )
        from repro.cluster import CDSCluster
        from repro.workloads.cluster import make_cluster_portfolio

        portfolio = make_cluster_portfolio(
            args.workload, sc.n_options, seed=args.seed
        )
        cluster = CDSCluster(
            sc,
            n_cards=args.cards,
            n_engines=args.engines,
            scheduler=args.policy,
        )
        result = cluster.run(portfolio)
        sweep_rows = (
            generate_cluster_table(
                sc,
                tuple(args.sweep),
                policy=args.policy,
                n_engines=args.engines,
                workload=args.workload,
                portfolio=portfolio,
            )
            if args.sweep
            else None
        )
        if args.json:
            payload = {
                "cards": args.cards,
                "engines_per_card": args.engines,
                "workload": args.workload,
                "policy": result.policy,
                "seed": args.seed,
                "n_options": len(portfolio),
                "options_per_second": result.options_per_second,
                "makespan_seconds": result.makespan_seconds,
                "total_watts": result.total_watts,
                "options_per_watt": result.options_per_watt,
                "dispatches": result.dispatches,
                "per_card": [
                    {k: v for k, v in asdict(c).items() if k != "result"}
                    for c in result.cards
                ],
            }
            if sweep_rows is not None:
                payload["sweep"] = [asdict(r) for r in sweep_rows]
            _print_json(payload)
            return 0
        print(
            f"{args.cards} card(s) x {args.engines} engine(s), "
            f"{args.workload} portfolio of {len(portfolio)}:"
        )
        print(result.render())
        if sweep_rows is not None:
            print()
            print(render_cluster_table(sweep_rows))
        return 0

    if args.command == "risk":
        from repro.analysis.risk import (
            generate_risk_report,
            render_risk_report,
            risk_report_dict,
        )

        from repro.errors import ValidationError

        measures = tuple(m for m in args.measure.split(",") if m)
        unknown = set(measures) - {"var", "es"}
        if unknown:
            # Validate here too so --json runs reject the same bad flags
            # as text runs (JSON always carries both measures).
            raise ValidationError(
                f"unknown measures {sorted(unknown)}; choose from ['es', 'var']"
            )
        seed = args.seed if args.seed is not None else 7
        telemetry = _make_telemetry(args)
        plan, _ = _fault_plan(args, seed)
        report = generate_risk_report(
            sc,
            n_scenarios=args.scenarios,
            n_cards=args.cards,
            n_engines=args.engines,
            policy=args.policy,
            workload=args.workload,
            generator=args.generator,
            seed=seed,
            confidences=tuple(args.confidence),
            batch=not args.no_batch,
            chunk_size=args.chunk_size,
            backend=args.backend,
            telemetry=telemetry,
            faults=plan,
        )
        if args.json:
            _print_json(risk_report_dict(report))
        else:
            print(render_risk_report(report, measures=measures))
        _write_telemetry(args, telemetry)
        return 0

    if args.command == "serve":
        from repro.analysis.serving import (
            generate_serving_report,
            render_serving_report,
            serving_report_dict,
        )

        seed = args.seed if args.seed is not None else 17
        telemetry = _make_telemetry(args)
        plan, hedge = _fault_plan(args, seed)
        report = generate_serving_report(
            sc,
            n_requests=args.requests,
            rate_hz=args.rate,
            n_cards=args.cards,
            n_engines=args.engines,
            policy=args.policy,
            workload=args.workload,
            traffic=args.traffic,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay,
            queue_depth=args.queue_depth,
            n_states=args.states,
            seed=seed,
            chunk_size=args.chunk_size,
            backend=args.backend,
            telemetry=telemetry,
            faults=plan,
            hedge=hedge,
        )
        if args.json:
            _print_json(serving_report_dict(report))
        else:
            print(render_serving_report(report))
        _write_telemetry(args, telemetry)
        return 0

    if args.command == "simulate":
        from repro.analysis.simulate import (
            generate_simulation_report,
            render_simulation_report,
            simulation_report_dict,
        )

        seed = args.seed if args.seed is not None else 17
        telemetry = _make_telemetry(args)
        plan, hedge = _fault_plan(args, seed)
        report = generate_simulation_report(
            sc,
            n_requests=args.requests,
            rate_hz=args.rate,
            traffic=args.traffic,
            refresh_period_s=args.refresh_period,
            refresh_rows=args.refresh_rows,
            n_cards=args.cards,
            n_engines=args.engines,
            policy=args.policy,
            workload=args.workload,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay,
            queue_depth=args.queue_depth,
            n_states=args.states,
            seed=seed,
            chunk_size=args.chunk_size,
            backend=args.backend,
            telemetry=telemetry,
            faults=plan,
            hedge=hedge,
        )
        if args.json:
            _print_json(simulation_report_dict(report))
        else:
            print(render_simulation_report(report))
        _write_telemetry(args, telemetry)
        return 0

    if args.command == "gateway":
        from repro.analysis.gateway import (
            gateway_report_dict,
            generate_gateway_report,
            render_gateway_report,
        )

        seed = args.seed if args.seed is not None else 17
        telemetry = _make_telemetry(args)
        plan, hedge = _fault_plan(args, seed)
        report = generate_gateway_report(
            sc,
            n_requests=args.requests,
            rate_hz=args.rate,
            n_servers=args.servers,
            n_cards=args.cards,
            n_engines=args.engines,
            traffic=args.traffic,
            n_tenants=args.tenants,
            cache=args.cache == "on",
            n_ticks=args.ticks,
            tick_rate_hz=args.tick_rate,
            queue_depth=args.queue_depth,
            n_states=args.states,
            seed=seed,
            chunk_size=args.chunk_size,
            backend=args.backend,
            telemetry=telemetry,
            faults=plan,
            hedge=hedge,
        )
        if args.json:
            _print_json(gateway_report_dict(report))
        else:
            print(render_gateway_report(report))
        _write_telemetry(args, telemetry)
        return 0

    if args.command == "chaos":
        from repro.analysis.chaos import (
            chaos_report_dict,
            generate_chaos_report,
            render_chaos_report,
        )

        seed = args.seed if args.seed is not None else 7
        telemetry = _make_telemetry(args)
        monitor = args.monitor or args.monitor_out is not None
        report = generate_chaos_report(
            sc,
            seed=seed,
            n_requests=args.requests,
            rate_hz=args.rate,
            n_cards=args.cards,
            max_batch=args.max_batch,
            queue_depth=args.queue_depth,
            n_states=args.states,
            telemetry=telemetry,
            monitor=monitor,
            gateway=args.gateway,
        )
        if args.json:
            _print_json(chaos_report_dict(report))
        else:
            print(render_chaos_report(report))
        _write_telemetry(args, telemetry)
        if args.monitor_out is not None:
            from pathlib import Path

            from repro.monitor import monitor_result_dict
            from repro.monitor.core import MONITOR_SCHEMA_VERSION

            payload = {
                "schema_version": MONITOR_SCHEMA_VERSION,
                "seed": seed,
                "cells": {
                    name: monitor_result_dict(result)
                    for name, result in report.monitor.items()
                },
            }
            Path(args.monitor_out).write_text(
                json.dumps(payload, indent=2, default=_json_default) + "\n"
            )
            print(f"wrote monitor: {args.monitor_out}", file=sys.stderr)
        return 0

    if args.command == "dashboard":
        from repro.analysis.serving import generate_serving_report
        from repro.monitor import Monitor, write_dashboard, write_monitor_result

        seed = args.seed if args.seed is not None else 17
        plan, hedge = _fault_plan(args, seed)
        monitor = Monitor()
        generate_serving_report(
            sc,
            n_requests=args.requests,
            rate_hz=args.rate,
            n_cards=args.cards,
            n_engines=args.engines,
            policy=args.policy,
            workload=args.workload,
            traffic=args.traffic,
            max_batch=args.max_batch,
            max_delay_s=args.max_delay,
            queue_depth=args.queue_depth,
            n_states=args.states,
            seed=seed,
            chunk_size=args.chunk_size,
            backend=args.backend,
            faults=plan,
            hedge=hedge,
            monitor=monitor,
        )
        title = (
            args.title
            if args.title is not None
            else (
                f"repro-cds serve — {args.requests} req at {args.rate:,.0f}/s, "
                f"{args.cards} card(s), seed {seed}"
                + (f", faults {args.faults}" if args.faults else "")
            )
        )
        write_dashboard(args.out, monitor.result, title=title)
        print(f"wrote dashboard: {args.out}", file=sys.stderr)
        if args.monitor_out is not None:
            write_monitor_result(args.monitor_out, monitor.result)
            print(f"wrote monitor: {args.monitor_out}", file=sys.stderr)
        return 0

    if args.command == "bench-check":
        from repro.monitor import bench_check, render_check_results

        fresh = None
        if args.fresh_from is not None:
            with open(args.fresh_from) as fh:
                fresh = json.load(fh)
        code, results = bench_check(
            serving_path=args.serving,
            risk_path=args.risk,
            gateway_path=args.gateway,
            only=args.only,
            fresh=fresh,
        )
        if args.json:
            _print_json(
                {
                    "ok": code == 0,
                    "checks": [r.to_dict() for r in results],
                }
            )
        else:
            print(render_check_results(results))
        return code

    if args.command == "trace":
        from repro.analysis.trace import (
            render_trace_summary,
            summarise_trace,
            trace_summary_dict,
        )

        summary = summarise_trace(args.trace_file, top=args.top)
        if args.json:
            _print_json(trace_summary_dict(summary))
        else:
            print(render_trace_summary(summary))
        return 0

    if args.command == "backends":
        from repro.api import available_backends, create_backend

        rows = []
        for name in available_backends():
            caps = create_backend(name).capabilities
            rows.append(
                {
                    "name": name,
                    "supports_batch_tensor": caps.supports_batch_tensor,
                    "supports_streaming": caps.supports_streaming,
                    "supports_legs": caps.supports_legs,
                    "simulated_timing": caps.simulated_timing,
                    "description": caps.description,
                }
            )
        if args.json:
            _print_json(rows)
            return 0
        header = (
            f"{'Backend':<12} {'Tensor':>6} {'Stream':>6} {'Legs':>5} "
            f"{'SimT':>5}  Description"
        )
        print(header)
        print("-" * len(header))
        for r in rows:
            flags = [
                "yes" if r[k] else "no"
                for k in (
                    "supports_batch_tensor",
                    "supports_streaming",
                    "supports_legs",
                    "simulated_timing",
                )
            ]
            print(
                f"{r['name']:<12} {flags[0]:>6} {flags[1]:>6} "
                f"{flags[2]:>5} {flags[3]:>5}  {r['description']}"
            )
        print(
            "\nopen a session with repro.api.open_session(backend=..., "
            "options=...)"
        )
        return 0

    if args.command == "figures":
        from repro.analysis.figures import (
            figure1_baseline,
            figure2_dataflow,
            figure3_vectorised,
        )

        for fig in (figure1_baseline(), figure2_dataflow(sc), figure3_vectorised(sc)):
            print(fig.to_dot() if args.dot else fig.to_ascii())
            print()
        return 0

    if args.command == "price":
        from repro.core import CDSOption, price_cds

        option = CDSOption(
            maturity=args.maturity,
            frequency=args.frequency,
            recovery_rate=args.recovery,
        )
        result = price_cds(option, sc.yield_curve(), sc.hazard_curve())
        print(
            f"CDS {args.maturity}y x{args.frequency} R={args.recovery}: "
            f"spread {result.spread_bps:.4f} bps ({result.spread_pct:.4f}%)"
        )
        legs = result.legs
        if legs is not None:
            print(
                f"  premium leg {legs.premium_leg:.6f}  protection leg "
                f"{legs.protection_leg:.6f}  accrual {legs.accrual_leg:.6f}"
            )
        return 0

    if args.command == "report":
        from repro.engines.builder import engine_resources
        from repro.hls.report import StageReport, synthesis_report
        from repro.hls.accumulator import AccumulatorModel
        from repro.hls.resources import ResourceUsage

        naive = AccumulatorModel(interleaved=False)
        fixed = AccumulatorModel(interleaved=True)
        stages = [
            StageReport(
                name="hazard_acc (naive)",
                ii=naive.ii,
                latency=naive.cycles(sc.n_rates),
                trip_count=sc.n_rates,
                resources=ResourceUsage(dsp=3, lut=700, ff=1100),
                pragmas=tuple(p.render() for p in naive.pragmas()),
            ),
            StageReport(
                name="hazard_acc (Listing 1)",
                ii=fixed.ii,
                latency=fixed.cycles(sc.n_rates),
                trip_count=sc.n_rates,
                resources=ResourceUsage(dsp=21, lut=4900, ff=7700),
                pragmas=tuple(p.render() for p in fixed.pragmas()),
            ),
        ]
        print(
            synthesis_report(
                "CDS engine accumulator comparison",
                stages,
                sc.device.resources,
                clock_mhz=sc.clock.frequency_hz / 1e6,
            )
        )
        print()
        res = engine_resources(sc, replication=sc.replication_factor)
        print(f"Vectorised engine estimate: {res.describe()}")
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
