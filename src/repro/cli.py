"""Command-line interface: ``python -m repro`` or the ``repro-cds`` script.

Subcommands
-----------
``table1``
    Regenerate paper Table I (engine-version throughput).
``table2``
    Regenerate paper Table II (scaling and power).
``figures``
    Print the three paper figures as ASCII (or DOT with ``--dot``).
``price``
    Price a single CDS from the command line.
``report``
    Synthesis-style resource report for an engine configuration.
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads.scenarios import PaperScenario

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-cds",
        description=(
            "Reproduction of the CLUSTER 2021 FPGA CDS dataflow paper: "
            "simulated engines, tables, figures."
        ),
    )
    parser.add_argument(
        "--options",
        type=int,
        default=None,
        help="batch size for simulated runs (default: scenario default)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="regenerate paper Table I")

    t2 = sub.add_parser("table2", help="regenerate paper Table II")
    t2.add_argument(
        "--engines",
        type=int,
        nargs="+",
        default=[1, 2, 5],
        help="engine counts to run (default: 1 2 5)",
    )

    figs = sub.add_parser("figures", help="print paper figures 1-3")
    figs.add_argument("--dot", action="store_true", help="emit Graphviz DOT")

    price = sub.add_parser("price", help="price one CDS option")
    price.add_argument("--maturity", type=float, default=5.0)
    price.add_argument("--frequency", type=int, default=4)
    price.add_argument("--recovery", type=float, default=0.4)

    sub.add_parser("report", help="engine synthesis-style resource report")
    return parser


def _scenario(args: argparse.Namespace) -> PaperScenario:
    if args.options is not None:
        return PaperScenario(n_options=args.options)
    return PaperScenario()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    sc = _scenario(args)

    if args.command == "table1":
        from repro.analysis.tables import generate_table1, render_table1

        print(render_table1(generate_table1(sc)))
        return 0

    if args.command == "table2":
        from repro.analysis.tables import generate_table2, render_table2

        print(render_table2(generate_table2(sc, tuple(args.engines))))
        return 0

    if args.command == "figures":
        from repro.analysis.figures import (
            figure1_baseline,
            figure2_dataflow,
            figure3_vectorised,
        )

        for fig in (figure1_baseline(), figure2_dataflow(sc), figure3_vectorised(sc)):
            print(fig.to_dot() if args.dot else fig.to_ascii())
            print()
        return 0

    if args.command == "price":
        from repro.core import CDSOption, price_cds

        option = CDSOption(
            maturity=args.maturity,
            frequency=args.frequency,
            recovery_rate=args.recovery,
        )
        result = price_cds(option, sc.yield_curve(), sc.hazard_curve())
        print(
            f"CDS {args.maturity}y x{args.frequency} R={args.recovery}: "
            f"spread {result.spread_bps:.4f} bps ({result.spread_pct:.4f}%)"
        )
        legs = result.legs
        if legs is not None:
            print(
                f"  premium leg {legs.premium_leg:.6f}  protection leg "
                f"{legs.protection_leg:.6f}  accrual {legs.accrual_leg:.6f}"
            )
        return 0

    if args.command == "report":
        from repro.engines.builder import engine_resources
        from repro.hls.report import StageReport, synthesis_report
        from repro.hls.accumulator import AccumulatorModel
        from repro.hls.resources import ResourceUsage

        naive = AccumulatorModel(interleaved=False)
        fixed = AccumulatorModel(interleaved=True)
        stages = [
            StageReport(
                name="hazard_acc (naive)",
                ii=naive.ii,
                latency=naive.cycles(sc.n_rates),
                trip_count=sc.n_rates,
                resources=ResourceUsage(dsp=3, lut=700, ff=1100),
                pragmas=tuple(p.render() for p in naive.pragmas()),
            ),
            StageReport(
                name="hazard_acc (Listing 1)",
                ii=fixed.ii,
                latency=fixed.cycles(sc.n_rates),
                trip_count=sc.n_rates,
                resources=ResourceUsage(dsp=21, lut=4900, ff=7700),
                pragmas=tuple(p.render() for p in fixed.pragmas()),
            ),
        ]
        print(
            synthesis_report(
                "CDS engine accumulator comparison",
                stages,
                sc.device.resources,
                clock_mhz=sc.clock.frequency_hz / 1e6,
            )
        )
        print()
        res = engine_resources(sc, replication=sc.replication_factor)
        print(f"Vectorised engine estimate: {res.describe()}")
        return 0

    return 1  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
