"""Multi-card cluster scaling of the CDS engine system.

The paper scales to five CDS engines on one Alveo U280 and stops there —
six do not fit under the device's routable ceiling (Table II).  This
package models the next axis: a host node with ``N`` cards, each running
the full multi-engine configuration, in the same discrete-event style as
the single-card system.

``node``
    :class:`~repro.cluster.node.ClusterNode` — one card: engines
    (floorplan-validated), PCIe accounting, active/idle power.
``scheduler``
    Pluggable portfolio sharding: round-robin, greedy least-loaded (LPT),
    and work-stealing chunk policies.  All produce identical numerical
    results; only the load balance differs.
``interconnect``
    :class:`~repro.cluster.interconnect.HostLinkModel` — host-path
    contention between cards (the ``multi_engine_contention`` idiom one
    level up) plus serial per-chunk dispatch latency.
``cluster``
    :class:`~repro.cluster.cluster.CDSCluster` — shard, price, roll up:
    aggregate options/second, per-card utilisation, total power.
``batching``
    Host-side size-or-linger request coalescing and arrival-trace replay
    with per-request latency percentiles.
"""

from repro.cluster.batching import (
    BatchingReport,
    BatchQueue,
    DispatchBatch,
    simulate_batched_stream,
)
from repro.cluster.cluster import CDSCluster, ClusterResult, option_costs
from repro.cluster.interconnect import HostLinkModel
from repro.cluster.node import CardReport, ClusterNode
from repro.cluster.scheduler import (
    SCHEDULERS,
    ClusterScheduler,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    WorkStealingScheduler,
    make_scheduler,
    validate_partition,
)

__all__ = [
    "CDSCluster",
    "ClusterResult",
    "ClusterNode",
    "CardReport",
    "HostLinkModel",
    "ClusterScheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "WorkStealingScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "validate_partition",
    "option_costs",
    "BatchQueue",
    "DispatchBatch",
    "BatchingReport",
    "simulate_batched_stream",
]
