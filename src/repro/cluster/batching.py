"""Host-side request batching in front of the cluster.

A pricing service does not see tidy fixed-size batches: requests arrive in
bursts and the host must trade latency against throughput when deciding
when to dispatch.  :class:`BatchQueue` implements the standard
size-or-linger coalescing rule (dispatch when ``max_batch`` requests are
pending, or when the oldest pending request has waited ``linger_s``), and
:func:`simulate_batched_stream` replays an arrival trace through a
:class:`~repro.cluster.cluster.CDSCluster`, reporting per-request latency
percentiles next to the aggregate throughput — the two numbers the linger
knob trades against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import CDSCluster
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.workloads.cluster import Arrival

__all__ = ["BatchQueue", "DispatchBatch", "BatchingReport", "simulate_batched_stream"]


@dataclass(frozen=True)
class DispatchBatch:
    """One coalesced batch handed from the queue to the cluster.

    Attributes
    ----------
    dispatch_time_s:
        When the queue released the batch.
    options:
        The coalesced contracts, in arrival order.
    arrival_times:
        Per-contract arrival times (for latency accounting).
    """

    dispatch_time_s: float
    options: list[CDSOption]
    arrival_times: list[float]

    def __post_init__(self) -> None:
        if len(self.options) != len(self.arrival_times):
            raise ValidationError(
                "options and arrival_times must have equal length"
            )
        if not self.options:
            raise ValidationError("a dispatch batch cannot be empty")

    @property
    def n_options(self) -> int:
        """Contracts in this batch."""
        return len(self.options)


@dataclass(frozen=True)
class BatchQueue:
    """Size-or-linger request coalescing.

    Parameters
    ----------
    max_batch:
        Dispatch immediately once this many requests are pending.
    linger_s:
        Dispatch whatever is pending once the oldest request has waited
        this long.
    """

    max_batch: int = 256
    linger_s: float = 1e-3

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.linger_s < 0:
            raise ValidationError(
                f"linger_s must be >= 0, got {self.linger_s}"
            )

    def coalesce(self, arrivals: list[Arrival]) -> list[DispatchBatch]:
        """Replay ``arrivals`` through the queue and return its dispatches.

        Parameters
        ----------
        arrivals:
            Request batches in any order (sorted internally by time).

        Returns
        -------
        list[DispatchBatch]
            Dispatches in time order; every arriving contract appears in
            exactly one dispatch.
        """
        pending: list[tuple[float, CDSOption]] = []
        batches: list[DispatchBatch] = []

        def flush(dispatch_time: float) -> None:
            taken, rest = pending[: self.max_batch], pending[self.max_batch :]
            batches.append(
                DispatchBatch(
                    dispatch_time_s=dispatch_time,
                    options=[o for _, o in taken],
                    arrival_times=[t for t, _ in taken],
                )
            )
            pending[:] = rest

        for arrival in sorted(arrivals, key=lambda a: a.time_s):
            for option in arrival.options:
                # Linger deadlines that expired before this request arrived.
                while pending and arrival.time_s > pending[0][0] + self.linger_s:
                    flush(pending[0][0] + self.linger_s)
                pending.append((arrival.time_s, option))
                if len(pending) >= self.max_batch:
                    flush(arrival.time_s)
        while pending:
            flush(pending[0][0] + self.linger_s)
        return batches


@dataclass(frozen=True)
class BatchingReport:
    """Latency/throughput outcome of a batched arrival replay.

    Attributes
    ----------
    n_requests / n_batches:
        Individual contracts priced and dispatches they were coalesced
        into.
    mean_batch_size:
        ``n_requests / n_batches``.
    span_seconds:
        First arrival to last completion.
    options_per_second:
        Sustained throughput over the span.
    mean_latency_s / p50_latency_s / p99_latency_s / max_latency_s:
        Per-contract arrival-to-completion latency statistics.
    batches:
        The dispatches themselves; excluded from equality comparisons.
    """

    n_requests: int
    n_batches: int
    mean_batch_size: float
    span_seconds: float
    options_per_second: float
    mean_latency_s: float
    p50_latency_s: float
    p99_latency_s: float
    max_latency_s: float
    batches: list[DispatchBatch] = field(default_factory=list, compare=False)

    def summary(self) -> str:
        """One-line report."""
        return (
            f"{self.n_requests} requests in {self.n_batches} batches "
            f"(mean {self.mean_batch_size:.1f}): "
            f"{self.options_per_second:,.0f} options/s, "
            f"latency p50 {self.p50_latency_s * 1e3:.2f} ms / "
            f"p99 {self.p99_latency_s * 1e3:.2f} ms"
        )


def simulate_batched_stream(
    cluster: CDSCluster,
    arrivals: list[Arrival],
    queue: BatchQueue | None = None,
) -> BatchingReport:
    """Replay an arrival trace through the queue and the cluster.

    Batches run on the cluster one at a time (the cluster already uses
    every card for each batch); a batch dispatched while the previous one
    is still running waits for it.

    Parameters
    ----------
    cluster:
        The cluster that prices each dispatched batch.
    arrivals:
        Request trace, e.g. from :func:`~repro.workloads.cluster.
        make_burst_arrivals`.
    queue:
        Coalescing policy (default :class:`BatchQueue`).

    Returns
    -------
    BatchingReport
        Per-request latency percentiles and sustained throughput.
    """
    if not arrivals:
        raise ValidationError("arrival trace must be non-empty")
    q = queue if queue is not None else BatchQueue()
    batches = q.coalesce(arrivals)

    latencies: list[float] = []
    busy_until = 0.0
    for batch in batches:
        start = max(batch.dispatch_time_s, busy_until)
        result = cluster.run(batch.options)
        done = start + result.makespan_seconds
        busy_until = done
        latencies.extend(done - t for t in batch.arrival_times)

    lat = np.asarray(latencies)
    first = min(a.time_s for a in arrivals)
    span = busy_until - first
    return BatchingReport(
        n_requests=len(lat),
        n_batches=len(batches),
        mean_batch_size=len(lat) / len(batches),
        span_seconds=span,
        options_per_second=len(lat) / span,
        mean_latency_s=float(lat.mean()),
        p50_latency_s=float(np.percentile(lat, 50)),
        p99_latency_s=float(np.percentile(lat, 99)),
        max_latency_s=float(lat.max()),
        batches=batches,
    )
