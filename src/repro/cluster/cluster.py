"""The multi-card cluster system: sharding, contention, roll-ups.

The paper stops at five CDS engines on one Alveo U280 (Table II).  This
module models the next scaling axis the CLUSTER venue implies: a host with
``N`` cards, each running the full Table II multi-engine configuration,
fed by a host-side scheduler that shards the option portfolio card-by-card.

The timing model composes three pieces that already exist one level down:

* each card's chunk makespan comes from the same discrete-event simulation
  as the single-card system (:class:`~repro.engines.multi_engine.
  MultiEngineSystem`), including its intra-card engine contention;
* each card's PCIe time is stretched by the host-path contention factor of
  :class:`~repro.cluster.interconnect.HostLinkModel` — the multi-engine
  contention idiom one level up;
* the host pays a serial dispatch latency per chunk issued.

Batch timing runs on the unified :mod:`repro.sim` core: every card is a
:class:`~repro.sim.Resource` whose chunk occupies one busy window from
``t=0``, and the batch makespan is the latest window edge plus the serial
host dispatch time — pinned bit-identical to the pre-``repro.sim``
roll-up by the timing-conformance suite.

The batch completes when the slowest card finishes — so the scheduler's
load balance, not the aggregate card count, decides the speedup on skewed
portfolios.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.cluster.interconnect import HostLinkModel
from repro.cluster.node import CardReport, ClusterNode
from repro.cluster.scheduler import (
    ClusterScheduler,
    LeastLoadedScheduler,
    make_scheduler,
    validate_partition,
)
from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.sim import Resource, Simulation
from repro.workloads.scenarios import PaperScenario

__all__ = ["CDSCluster", "ClusterResult", "option_costs"]


def option_costs(options: list[CDSOption]) -> list[float]:
    """Per-option cost proxy used by every scheduling policy.

    The cost of an option in every engine variant is dominated by its
    payment-schedule length (the trip count of the hazard, discount and
    leg-accumulation loops), so the payment count is the natural
    scheduling weight — available in O(1) per option without building the
    schedule arrays.

    Parameters
    ----------
    options:
        The portfolio to weigh.

    Returns
    -------
    list[float]
        One positive weight per option, in input order.
    """
    return [float(o.n_payments) for o in options]


@dataclass(frozen=True)
class ClusterResult:
    """Outcome of one cluster batch: numbers, timing, power.

    Attributes
    ----------
    spreads_bps:
        Par spreads in original portfolio order, identical to a
        single-card run (the scheduler only changes *where* each option is
        priced).
    n_cards / n_active_cards:
        Cards in the cluster / cards that received work.
    policy:
        Scheduling policy name used for the shard.
    makespan_seconds:
        Slowest card's busy time plus serial host dispatch.
    options_per_second:
        Aggregate throughput: portfolio size over the makespan.
    total_watts:
        Sum of card power (idle cards draw shell power).
    options_per_watt:
        Aggregate power efficiency ("Table II extended" final column).
    dispatches:
        Host dispatches performed (one per chunk issued).
    cards:
        Per-card roll-ups, including idle cards; excluded from equality
        comparisons.
    """

    spreads_bps: np.ndarray
    n_cards: int
    n_active_cards: int
    policy: str
    makespan_seconds: float
    options_per_second: float
    total_watts: float
    options_per_watt: float
    dispatches: int
    cards: list[CardReport] = field(default_factory=list, compare=False)

    def summary(self) -> str:
        """One-line aggregate summary."""
        return (
            f"cluster[{self.n_cards} cards, {self.policy}]: "
            f"{self.options_per_second:,.0f} options/s, "
            f"{self.total_watts:.1f} W, "
            f"{self.options_per_watt:,.1f} opt/W "
            f"({len(self.spreads_bps)} options, "
            f"{self.n_active_cards} active card(s))"
        )

    def render(self) -> str:
        """Multi-line report: per-card table plus the aggregate roll-up."""
        lines = [
            f"{'Card':>4} {'Options':>8} {'Busy (ms)':>10} {'Util':>6} "
            f"{'Watts':>7} {'Opt/s':>12}",
            "-" * 52,
        ]
        for c in self.cards:
            lines.append(
                f"{c.card_id:>4} {c.n_options:>8} {c.seconds * 1e3:>10.3f} "
                f"{c.utilisation:>5.0%} {c.watts:>7.2f} "
                f"{c.options_per_second:>12,.0f}"
            )
        lines.append("-" * 52)
        lines.append(
            f"aggregate: {self.options_per_second:,.0f} options/s over "
            f"{self.makespan_seconds * 1e3:.3f} ms  |  "
            f"power {self.total_watts:.2f} W  |  "
            f"{self.options_per_watt:,.1f} opt/W  |  "
            f"policy {self.policy}, {self.dispatches} dispatch(es)"
        )
        return "\n".join(lines)


class CDSCluster:
    """``n_cards`` simulated U280 cards behind one host-side scheduler.

    Parameters
    ----------
    scenario:
        Experimental configuration shared by every card.
    n_cards:
        Cards in the cluster.
    n_engines:
        CDS engines per card (default: the paper's five-engine maximum);
        floorplan-validated per card at construction.
    scheduler:
        Sharding policy — a :class:`~repro.cluster.scheduler.
        ClusterScheduler` instance or a registry name
        (default: ``least-loaded``).
    link:
        Host-path timing model (default :class:`~repro.cluster.
        interconnect.HostLinkModel`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle: card busy
        windows become spans when it records, and each :meth:`run`
        publishes ``cluster_*`` roll-up metrics into its registry.  The
        result is identical either way.

    Examples
    --------
    >>> from repro.workloads.scenarios import PaperScenario
    >>> cluster = CDSCluster(PaperScenario(n_options=16), n_cards=2)
    >>> result = cluster.run()
    >>> result.spreads_bps.shape
    (16,)
    """

    def __init__(
        self,
        scenario: PaperScenario | None = None,
        *,
        n_cards: int = 2,
        n_engines: int = 5,
        scheduler: ClusterScheduler | str | None = None,
        link: HostLinkModel | None = None,
        telemetry=None,
    ) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        self.scenario = scenario if scenario is not None else PaperScenario()
        self.nodes = [
            ClusterNode(c, self.scenario, n_engines=n_engines)
            for c in range(n_cards)
        ]
        if scheduler is None:
            self.scheduler: ClusterScheduler = LeastLoadedScheduler()
        elif isinstance(scheduler, str):
            self.scheduler = make_scheduler(scheduler)
        else:
            self.scheduler = scheduler
        self.link = link if link is not None else HostLinkModel()
        self.telemetry = telemetry

    @property
    def n_cards(self) -> int:
        """Cards in the cluster."""
        return len(self.nodes)

    @property
    def total_engines(self) -> int:
        """CDS engines across all cards."""
        return sum(node.n_engines for node in self.nodes)

    def run(
        self,
        options: list[CDSOption] | None = None,
        yield_curve: YieldCurve | None = None,
        hazard_curve: HazardCurve | None = None,
    ) -> ClusterResult:
        """Shard, price and roll up one portfolio batch.

        All arguments default to the scenario's workload, mirroring
        :meth:`repro.engines.base.CDSEngineBase.run`.

        Parameters
        ----------
        options:
            Portfolio to price (default: the scenario batch).
        yield_curve / hazard_curve:
            Full rate tables, broadcast to every card.

        Returns
        -------
        ClusterResult
            Merged spreads (input order) plus timing and power roll-ups.
        """
        sc = self.scenario
        options = options if options is not None else sc.options()
        yc = yield_curve if yield_curve is not None else sc.yield_curve()
        hc = hazard_curve if hazard_curve is not None else sc.hazard_curve()
        if not options:
            raise ValidationError("cluster batch needs at least one option")

        assignment = self.scheduler.partition(option_costs(options), self.n_cards)
        if len(assignment) != self.n_cards:
            raise ValidationError(
                f"scheduler returned {len(assignment)} chunks for "
                f"{self.n_cards} cards"
            )
        validate_partition(assignment, len(options))
        active = sum(1 for chunk in assignment if chunk)
        factor = self.link.contention_factor(active)

        # Unified-clock timing: each card is a sim Resource; the chunk's
        # kernel + contended-PCIe time is one busy window reserved from
        # t=0 (all chunks are issued at batch start).
        sim = Simulation()
        recorder = (
            self.telemetry.recorder if self.telemetry is not None else None
        )
        card_resources = [
            Resource(f"card{node.card_id}", sim=sim, recorder=recorder)
            for node in self.nodes
        ]
        spreads = np.empty(len(options), dtype=float)
        reports: list[CardReport] = []
        busy: list[float] = []
        for node, resource, chunk in zip(self.nodes, card_resources, assignment):
            if not chunk:
                reports.append(
                    CardReport(
                        card_id=node.card_id,
                        n_options=0,
                        kernel_seconds=0.0,
                        pcie_seconds=0.0,
                        seconds=0.0,
                        utilisation=0.0,
                        watts=node.idle_watts,
                        options_per_second=0.0,
                    )
                )
                continue
            result = node.price([options[i] for i in chunk], yc, hc)
            spreads[chunk] = result.spreads_bps
            kernel = sc.clock.seconds(result.kernel_cycles)
            pcie = result.pcie_seconds * factor
            window = resource.reserve(
                0.0,
                kernel + pcie,
                span_name="card_batch",
                span_kind="cluster",
                span_args={"options": len(chunk)},
            )
            busy.append(window.done_s)
            reports.append(
                CardReport(
                    card_id=node.card_id,
                    n_options=len(chunk),
                    kernel_seconds=kernel,
                    pcie_seconds=pcie,
                    seconds=resource.busy_seconds,
                    utilisation=0.0,  # filled once the makespan is known
                    watts=node.active_watts,
                    options_per_second=len(chunk) / resource.busy_seconds,
                    result=result,
                )
            )

        dispatches = self.scheduler.dispatches(assignment)
        makespan = max(busy) + self.link.dispatch_seconds(dispatches)
        reports = [
            replace(r, utilisation=r.seconds / makespan) for r in reports
        ]
        # Inline options/watt rather than importing repro.analysis.metrics:
        # the analysis layer imports this package for its scaling table.
        watts = sum(r.watts for r in reports)
        rate = len(options) / makespan
        if self.telemetry is not None:
            out = self.telemetry.metrics
            out.counter(
                "cluster_batches_total", "cluster batches run"
            ).inc()
            out.counter(
                "cluster_options_total", "options priced across batches"
            ).inc(len(options))
            out.counter(
                "cluster_dispatches_total", "host dispatches issued"
            ).inc(dispatches)
            out.gauge(
                "cluster_makespan_seconds", "latest batch makespan"
            ).set(makespan)
            out.gauge(
                "cluster_options_per_second", "latest batch throughput"
            ).set(rate)
            out.gauge(
                "cluster_options_per_watt", "latest batch power efficiency"
            ).set(rate / watts)
        return ClusterResult(
            spreads_bps=spreads,
            n_cards=self.n_cards,
            n_active_cards=active,
            policy=self.scheduler.name,
            makespan_seconds=makespan,
            options_per_second=rate,
            total_watts=watts,
            options_per_watt=rate / watts,
            dispatches=dispatches,
            cards=reports,
        )
