"""Host-side interconnect model for multi-card deployments.

Within one card, :class:`~repro.engines.multi_engine.MultiEngineSystem`
stretches the batch makespan by the calibrated shared-interface coefficient
``multi_engine_contention`` ("rate(n) = n * rate(1) / (1 + c * (n - 1))").
A multi-card host exhibits the same shape one level up: every card's DMA
traffic crosses the same PCIe root complex and is fed by the same driver
stack, so concurrent batch transfers serialise partially against each
other, and every chunk dispatch costs the host a fixed scheduling quantum.

:class:`HostLinkModel` captures exactly those two effects — a linear
contention factor applied to each card's PCIe time, and a per-dispatch
latency charged serially on the host thread.  The defaults are deliberately
conservative (a multi-socket host with the cards split across root ports
would do better); zeroing both fields models an ideal host, which the
property tests use to check that scaling is then monotone in card count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["HostLinkModel"]


@dataclass(frozen=True)
class HostLinkModel:
    """Shared host-path timing between the cards of one cluster node.

    Parameters
    ----------
    host_contention:
        Linear serialisation coefficient between concurrently transferring
        cards: each card's PCIe time is stretched by
        ``1 + host_contention * (active_cards - 1)``.  The same functional
        form as ``PaperScenario.multi_engine_contention``, one level up.
    dispatch_latency_s:
        Host-side cost of issuing one chunk to one card (scheduler work,
        queue bookkeeping, doorbell write — the full kernel-invocation
        overhead is already charged per card by the engine model).
        Dispatches are serial on the host thread, so a run over ``k``
        chunks pays ``k`` of these; the work-stealing policy, which
        dispatches many small chunks, is the one that feels this knob.
    """

    host_contention: float = 0.04
    dispatch_latency_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.host_contention < 0:
            raise ValidationError(
                f"host_contention must be >= 0, got {self.host_contention}"
            )
        if self.dispatch_latency_s < 0:
            raise ValidationError(
                f"dispatch_latency_s must be >= 0, got {self.dispatch_latency_s}"
            )

    def contention_factor(self, active_cards: int) -> float:
        """Stretch applied to each card's PCIe time.

        Parameters
        ----------
        active_cards:
            Cards transferring concurrently during the batch.

        Returns
        -------
        float
            ``1 + host_contention * (active_cards - 1)``; ``1.0`` for a
            single active card.
        """
        if active_cards < 1:
            raise ValidationError(
                f"active_cards must be >= 1, got {active_cards}"
            )
        return 1.0 + self.host_contention * (active_cards - 1)

    def dispatch_seconds(self, n_dispatches: int) -> float:
        """Serial host time to issue ``n_dispatches`` chunk dispatches.

        Parameters
        ----------
        n_dispatches:
            Chunks handed to cards during the batch (one per active card
            for the static policies; one per stolen chunk for
            work-stealing).

        Returns
        -------
        float
            Seconds of host-thread time charged before the batch can
            complete.
        """
        if n_dispatches < 0:
            raise ValidationError(
                f"n_dispatches must be >= 0, got {n_dispatches}"
            )
        return self.dispatch_latency_s * n_dispatches
