"""One simulated Alveo U280 card inside a cluster node.

A :class:`ClusterNode` owns one :class:`~repro.engines.multi_engine.
MultiEngineSystem` — the paper's Table II configuration — plus the card-
level platform models it needs for cluster roll-ups: floorplan validation
happens at construction (exactly as on a single card, six paper engines
still do not fit), and power comes from the same affine
:class:`~repro.fpga.power.FPGAPowerModel` whether the card is busy or
sitting idle drawing shell power.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.engines.base import EngineResult
from repro.engines.multi_engine import MultiEngineSystem
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = ["ClusterNode", "CardReport"]


class ClusterNode:
    """One card of the cluster: engines, PCIe accounting, power.

    Parameters
    ----------
    card_id:
        Position of this card in the cluster (0-based).
    scenario:
        Experimental configuration shared by every card.
    n_engines:
        CDS engines per card; validated against the U280 floorplan at
        construction (the paper's maximum is five).
    """

    def __init__(
        self,
        card_id: int,
        scenario: PaperScenario | None = None,
        *,
        n_engines: int = 5,
    ) -> None:
        if card_id < 0:
            raise ValidationError(f"card_id must be >= 0, got {card_id}")
        self.card_id = card_id
        self.system = MultiEngineSystem(scenario, n_engines=n_engines)
        self.scenario = self.system.scenario

    @property
    def n_engines(self) -> int:
        """CDS engines deployed on this card."""
        return self.system.n_engines

    @property
    def active_watts(self) -> float:
        """Card power with every engine running (Table II column 3)."""
        return self.scenario.fpga_power.watts(self.n_engines)

    @property
    def idle_watts(self) -> float:
        """Card power with the shell loaded but no engine active."""
        return self.scenario.fpga_power.watts(0)

    def price(
        self,
        options: list[CDSOption],
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
    ) -> EngineResult:
        """Price one assigned chunk on this card's engines.

        Parameters
        ----------
        options:
            The chunk of the portfolio sharded to this card (non-empty).
        yield_curve / hazard_curve:
            Full rate tables — every card receives both in their entirety,
            as every engine does on a single card ("all engines require the
            full interest and hazard rate data", paper Section IV).

        Returns
        -------
        EngineResult
            Chunk spreads plus card-local cycle and PCIe accounting.  The
            cluster applies host-side contention on top.
        """
        if not options:
            raise ValidationError(
                f"card {self.card_id}: cannot price an empty chunk"
            )
        return self.system.run(options, yield_curve, hazard_curve)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ClusterNode(card_id={self.card_id}, n_engines={self.n_engines})"


@dataclass(frozen=True)
class CardReport:
    """Roll-up of one card's contribution to a cluster batch.

    Attributes
    ----------
    card_id:
        Which card.
    n_options:
        Chunk size this card priced (0 for an idle card).
    kernel_seconds:
        Fabric time of the card's multi-engine run.
    pcie_seconds:
        Host transfer time *after* host-side contention stretching.
    seconds:
        Card busy time: kernel + contended PCIe.
    utilisation:
        Busy fraction of the cluster makespan (0 for idle cards).
    watts:
        Card power during the batch (idle cards draw shell power).
    options_per_second:
        Card-local throughput over its busy time (0 for idle cards).
    result:
        Raw engine result for the chunk (``None`` for idle cards);
        excluded from equality comparisons.
    """

    card_id: int
    n_options: int
    kernel_seconds: float
    pcie_seconds: float
    seconds: float
    utilisation: float
    watts: float
    options_per_second: float
    result: EngineResult | None = field(default=None, compare=False)

    @property
    def idle(self) -> bool:
        """Whether this card received no work."""
        return self.n_options == 0
