"""Portfolio sharding policies for the cluster scheduler.

The paper decomposes a batch across engines by "splitting the entire set up
into N chunks" (Section IV) — a static contiguous partition, which is
optimal when every option costs the same.  Real portfolios are skewed: a
10-year monthly contract carries ~30x the time points of a 1-year annual
one, so a static split can leave most cards idle while one finishes its
expensive chunk.  The cluster layer therefore makes the policy pluggable.

Every policy implements the same contract: given the per-option cost vector
and a card count, return a partition of the option *indices* — each index
assigned to exactly one card.  Numerical results are therefore identical
under every policy (the cluster merges spreads back in input order); only
the load balance, and hence the makespan, differs.

Three policies ship:

``round-robin``
    Index ``i`` goes to card ``i % n_cards``.  Zero scheduling cost,
    oblivious to option cost.
``least-loaded``
    Greedy longest-processing-time: options sorted by descending cost,
    each assigned to the currently least-loaded card.  The classic 4/3
    makespan approximation.
``work-stealing``
    The portfolio is cut into small contiguous chunks held in one shared
    queue; each card pulls the next chunk whenever it goes idle.  This is
    the steady-state behaviour of a work-stealing deque with a single
    victim pool, simulated in virtual time.
"""

from __future__ import annotations

import abc
import heapq
import math
from collections.abc import Sequence

from repro.errors import ValidationError

__all__ = [
    "ClusterScheduler",
    "RoundRobinScheduler",
    "LeastLoadedScheduler",
    "WorkStealingScheduler",
    "SCHEDULERS",
    "make_scheduler",
    "validate_partition",
    "partition_healthy",
]


class ClusterScheduler(abc.ABC):
    """Interface shared by all sharding policies.

    Subclasses implement :meth:`partition`; everything else (validation,
    dispatch counting) is shared.
    """

    #: Registry key; subclasses override.
    name = "abstract"

    @abc.abstractmethod
    def partition(
        self, costs: Sequence[float], n_cards: int
    ) -> list[list[int]]:
        """Shard option indices across cards.

        Parameters
        ----------
        costs:
            Per-option cost proxy (the cluster passes schedule lengths —
            the dominant loop trip count of every engine stage).
        n_cards:
            Cards available.

        Returns
        -------
        list[list[int]]
            One index list per card, disjoint and jointly covering
            ``range(len(costs))``.  Cards may receive empty lists when
            there are more cards than options.
        """

    def dispatches(self, assignment: list[list[int]]) -> int:
        """Chunk dispatches the host performs for ``assignment``.

        Static policies hand each active card exactly one chunk; the
        work-stealing policy overrides this to count every stolen chunk.
        """
        return sum(1 for chunk in assignment if chunk)

    def _check_cards(self, n_cards: int) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")


class RoundRobinScheduler(ClusterScheduler):
    """Cost-oblivious cyclic assignment: index ``i`` to card ``i % n``."""

    name = "round-robin"

    def partition(
        self, costs: Sequence[float], n_cards: int
    ) -> list[list[int]]:
        """Shard indices cyclically; see :meth:`ClusterScheduler.partition`."""
        self._check_cards(n_cards)
        assignment: list[list[int]] = [[] for _ in range(n_cards)]
        for i in range(len(costs)):
            assignment[i % n_cards].append(i)
        return assignment


class LeastLoadedScheduler(ClusterScheduler):
    """Greedy longest-processing-time-first assignment.

    Options are visited in descending cost order (ties broken by index for
    determinism) and each is placed on the card with the smallest load so
    far — Graham's LPT heuristic, within 4/3 of the optimal makespan.
    """

    name = "least-loaded"

    def partition(
        self, costs: Sequence[float], n_cards: int
    ) -> list[list[int]]:
        """Shard indices greedily; see :meth:`ClusterScheduler.partition`."""
        self._check_cards(n_cards)
        assignment: list[list[int]] = [[] for _ in range(n_cards)]
        # Heap of (load, card) — ties resolve to the lowest card id.
        loads = [(0.0, c) for c in range(n_cards)]
        heapq.heapify(loads)
        order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
        for i in order:
            load, card = heapq.heappop(loads)
            assignment[card].append(i)
            heapq.heappush(loads, (load + costs[i], card))
        for chunk in assignment:
            chunk.sort()
        return assignment


class WorkStealingScheduler(ClusterScheduler):
    """Dynamic chunk pulling from one shared queue, in virtual time.

    The portfolio is cut into contiguous chunks of ``chunk_size`` options;
    whenever a card goes idle it takes the next chunk from the front of the
    queue.  Small chunks track skew closely at the price of more dispatch
    overhead (each pull is one host dispatch); ``chunk_size=None`` picks
    ``ceil(n / (4 * n_cards))`` — four pulls per card on a uniform
    portfolio, a standard self-scheduling compromise.

    Parameters
    ----------
    chunk_size:
        Options per stolen chunk, or ``None`` for the adaptive default.
    """

    name = "work-stealing"

    def __init__(self, chunk_size: int | None = None) -> None:
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(
                f"chunk_size must be >= 1 or None, got {chunk_size}"
            )
        self.chunk_size = chunk_size

    def _resolve_chunk(self, n_options: int, n_cards: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_options / (4 * n_cards)))

    def partition(
        self, costs: Sequence[float], n_cards: int
    ) -> list[list[int]]:
        """Shard indices by simulated stealing; see :meth:`ClusterScheduler.partition`."""
        self._check_cards(n_cards)
        n = len(costs)
        size = self._resolve_chunk(n, n_cards)
        chunks = [list(range(s, min(s + size, n))) for s in range(0, n, size)]

        assignment: list[list[int]] = [[] for _ in range(n_cards)]
        # Virtual clock per card; the idlest card steals the next chunk.
        clocks = [(0.0, c) for c in range(n_cards)]
        heapq.heapify(clocks)
        for chunk in chunks:
            t, card = heapq.heappop(clocks)
            assignment[card].extend(chunk)
            heapq.heappush(clocks, (t + sum(costs[i] for i in chunk), card))
        return assignment

    def dispatches(self, assignment: list[list[int]]) -> int:
        """One host dispatch per stolen chunk.

        Recomputed from the assignment's own shape (total options and card
        count resolve the chunk size), so the count is correct for any
        partition this policy produced, not just the most recent one.
        """
        n = sum(len(chunk) for chunk in assignment)
        if n == 0:
            return 0
        size = self._resolve_chunk(n, len(assignment))
        return math.ceil(n / size)


#: Policy registry used by the CLI and :func:`make_scheduler`.
SCHEDULERS: dict[str, type[ClusterScheduler]] = {
    RoundRobinScheduler.name: RoundRobinScheduler,
    LeastLoadedScheduler.name: LeastLoadedScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
}


def make_scheduler(policy: str, **kwargs) -> ClusterScheduler:
    """Instantiate a policy by registry name.

    Parameters
    ----------
    policy:
        One of :data:`SCHEDULERS` (``round-robin``, ``least-loaded``,
        ``work-stealing``).
    **kwargs:
        Forwarded to the policy constructor (e.g. ``chunk_size``).

    Raises
    ------
    ValidationError
        For an unknown policy name.
    """
    try:
        cls = SCHEDULERS[policy]
    except KeyError:
        raise ValidationError(
            f"unknown scheduler policy {policy!r}; "
            f"choose from {sorted(SCHEDULERS)}"
        ) from None
    return cls(**kwargs)


def validate_partition(assignment: list[list[int]], n_options: int) -> None:
    """Check that ``assignment`` is an exact partition of the portfolio.

    Parameters
    ----------
    assignment:
        Per-card index lists as returned by a policy.
    n_options:
        Portfolio size the partition must cover.

    Raises
    ------
    ValidationError
        If any index is missing, duplicated, or out of range.
    """
    seen: set[int] = set()
    for chunk in assignment:
        for i in chunk:
            if not 0 <= i < n_options:
                raise ValidationError(
                    f"scheduler produced out-of-range index {i}"
                )
            if i in seen:
                raise ValidationError(
                    f"scheduler assigned option {i} to two cards"
                )
            seen.add(i)
    if len(seen) != n_options:
        missing = sorted(set(range(n_options)) - seen)[:5]
        raise ValidationError(
            f"scheduler dropped {n_options - len(seen)} option(s), "
            f"first missing: {missing}"
        )


def partition_healthy(
    scheduler: ClusterScheduler,
    costs: list[float],
    n_cards: int,
    healthy: tuple[int, ...],
) -> list[list[int]]:
    """Partition ``costs`` across only the ``healthy`` cards.

    The health-aware wrapper every policy gets for free: the scheduler
    runs over the healthy subset and the result is widened back to the
    full cluster shape, down cards receiving empty chunks.  With every
    card healthy this is exactly ``scheduler.partition`` — the
    fault-free conformance pin.

    Parameters
    ----------
    scheduler:
        Any :class:`ClusterScheduler` policy.
    costs / n_cards:
        As for :meth:`ClusterScheduler.partition`.
    healthy:
        Card indices allowed to receive work (each ``< n_cards``).
    """
    healthy = tuple(healthy)
    if not healthy:
        raise ValidationError("cannot partition work: no healthy cards")
    if len(set(healthy)) != len(healthy):
        raise ValidationError(f"healthy cards must be distinct, got {healthy}")
    if any(not 0 <= c < n_cards for c in healthy):
        raise ValidationError(
            f"healthy card out of range for a {n_cards}-card cluster: {healthy}"
        )
    if len(healthy) == n_cards:
        return scheduler.partition(costs, n_cards)
    sub = scheduler.partition(costs, len(healthy))
    assignment: list[list[int]] = [[] for _ in range(n_cards)]
    for slot, chunk in enumerate(sub):
        assignment[healthy[slot]] = list(chunk)
    return assignment
