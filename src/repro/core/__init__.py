"""Core CDS pricing library.

This subpackage implements the quantitative-finance substrate of the paper:
the Credit Default Swap pricing model used by the Xilinx Vitis CDS engine
(Hull-style reduced-form pricing with a piecewise term structure of interest
rates and hazard rates).

Layout
------
``types``
    Plain dataclasses: :class:`~repro.core.types.CDSOption`,
    :class:`~repro.core.types.CDSResult` and friends.
``daycount``
    Year-fraction conventions.
``curves``
    Term-structure curves: linear-interpolated yield curve and
    piecewise-constant hazard curve with analytic integration.
``schedule``
    Premium payment schedules (the "distinct time points" of paper Fig. 1).
``pricing``
    Scalar reference pricer — the numerical ground truth every engine
    variant must agree with.
``vector_pricing``
    NumPy-vectorised batch pricer used by the CPU baseline engine.
``bootstrap``
    Hazard-curve bootstrap from quoted par spreads (inverse problem;
    extension beyond the paper).
``validation``
    Input validation helpers shared by the above.
"""

from repro.core.types import (
    CDSOption,
    CDSResult,
    LegBreakdown,
    RatePoint,
)
from repro.core.curves import Curve, HazardCurve, YieldCurve
from repro.core.daycount import DayCount, year_fraction
from repro.core.schedule import PaymentSchedule, build_schedule
from repro.core.pricing import CDSPricer, price_cds
from repro.core.vector_pricing import VectorCDSPricer, price_portfolio

__all__ = [
    "CDSOption",
    "CDSResult",
    "LegBreakdown",
    "RatePoint",
    "Curve",
    "YieldCurve",
    "HazardCurve",
    "DayCount",
    "year_fraction",
    "PaymentSchedule",
    "build_schedule",
    "CDSPricer",
    "price_cds",
    "VectorCDSPricer",
    "price_portfolio",
]
