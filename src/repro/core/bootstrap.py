"""Hazard-curve bootstrap from quoted par spreads.

An extension beyond the paper (its "further work" direction of richer model
integration): given market par spreads for a ladder of maturities, recover
the piecewise-constant hazard curve that reprices them.  This exercises the
pricing stack in the inverse direction and provides realistic hazard curves
for the workload generators.

The bootstrap proceeds maturity-by-maturity: for each quoted tenor the
segment intensity is solved with Brent's method so that the model par spread
matches the quote, holding previously bootstrapped segments fixed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import CDSPricer
from repro.core.types import CDSOption
from repro.errors import CalibrationError, ValidationError

__all__ = ["CDSQuote", "bootstrap_hazard_curve"]

#: Search bracket for a segment's hazard intensity (per-year).  5000% hazard
#: is far beyond any plausible credit; it exists only to bound brentq.
_LAMBDA_LO = 1e-10
_LAMBDA_HI = 50.0


@dataclass(frozen=True)
class CDSQuote:
    """A market quote: par spread for a standard CDS of a given maturity.

    Parameters
    ----------
    maturity:
        Tenor in years.
    spread_bps:
        Quoted par spread in basis points.
    frequency:
        Premium payments per year (default quarterly, the market standard).
    recovery_rate:
        Assumed recovery (default 0.4, the conventional senior-unsecured
        assumption).
    """

    maturity: float
    spread_bps: float
    frequency: int = 4
    recovery_rate: float = 0.4

    def __post_init__(self) -> None:
        if self.maturity <= 0.0:
            raise ValidationError(f"quote maturity must be > 0, got {self.maturity}")
        if self.spread_bps <= 0.0:
            raise ValidationError(f"quote spread must be > 0, got {self.spread_bps}")

    def as_option(self) -> CDSOption:
        """The option whose par spread this quote pins down."""
        return CDSOption(
            maturity=self.maturity,
            frequency=self.frequency,
            recovery_rate=self.recovery_rate,
        )


def bootstrap_hazard_curve(
    quotes: list[CDSQuote],
    yield_curve: YieldCurve,
    *,
    tolerance_bps: float = 1e-8,
) -> HazardCurve:
    """Bootstrap a piecewise-constant hazard curve repricing ``quotes``.

    Parameters
    ----------
    quotes:
        Quotes sorted (or sortable) by strictly increasing maturity.
    yield_curve:
        Discounting curve.
    tolerance_bps:
        Convergence tolerance on the repriced spread.

    Returns
    -------
    HazardCurve
        Curve with one knot per quote maturity.

    Raises
    ------
    CalibrationError
        If any segment cannot be solved within the bracket (e.g. spreads
        that decrease so steeply with maturity that no non-negative forward
        hazard reprices them).
    """
    if not quotes:
        raise ValidationError("bootstrap requires at least one quote")
    ordered = sorted(quotes, key=lambda q: q.maturity)
    mats = [q.maturity for q in ordered]
    if len(set(mats)) != len(mats):
        raise ValidationError(f"duplicate quote maturities: {mats}")

    knot_times: list[float] = []
    knot_values: list[float] = []

    for quote in ordered:
        target = quote.spread_bps
        option = quote.as_option()

        def spread_error(lam: float) -> float:
            candidate = HazardCurve(
                knot_times + [quote.maturity], knot_values + [lam]
            )
            pricer = CDSPricer(yield_curve=yield_curve, hazard_curve=candidate)
            return pricer.price(option).spread_bps - target

        lo, hi = spread_error(_LAMBDA_LO), spread_error(_LAMBDA_HI)
        if lo * hi > 0.0:
            raise CalibrationError(
                f"cannot bracket hazard for quote at T={quote.maturity}: "
                f"error({_LAMBDA_LO})={lo:.3g}, error({_LAMBDA_HI})={hi:.3g}"
            )
        lam_star = float(
            brentq(spread_error, _LAMBDA_LO, _LAMBDA_HI, xtol=1e-14, rtol=1e-12)
        )
        if abs(spread_error(lam_star)) > tolerance_bps:
            raise CalibrationError(
                f"bootstrap did not converge at T={quote.maturity}: "
                f"residual {spread_error(lam_star):.3g} bps"
            )
        knot_times.append(quote.maturity)
        knot_values.append(lam_star)

    return HazardCurve(knot_times, knot_values)


def implied_quotes(
    hazard_curve: HazardCurve,
    yield_curve: YieldCurve,
    maturities: list[float],
    *,
    frequency: int = 4,
    recovery_rate: float = 0.4,
) -> list[CDSQuote]:
    """Forward problem: par-spread quotes implied by a hazard curve.

    Useful for round-trip testing the bootstrap and for generating realistic
    quote ladders in the workload generator.
    """
    pricer = CDSPricer(yield_curve=yield_curve, hazard_curve=hazard_curve)
    quotes = []
    for mat in maturities:
        option = CDSOption(maturity=mat, frequency=frequency, recovery_rate=recovery_rate)
        spread = pricer.price(option).spread_bps
        quotes.append(
            CDSQuote(
                maturity=mat,
                spread_bps=spread,
                frequency=frequency,
                recovery_rate=recovery_rate,
            )
        )
    return quotes
