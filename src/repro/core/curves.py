"""Term-structure curves.

Two curve families back the CDS model (paper Section II.A):

* the **interest-rate curve** ("term structure"): a list of percentages of
  interest payable in a given time frame, interpolated *linearly* between
  knots — :class:`YieldCurve`.  The engine's "interpolation sub-steps"
  (paper Fig. 2) evaluate this curve.
* the **hazard-rate curve**: the likelihood intensity that the loan defaults
  by a point in time, integrated by *accumulating* the constant data up to
  the evaluation time — :class:`HazardCurve`.  The engine's hazard
  calculation stage performs this accumulation, and it is the accumulation's
  double-precision add dependency that produced the II=7 bottleneck the paper
  fixes with Listing 1.

Both curves clamp (flat-extrapolate) outside the knot range, matching the
behaviour of table-driven FPGA implementations that saturate their index.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.types import RatePoint
from repro.core.validation import (
    as_float_array,
    check_finite,
    check_positive,
    check_strictly_increasing,
)
from repro.errors import CurveError

__all__ = [
    "Curve",
    "YieldCurve",
    "HazardCurve",
    "interp_many",
    "discount_factors_many",
    "survival_many",
]


class Curve:
    """A piecewise term structure over strictly-increasing times.

    Parameters
    ----------
    times:
        Strictly increasing, positive knot times (years).
    values:
        Knot values, same length as ``times``.

    Notes
    -----
    The class is immutable after construction; the knot arrays are copied and
    marked read-only so curves can safely be shared between engine replicas
    (the paper duplicates the constant rate data into each engine's URAM —
    sharing an immutable object is the software analogue).
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        t = as_float_array(times, "times")
        v = as_float_array(values, "values")
        if t.shape != v.shape:
            raise CurveError(
                f"times and values must have equal length, got {t.size} and {v.size}"
            )
        check_finite(t, "times")
        check_finite(v, "values")
        check_positive(t, "times", strict=True)
        check_strictly_increasing(t, "times")
        t = t.copy()
        v = v.copy()
        t.flags.writeable = False
        v.flags.writeable = False
        self._times = t
        self._values = v

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_points(cls, points: Iterable[RatePoint]) -> "Curve":
        """Build a curve from an iterable of :class:`RatePoint`."""
        pts = list(points)
        if not pts:
            raise CurveError("cannot build a curve from zero points")
        return cls([p.time for p in pts], [p.value for p in pts])

    def to_points(self) -> list[RatePoint]:
        """Return the knots as a list of :class:`RatePoint`."""
        return [RatePoint(float(t), float(v)) for t, v in zip(self._times, self._values)]

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def times(self) -> np.ndarray:
        """Read-only knot times (years)."""
        return self._times

    @property
    def values(self) -> np.ndarray:
        """Read-only knot values."""
        return self._values

    def __len__(self) -> int:
        return int(self._times.size)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(n={len(self)}, "
            f"t=[{self._times[0]:.4g}..{self._times[-1]:.4g}])"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Curve):
            return NotImplemented
        return (
            type(self) is type(other)
            and np.array_equal(self._times, other._times)
            and np.array_equal(self._values, other._values)
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._times.tobytes(), self._values.tobytes()))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def interpolate(self, t: float | np.ndarray) -> float | np.ndarray:
        """Linear interpolation of the knot values at time(s) ``t``.

        Values are clamped to the first/last knot value outside the knot
        range (flat extrapolation), which is what a saturating table lookup
        on the FPGA produces.
        """
        result = np.interp(t, self._times, self._values)
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(result)
        return result

    def locate(self, t: float) -> int:
        """Index of the first knot with time >= ``t`` (clamped to the last).

        This mirrors the linear search the FPGA interpolation unit performs
        over the rate table; the *timing* of that search is modelled in
        :mod:`repro.hls.interpolation`, while this method provides the
        functional answer.
        """
        idx = int(np.searchsorted(self._times, t, side="left"))
        return min(idx, len(self) - 1)


class YieldCurve(Curve):
    """Interest-rate term structure with continuously-compounded discounting.

    ``discount(t) = exp(-r(t) * t)`` where ``r(t)`` is the linearly
    interpolated zero rate.
    """

    __slots__ = ()

    def zero_rate(self, t: float | np.ndarray) -> float | np.ndarray:
        """Linearly interpolated zero rate at ``t`` (flat beyond the ends)."""
        return self.interpolate(t)

    def discount(self, t: float | np.ndarray) -> float | np.ndarray:
        """Discount factor ``exp(-r(t) * t)``; ``t`` may be an array.

        Negative ``t`` is clamped to zero (discount factor 1).
        """
        tt = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
        df = np.exp(-np.asarray(self.interpolate(tt)) * tt)
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(df)
        return df

    def forward_rate(self, t0: float, t1: float) -> float:
        """Continuously-compounded forward rate between ``t0`` and ``t1``."""
        if t1 <= t0:
            raise CurveError(f"forward_rate requires t1 > t0, got [{t0}, {t1}]")
        d0 = self.discount(t0)
        d1 = self.discount(t1)
        return float(np.log(d0 / d1) / (t1 - t0))


class HazardCurve(Curve):
    """Hazard-rate term structure with piecewise-constant intensity.

    Knot ``k`` of the curve states that the default intensity equals
    ``values[k]`` on the interval ``(times[k-1], times[k]]`` (with
    ``times[-1]`` taken as 0 for the first segment); beyond the final knot
    the last intensity applies.  The cumulative hazard

    ``Lambda(t) = integral_0^t lambda(u) du``

    is the quantity the engine's hazard stage computes by accumulating the
    constant data "up until this time" (paper Section II.A); the survival
    probability is ``S(t) = exp(-Lambda(t))`` and the default probability is
    ``1 - S(t)``.
    """

    __slots__ = ("_cum",)

    def __init__(self, times: Sequence[float], values: Sequence[float]) -> None:
        super().__init__(times, values)
        check_positive(self._values, "hazard values", strict=False)
        # Cumulative integral at each knot: cum[k] = Lambda(times[k]).
        widths = np.diff(np.concatenate(([0.0], self._times)))
        cum = np.cumsum(widths * self._values)
        cum.flags.writeable = False
        self._cum = cum

    def intensity(self, t: float) -> float:
        """Piecewise-constant hazard intensity applying at time ``t``."""
        if t <= 0.0:
            return float(self._values[0])
        idx = int(np.searchsorted(self._times, t, side="left"))
        idx = min(idx, len(self) - 1)
        return float(self._values[idx])

    def integrated(self, t: float | np.ndarray) -> float | np.ndarray:
        """Cumulative hazard ``Lambda(t)`` (vectorised over ``t``).

        For ``t`` inside segment ``k`` this is ``cum[k-1] + lambda_k *
        (t - times[k-1])``; beyond the last knot the final intensity
        extrapolates flat.
        """
        tt = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
        idx = np.minimum(
            np.searchsorted(self._times, tt, side="left"), len(self) - 1
        )
        prev_t = np.where(idx > 0, self._times[np.maximum(idx - 1, 0)], 0.0)
        prev_cum = np.where(idx > 0, self._cum[np.maximum(idx - 1, 0)], 0.0)
        lam = self._values[idx]
        # Clamp within the segment; beyond the last knot (t > times[-1]) the
        # formula extends naturally since idx == len-1 and t - prev_t grows.
        result = prev_cum + lam * (tt - prev_t)
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(result)
        return result

    def survival(self, t: float | np.ndarray) -> float | np.ndarray:
        """Survival probability ``S(t) = exp(-Lambda(t))``."""
        s = np.exp(-np.asarray(self.integrated(t)))
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(s)
        return s

    def default_probability(self, t: float | np.ndarray) -> float | np.ndarray:
        """Probability that default has occurred by time ``t``."""
        p = 1.0 - np.asarray(self.survival(t))
        if np.isscalar(t) or np.ndim(t) == 0:
            return float(p)
        return p

    def accumulation_length(self, t: float) -> int:
        """Number of curve entries the FPGA hazard stage accumulates for ``t``.

        The Vitis engine walks the hazard table from the start and
        accumulates every entry with time <= ``t`` (plus one partial
        segment).  This count drives the *cycle cost* of the hazard stage in
        the simulator: with the baseline II=7 accumulator the stage takes
        ``7 * accumulation_length(t)`` cycles, with the Listing-1 accumulator
        roughly ``accumulation_length(t)`` cycles.
        """
        if t <= 0.0:
            return 0
        idx = int(np.searchsorted(self._times, t, side="right"))
        # Entries strictly before t, plus the partial segment containing t
        # (unless t lies exactly on or beyond the final knot).
        return min(idx + 1, len(self))


# ----------------------------------------------------------------------
# Batched curve evaluation over a leading scenario axis
# ----------------------------------------------------------------------
# These back the scenario-tensor repricing kernel: many market states that
# share one knot grid, evaluated at one set of times in a single pass.
# Each function reproduces the scalar-curve result *bit for bit* — the
# elementary operations and their order match ``np.interp`` /
# :meth:`HazardCurve.integrated` exactly — so batched repricing can be
# pinned identical to the per-scenario loop.


def interp_many(
    t: np.ndarray, knot_times: np.ndarray, knot_values: np.ndarray
) -> np.ndarray:
    """Batched ``np.interp``: one query grid, many value rows.

    Equivalent to ``np.vstack([np.interp(t, knot_times, row) for row in
    knot_values])`` — bit-identical, one vectorised pass.  Flat
    extrapolation outside the knot range, as for :meth:`Curve.interpolate`.

    Parameters
    ----------
    t:
        ``(m,)`` query times, shared by every row.
    knot_times:
        ``(k,)`` strictly increasing knot times, shared by every row.
    knot_values:
        ``(n_rows, k)`` knot values, one curve per row.

    Returns
    -------
    np.ndarray
        ``(n_rows, m)`` interpolated values.
    """
    x = np.asarray(t, dtype=np.float64)
    xp = np.asarray(knot_times, dtype=np.float64)
    fp = np.atleast_2d(np.asarray(knot_values, dtype=np.float64))
    if xp.size < 2:
        # Degenerate single-knot curve: flat everywhere.
        return np.broadcast_to(fp[:, :1], (fp.shape[0], x.size)).copy()
    # Interval index: last knot with time <= x (-1 below the first knot).
    j = np.searchsorted(xp, x, side="right") - 1
    jc = np.clip(j, 0, xp.size - 2)
    x0 = xp[jc]
    # np.interp computes fp[j] + slope * (x - xp[j]) with
    # slope = (fp[j+1] - fp[j]) / (xp[j+1] - xp[j]); replicate the exact
    # operation order so results match bit for bit.  An exact knot hit
    # lands on fp[j] because the slope term multiplies by zero.
    slope = (fp[:, jc + 1] - fp[:, jc]) / (xp[jc + 1] - x0)
    out = slope * (x - x0) + fp[:, jc]
    out = np.where(j < 0, fp[:, :1], out)
    return np.where(j >= xp.size - 1, fp[:, -1:], out)


def discount_factors_many(
    t: np.ndarray, knot_times: np.ndarray, knot_values: np.ndarray
) -> np.ndarray:
    """Batched :meth:`YieldCurve.discount` over rows of zero-rate values.

    Bit-identical to evaluating a :class:`YieldCurve` per row.

    Parameters
    ----------
    t:
        ``(m,)`` times (negative times clamp to discount factor 1).
    knot_times / knot_values:
        Shared knot grid and ``(n_rows, k)`` zero-rate rows.
    """
    tt = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
    rates = interp_many(tt, knot_times, knot_values)
    return np.exp(-rates * tt)


def survival_many(
    t: np.ndarray, knot_times: np.ndarray, knot_values: np.ndarray
) -> np.ndarray:
    """Batched :meth:`HazardCurve.survival` over rows of intensity values.

    Integrates each row's piecewise-constant intensity with the same
    accumulation as :class:`HazardCurve` (cumulative sums at the knots plus
    a partial segment), bit-identical to the per-curve evaluation.

    Parameters
    ----------
    t:
        ``(m,)`` times (negative times clamp to survival 1).
    knot_times / knot_values:
        Shared knot grid and ``(n_rows, k)`` hazard-intensity rows.
    """
    tt = np.maximum(np.asarray(t, dtype=np.float64), 0.0)
    times = np.asarray(knot_times, dtype=np.float64)
    values = np.atleast_2d(np.asarray(knot_values, dtype=np.float64))
    widths = np.diff(np.concatenate(([0.0], times)))
    cum = np.cumsum(widths[None, :] * values, axis=1)
    idx = np.minimum(
        np.searchsorted(times, tt, side="left"), times.size - 1
    )
    prev_idx = np.maximum(idx - 1, 0)
    prev_t = np.where(idx > 0, times[prev_idx], 0.0)
    prev_cum = np.where(idx > 0, cum[:, prev_idx], 0.0)
    lam = values[:, idx]
    return np.exp(-(prev_cum + lam * (tt - prev_t)))
