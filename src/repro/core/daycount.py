"""Day-count conventions.

The paper's engine works directly in year fractions, so the default
convention is the identity (:attr:`DayCount.ACT_365F` over year-fraction
inputs).  The other conventions are provided for the bootstrap extension and
for users feeding calendar-derived day counts into the library.
"""

from __future__ import annotations

import enum

from repro.errors import ValidationError

__all__ = ["DayCount", "year_fraction"]


class DayCount(enum.Enum):
    """Supported day-count conventions.

    Members
    -------
    ACT_365F:
        Actual/365 Fixed — days / 365.
    ACT_360:
        Actual/360 — days / 360.
    THIRTY_360:
        30/360 bond basis approximation — treats every month as 30 days.
    """

    ACT_365F = "ACT/365F"
    ACT_360 = "ACT/360"
    THIRTY_360 = "30/360"

    @property
    def denominator(self) -> float:
        """Days-per-year divisor for the convention."""
        return {"ACT/365F": 365.0, "ACT/360": 360.0, "30/360": 360.0}[self.value]


def year_fraction(
    start_days: float,
    end_days: float,
    convention: DayCount = DayCount.ACT_365F,
) -> float:
    """Year fraction between two day offsets under a day-count convention.

    Parameters
    ----------
    start_days, end_days:
        Day offsets from an arbitrary epoch; ``end_days`` must be
        >= ``start_days``.
    convention:
        The day-count convention to apply.

    Returns
    -------
    float
        The accrual period in years.

    Examples
    --------
    >>> year_fraction(0, 365)
    1.0
    >>> year_fraction(0, 90, DayCount.ACT_360)
    0.25
    """
    if end_days < start_days:
        raise ValidationError(
            f"end_days ({end_days}) must be >= start_days ({start_days})"
        )
    days = float(end_days - start_days)
    if convention is DayCount.THIRTY_360:
        # 30/360 over raw day offsets: cap each month at 30 days by scaling
        # the actual count by 360/365.  This is the approximation appropriate
        # when no calendar dates are available, and reduces to days/360 for
        # periods already expressed in 30-day months.
        days = days * 360.0 / 365.0
    return days / convention.denominator
