"""Fixed-point pricing study (the second half of the paper's future work).

The paper's closing direction mentions "fixed-point arithmetic" alongside
single precision.  A fixed-point FPGA datapath differs from a floating-point
one in two ways this module models faithfully:

* every intermediate value is **quantised** to a two's-complement
  ``Qm.n`` format (:class:`FixedFormat`) — rounding to nearest, saturating
  at the range limits, exactly as a DSP48-based datapath behaves;
* transcendental functions are not available: ``exp`` becomes a **lookup
  table with linear interpolation** (:class:`TableExp`), the standard
  fixed-point idiom, whose table size is a new accuracy/BRAM trade-off.

:func:`fixedpoint_spreads` runs the full pricing pipeline under a chosen
format and table, and :func:`wordlength_sweep` maps spread error against
fractional word length — the design curve an implementer of the paper's
future work would need first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError

__all__ = [
    "FixedFormat",
    "TableExp",
    "fixedpoint_spreads",
    "FixedPointReport",
    "run_fixedpoint_study",
    "wordlength_sweep",
]


@dataclass(frozen=True)
class FixedFormat:
    """Signed two's-complement ``Qm.n`` fixed-point format.

    Parameters
    ----------
    int_bits:
        Integer bits ``m`` (excluding the sign bit).
    frac_bits:
        Fractional bits ``n``; the quantum is ``2**-n``.
    """

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0 or self.frac_bits < 1:
            raise ValidationError(
                f"need int_bits >= 0 and frac_bits >= 1, got Q{self.int_bits}."
                f"{self.frac_bits}"
            )

    @property
    def total_bits(self) -> int:
        """Word length including the sign bit."""
        return 1 + self.int_bits + self.frac_bits

    @property
    def quantum(self) -> float:
        """Smallest representable increment."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0**self.int_bits - self.quantum

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0**self.int_bits)

    def quantise(self, x: float | np.ndarray) -> float | np.ndarray:
        """Round to nearest representable, saturating at the range limits."""
        q = np.round(np.asarray(x, dtype=np.float64) / self.quantum) * self.quantum
        q = np.clip(q, self.min_value, self.max_value)
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(q)
        return q

    def describe(self) -> str:
        """Render as ``Qm.n (k bits)``."""
        return f"Q{self.int_bits}.{self.frac_bits} ({self.total_bits} bits)"


class TableExp:
    """``exp(-x)`` for ``x >= 0`` via LUT + linear interpolation.

    Parameters
    ----------
    table_bits:
        log2 of the table size.
    x_max:
        Domain upper bound; inputs beyond it clamp to ``exp(-x_max)``
        (survival/discount factors for extreme hazard are ~0 anyway).
    fmt:
        Output format applied to table entries and interpolated results.
    """

    def __init__(
        self, table_bits: int = 10, x_max: float = 8.0, fmt: FixedFormat | None = None
    ) -> None:
        if table_bits < 2:
            raise ValidationError(f"table_bits must be >= 2, got {table_bits}")
        if x_max <= 0:
            raise ValidationError(f"x_max must be > 0, got {x_max}")
        self.table_bits = table_bits
        self.x_max = x_max
        self.fmt = fmt if fmt is not None else FixedFormat(4, 27)
        n = 1 << table_bits
        self._xs = np.linspace(0.0, x_max, n)
        self._ys = self.fmt.quantise(np.exp(-self._xs))

    @property
    def table_bytes(self) -> int:
        """Storage footprint of the table."""
        word_bytes = -(-self.fmt.total_bits // 8)
        return (1 << self.table_bits) * word_bytes

    def __call__(self, x: float | np.ndarray) -> float | np.ndarray:
        """Evaluate ``exp(-x)`` with clamping and output quantisation."""
        xx = np.clip(np.asarray(x, dtype=np.float64), 0.0, self.x_max)
        y = self.fmt.quantise(np.interp(xx, self._xs, self._ys))
        if np.isscalar(x) or np.ndim(x) == 0:
            return float(y)
        return y


def fixedpoint_spreads(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    fmt: FixedFormat | None = None,
    exp_table: TableExp | None = None,
) -> np.ndarray:
    """Par spreads with every intermediate quantised to ``fmt``.

    The default ``Q4.27`` (32-bit word) gives the leg accumulators the
    integer headroom they need: the premium leg of a long-dated contract is
    the risky annuity (~years of coupons), which overflows a ``Q1.n``
    format — the classic fixed-point design pitfall this study surfaces.
    """
    if not options:
        raise ValidationError("portfolio must be non-empty")
    f = fmt if fmt is not None else FixedFormat(4, 27)
    ex = exp_table if exp_table is not None else TableExp(fmt=f)
    q = f.quantise

    out = np.empty(len(options), dtype=np.float64)
    for idx, option in enumerate(options):
        sched = build_schedule(option)
        premium = 0.0
        protection = 0.0
        accrual = 0.0
        s_prev = 1.0
        for t, dt in zip(sched.times, sched.accruals):
            lam = q(hazard_curve.integrated(float(t)))
            s = ex(lam)
            r = q(yield_curve.interpolate(float(t)))
            d = ex(q(r * float(t)))
            ds = q(s_prev - s)
            dtq = q(float(dt))
            premium = q(premium + q(q(d * s) * dtq))
            protection = q(protection + q(d * ds))
            accrual = q(accrual + q(q(q(d * ds) * dtq) * 0.5))
            s_prev = s
        protection = q(protection * q(option.loss_given_default))
        annuity = q(premium + accrual)
        if annuity <= 0.0:
            raise ValidationError(
                f"non-positive annuity under {f.describe()} for option {idx}"
            )
        out[idx] = BASIS_POINTS * protection / annuity
    return out


@dataclass(frozen=True)
class FixedPointReport:
    """Error statistics of fixed-point pricing vs the binary64 reference."""

    fmt: FixedFormat
    exp_table_bits: int
    n_options: int
    max_abs_error_bps: float
    mean_abs_error_bps: float

    def acceptable_for_quoting(self, tolerance_bps: float = 0.01) -> bool:
        """Whether the worst spread error stays under ``tolerance_bps``."""
        return self.max_abs_error_bps <= tolerance_bps

    def render(self) -> str:
        """Human-readable summary."""
        return (
            f"{self.fmt.describe()}, exp table 2^{self.exp_table_bits}: "
            f"max |err| {self.max_abs_error_bps:.3e} bps, "
            f"mean {self.mean_abs_error_bps:.3e} bps "
            f"over {self.n_options} options"
        )


def run_fixedpoint_study(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    fmt: FixedFormat | None = None,
    exp_table_bits: int = 12,
) -> FixedPointReport:
    """Compare one fixed-point configuration against binary64."""
    f = fmt if fmt is not None else FixedFormat(4, 27)
    table = TableExp(table_bits=exp_table_bits, fmt=f)
    reference = VectorCDSPricer(yield_curve, hazard_curve).spreads(options)
    fixed = fixedpoint_spreads(
        options, yield_curve, hazard_curve, fmt=f, exp_table=table
    )
    abs_err = np.abs(fixed - reference)
    return FixedPointReport(
        fmt=f,
        exp_table_bits=exp_table_bits,
        n_options=len(options),
        max_abs_error_bps=float(np.max(abs_err)),
        mean_abs_error_bps=float(np.mean(abs_err)),
    )


def wordlength_sweep(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    frac_bits: list[int],
    *,
    exp_table_bits: int = 12,
) -> list[FixedPointReport]:
    """Spread error as a function of fractional word length."""
    if not frac_bits:
        raise ValidationError("frac_bits must be non-empty")
    return [
        run_fixedpoint_study(
            options,
            yield_curve,
            hazard_curve,
            fmt=FixedFormat(4, n),
            exp_table_bits=exp_table_bits,
        )
        for n in frac_bits
    ]
