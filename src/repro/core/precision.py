"""Reduced-precision pricing study (the paper's "further work").

The paper closes with: "further exploration around reduced precision,
especially within the context of the future Xilinx Versal ACAP with AI
engines for accelerating single precision floating point and fixed-point
arithmetic, would be very interesting."  This module carries out the
single-precision half of that study in software:

* :func:`float32_spreads` — the full pricing pipeline executed in IEEE
  binary32, casting after every elementary step exactly as a
  single-precision datapath would;
* :class:`PrecisionReport` — spread-error statistics against the binary64
  reference over a portfolio;
* the speedup side is modelled by the ``precision`` knob of
  :class:`~repro.engines.stages.StageModels` (shorter adder/exp latencies,
  and doubled effective URAM port bandwidth because a 64-bit port delivers
  two binary32 table entries per cycle) and benchmarked in
  ``benchmarks/test_future_reduced_precision.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError

__all__ = ["float32_spreads", "PrecisionReport", "run_precision_study"]


def float32_spreads(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> np.ndarray:
    """Par spreads computed end-to-end in single precision.

    Every table value, intermediate product and accumulation is rounded to
    binary32, mirroring a datapath built from single-precision operators.
    Returns spreads in basis points (as float64 holding binary32 values).
    """
    if not options:
        raise ValidationError("portfolio must be non-empty")
    f32 = np.float32
    yc_t = yield_curve.times.astype(f32)
    yc_v = yield_curve.values.astype(f32)
    hc_t = hazard_curve.times.astype(f32)
    hc_v = hazard_curve.values.astype(f32)
    hz_widths = np.diff(np.concatenate(([f32(0.0)], hc_t))).astype(f32)
    hz_cum = np.cumsum((hz_widths * hc_v).astype(f32), dtype=f32)

    out = np.empty(len(options), dtype=np.float64)
    for idx, option in enumerate(options):
        sched = build_schedule(option)
        times = sched.times.astype(f32)
        accruals = sched.accruals.astype(f32)

        # Survival via the binary32 cumulative hazard.
        seg = np.minimum(
            np.searchsorted(hc_t, times, side="left"), len(hc_t) - 1
        )
        prev_t = np.where(seg > 0, hc_t[np.maximum(seg - 1, 0)], f32(0.0)).astype(f32)
        prev_c = np.where(seg > 0, hz_cum[np.maximum(seg - 1, 0)], f32(0.0)).astype(f32)
        lam = (prev_c + hc_v[seg] * (times - prev_t)).astype(f32)
        survival = np.exp(-lam, dtype=f32)

        # Discount via binary32 linear interpolation.
        rates = np.interp(times, yc_t, yc_v).astype(f32)
        discount = np.exp((-(rates * times)).astype(f32), dtype=f32)

        s_prev = np.concatenate(([f32(1.0)], survival[:-1])).astype(f32)
        d_s = (s_prev - survival).astype(f32)

        premium = f32(0.0)
        protection = f32(0.0)
        accrual = f32(0.0)
        half = f32(0.5)
        for i in range(len(times)):
            premium = f32(premium + f32(f32(discount[i] * survival[i]) * accruals[i]))
            protection = f32(protection + f32(discount[i] * d_s[i]))
            accrual = f32(
                accrual + f32(f32(f32(discount[i] * d_s[i]) * accruals[i]) * half)
            )
        protection = f32(protection * f32(option.loss_given_default))
        annuity = f32(premium + accrual)
        if annuity <= 0.0:
            raise ValidationError(
                f"non-positive annuity in float32 for option {idx}"
            )
        out[idx] = float(f32(f32(BASIS_POINTS) * protection / annuity))
    return out


@dataclass(frozen=True)
class PrecisionReport:
    """Error statistics of binary32 pricing against the binary64 reference.

    Attributes
    ----------
    n_options:
        Portfolio size.
    max_abs_error_bps / mean_abs_error_bps:
        Spread errors in basis points.
    max_rel_error:
        Largest relative spread error.
    reference_spread_bps:
        Mean reference spread (scale context for the errors).
    """

    n_options: int
    max_abs_error_bps: float
    mean_abs_error_bps: float
    max_rel_error: float
    reference_spread_bps: float

    def acceptable_for_quoting(self, tolerance_bps: float = 0.01) -> bool:
        """Whether the worst error stays under ``tolerance_bps``.

        CDS spreads are quoted to 1/100 bp at the very finest; errors below
        that are invisible to the market.
        """
        return self.max_abs_error_bps <= tolerance_bps

    def render(self) -> str:
        """Human-readable summary."""
        return (
            f"binary32 vs binary64 over {self.n_options} options: "
            f"max |err| {self.max_abs_error_bps:.3e} bps, "
            f"mean |err| {self.mean_abs_error_bps:.3e} bps, "
            f"max rel {self.max_rel_error:.3e} "
            f"(mean spread {self.reference_spread_bps:.1f} bps)"
        )


def run_precision_study(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> PrecisionReport:
    """Compare binary32 against binary64 pricing over a portfolio."""
    reference = VectorCDSPricer(yield_curve, hazard_curve).spreads(options)
    reduced = float32_spreads(options, yield_curve, hazard_curve)
    abs_err = np.abs(reduced - reference)
    rel_err = abs_err / np.abs(reference)
    return PrecisionReport(
        n_options=len(options),
        max_abs_error_bps=float(np.max(abs_err)),
        mean_abs_error_bps=float(np.mean(abs_err)),
        max_rel_error=float(np.max(rel_err)),
        reference_spread_bps=float(np.mean(reference)),
    )
