"""Scalar reference CDS pricer.

This module is the numerical ground truth of the repository: every FPGA
engine variant and the vectorised CPU pricer must reproduce these numbers
bit-for-bit (up to floating-point reassociation, which the tests bound).

The model follows Hull ("Options, Futures and Other Derivatives", the
reference the paper cites for the CDS mathematics) and the structure of the
Xilinx Vitis CDS engine (paper Fig. 1):

For each option, over its payment time points ``t_1 .. t_N`` (with
``t_0 = 0``, ``t_N = maturity``):

* **default probability** by ``t_i``: ``P(t_i) = 1 - S(t_i)`` with survival
  ``S(t) = exp(-Lambda(t))``, cumulative hazard accumulated from the hazard
  table;
* **payment leg** (premium PV per unit spread):
  ``sum_i D(t_i) * S(t_i) * delta_i``;
* **payoff leg** (protection PV):
  ``(1 - R) * sum_i D(t_i) * (S(t_{i-1}) - S(t_i))``;
* **accrual**: premium accrued but unpaid at default, approximated at half
  the period: ``sum_i D(t_i) * (S(t_{i-1}) - S(t_i)) * delta_i / 2``;
* **spread** in basis points:
  ``10_000 * payoff / (payment + accrual)``.

``D(t)`` is the discount factor from the interest-rate curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption, CDSResult, LegBreakdown
from repro.errors import ValidationError

__all__ = ["CDSPricer", "price_cds", "BASIS_POINTS"]

#: Conversion factor from a unit-notional fraction to basis points.
BASIS_POINTS = 10_000.0


@dataclass(frozen=True)
class CDSPricer:
    """Prices CDS options against a fixed pair of rate curves.

    The two curves are the engine's "constant data", loaded once and reused
    for every option in the batch (paper Section II.A).

    Parameters
    ----------
    yield_curve:
        Interest-rate term structure used for discounting.
    hazard_curve:
        Hazard-rate term structure used for survival probabilities.
    """

    yield_curve: YieldCurve
    hazard_curve: HazardCurve

    def price(self, option: CDSOption) -> CDSResult:
        """Price a single option, returning spread and leg breakdown."""
        schedule = build_schedule(option)
        d_prev = 1.0  # S(t_0) = 1
        premium = 0.0
        protection = 0.0
        accrual = 0.0
        survival_t = 1.0
        for t_i, delta_i in zip(schedule.times, schedule.accruals):
            survival_t = self.hazard_curve.survival(float(t_i))
            discount_t = self.yield_curve.discount(float(t_i))
            default_in_period = d_prev - survival_t
            premium += discount_t * survival_t * float(delta_i)
            protection += discount_t * default_in_period
            accrual += discount_t * default_in_period * float(delta_i) * 0.5
            d_prev = survival_t
        protection *= option.loss_given_default
        legs = LegBreakdown(
            premium_leg=premium,
            protection_leg=protection,
            accrual_leg=accrual,
            survival_at_maturity=survival_t,
        )
        annuity = legs.risky_annuity
        if annuity <= 0.0 or not math.isfinite(annuity):
            raise ValidationError(
                f"non-positive risky annuity {annuity!r} for option {option!r}; "
                "check the rate curves"
            )
        spread = BASIS_POINTS * protection / annuity
        return CDSResult(spread_bps=spread, legs=legs)

    def price_many(self, options: list[CDSOption]) -> list[CDSResult]:
        """Price a batch of options sequentially (reference semantics)."""
        return [self.price(o) for o in options]


def price_cds(
    option: CDSOption,
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> CDSResult:
    """Convenience wrapper: price one option against the given curves.

    Examples
    --------
    >>> from repro.core import CDSOption, YieldCurve, HazardCurve
    >>> yc = YieldCurve([1.0, 5.0], [0.02, 0.03])
    >>> hc = HazardCurve([1.0, 5.0], [0.01, 0.02])
    >>> r = price_cds(CDSOption(5.0, 4, 0.4), yc, hc)
    >>> 0 < r.spread_bps < 10_000
    True
    """
    return CDSPricer(yield_curve=yield_curve, hazard_curve=hazard_curve).price(option)
