"""Risk sensitivities by bump-and-reprice.

The engines of this package compute par spreads; a risk desk consumes
*sensitivities* of those values.  This module implements the standard
bump-and-reprice greeks for CDS books (the batch workload the paper's
introduction motivates: "batch processing of financial data on HPC
machines, for instance overnight"):

* **CS01** — PV change of a protection-buyer position for a one-basis-point
  parallel bump of the hazard curve's implied spread level (approximated by
  bumping hazard intensities by the equivalent amount);
* **IR01** — PV change for a one-basis-point parallel bump of the zero
  curve;
* **JTD** — jump-to-default: immediate loss if the reference entity
  defaults now;
* **Rec01** — PV change per 1% recovery-rate bump.

PVs are for a unit-notional contract paying a fixed ``contract_spread``:
``PV = protection_leg - contract_spread * risky_annuity`` (protection
buyer's view).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TypeVar

import numpy as np

from repro.core.curves import Curve, HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError

__all__ = [
    "CDSGreeks",
    "RiskEngine",
    "position_pv",
    "parallel_bump",
    "bucket_bump",
]

#: One basis point as a decimal.
ONE_BP = 1e-4

CurveT = TypeVar("CurveT", bound=Curve)


def parallel_bump(curve: CurveT, bump: float, *, floor: float | None = None) -> CurveT:
    """A copy of ``curve`` with every knot value shifted by ``bump``.

    Parameters
    ----------
    curve:
        Any :class:`~repro.core.curves.Curve` subtype; the result has the
        same type and knot times.
    bump:
        Additive shift applied to every knot value (decimal, not bps).
    floor:
        Optional lower clamp on the bumped values — hazard intensities,
        for instance, must stay non-negative under downward shocks.
    """
    values = np.asarray(curve.values) + bump
    if floor is not None:
        values = np.maximum(values, floor)
    return type(curve)(curve.times, values)


def bucket_bump(
    curve: CurveT,
    lo: float,
    hi: float,
    bump: float,
    *,
    floor: float | None = None,
) -> CurveT:
    """A copy of ``curve`` bumped only on knots with time in ``(lo, hi]``.

    This is the tenor-bucket bump behind CS01/IR01 ladders: summing the
    PV impact over a set of buckets that tile the curve recovers the
    parallel bump's impact (to first order).

    Parameters
    ----------
    curve:
        Any :class:`~repro.core.curves.Curve` subtype.
    lo / hi:
        Half-open bucket ``(lo, hi]`` in knot-time years; ``lo < hi``.
    bump:
        Additive shift applied inside the bucket (decimal).
    floor:
        Optional lower clamp on the bumped values.
    """
    if not lo < hi:
        raise ValidationError(f"bucket needs lo < hi, got ({lo}, {hi}]")
    times = np.asarray(curve.times)
    values = np.asarray(curve.values).copy()
    inside = (times > lo) & (times <= hi)
    values[inside] += bump
    if floor is not None:
        values = np.maximum(values, floor)
    return type(curve)(curve.times, values)


@dataclass(frozen=True)
class CDSGreeks:
    """Sensitivities for one position (unit notional, protection buyer).

    Attributes
    ----------
    pv:
        Mark-to-market value.
    cs01:
        PV change per +1 bp hazard-level bump (positive for a protection
        buyer: more credit risk makes owned protection dearer).
    ir01:
        PV change per +1 bp parallel zero-curve bump.
    jtd:
        Jump-to-default gain: ``LGD - pv`` (payout minus value given up).
    rec01:
        PV change per +1 percentage-point recovery bump (negative for a
        buyer: higher recovery cheapens protection).
    """

    pv: float
    cs01: float
    ir01: float
    jtd: float
    rec01: float


def position_pv(
    options: list[CDSOption],
    contract_spreads_bps: np.ndarray,
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> np.ndarray:
    """Mark-to-market of protection-buyer positions at fixed contract spreads.

    ``PV_i = protection_i - s_i * annuity_i`` with ``s_i`` the contracted
    running spread (decimal form of ``contract_spreads_bps``).
    """
    spreads = np.asarray(contract_spreads_bps, dtype=np.float64)
    if spreads.shape != (len(options),):
        raise ValidationError(
            f"need one contract spread per option: {spreads.shape} vs {len(options)}"
        )
    pricer = VectorCDSPricer(yield_curve=yield_curve, hazard_curve=hazard_curve)
    _, legs = pricer.price_portfolio_detailed(options)
    protection = np.array([l.protection_leg for l in legs])
    annuity = np.array([l.risky_annuity for l in legs])
    return protection - (spreads / BASIS_POINTS) * annuity


class RiskEngine:
    """Bump-and-reprice greeks over a portfolio.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Base market curves.
    hazard_bump:
        Parallel intensity bump used for CS01 (default: the intensity
        equivalent of 1 bp of spread at 40% recovery, i.e. 1bp / 0.6).
    rate_bump:
        Parallel zero-rate bump for IR01 (default 1 bp).
    """

    def __init__(
        self,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        hazard_bump: float = ONE_BP / 0.6,
        rate_bump: float = ONE_BP,
    ) -> None:
        if hazard_bump <= 0 or rate_bump <= 0:
            raise ValidationError("bumps must be > 0")
        self.yield_curve = yield_curve
        self.hazard_curve = hazard_curve
        self.hazard_bump = hazard_bump
        self.rate_bump = rate_bump

    # ------------------------------------------------------------------
    def bumped_hazard(self) -> HazardCurve:
        """Hazard curve with all intensities bumped in parallel."""
        return parallel_bump(self.hazard_curve, self.hazard_bump, floor=0.0)

    def bumped_yield(self) -> YieldCurve:
        """Zero curve with all rates bumped in parallel."""
        return parallel_bump(self.yield_curve, self.rate_bump)

    # ------------------------------------------------------------------
    def greeks(
        self,
        options: list[CDSOption],
        contract_spreads_bps: np.ndarray | None = None,
    ) -> list[CDSGreeks]:
        """Greeks for every position.

        ``contract_spreads_bps`` defaults to the current par spreads (so
        base PVs are ~0 and the greeks are pure sensitivities).
        """
        if not options:
            raise ValidationError("portfolio must be non-empty")
        base_pricer = VectorCDSPricer(self.yield_curve, self.hazard_curve)
        if contract_spreads_bps is None:
            contract_spreads_bps = base_pricer.spreads(options)
        contract_spreads_bps = np.asarray(contract_spreads_bps, dtype=np.float64)

        pv_base = position_pv(
            options, contract_spreads_bps, self.yield_curve, self.hazard_curve
        )
        pv_hz = position_pv(
            options, contract_spreads_bps, self.yield_curve, self.bumped_hazard()
        )
        pv_ir = position_pv(
            options, contract_spreads_bps, self.bumped_yield(), self.hazard_curve
        )
        # Recovery bump: rebuild options with recovery + 1%.
        bumped_opts = [
            CDSOption(
                maturity=o.maturity,
                frequency=o.frequency,
                recovery_rate=min(o.recovery_rate + 0.01, 0.999),
            )
            for o in options
        ]
        pv_rec = position_pv(
            bumped_opts, contract_spreads_bps, self.yield_curve, self.hazard_curve
        )

        out = []
        for i, o in enumerate(options):
            out.append(
                CDSGreeks(
                    pv=float(pv_base[i]),
                    cs01=float(pv_hz[i] - pv_base[i]),
                    ir01=float(pv_ir[i] - pv_base[i]),
                    jtd=float(o.loss_given_default - pv_base[i]),
                    rec01=float(pv_rec[i] - pv_base[i]),
                )
            )
        return out

    def portfolio_totals(
        self,
        options: list[CDSOption],
        contract_spreads_bps: np.ndarray | None = None,
        notionals: np.ndarray | None = None,
    ) -> CDSGreeks:
        """Notional-weighted aggregate greeks for the whole book."""
        greeks = self.greeks(options, contract_spreads_bps)
        w = (
            np.ones(len(options))
            if notionals is None
            else np.asarray(notionals, dtype=np.float64)
        )
        if w.shape != (len(options),):
            raise ValidationError("need one notional per option")
        return CDSGreeks(
            pv=float(sum(w[i] * g.pv for i, g in enumerate(greeks))),
            cs01=float(sum(w[i] * g.cs01 for i, g in enumerate(greeks))),
            ir01=float(sum(w[i] * g.ir01 for i, g in enumerate(greeks))),
            jtd=float(sum(w[i] * g.jtd for i, g in enumerate(greeks))),
            rec01=float(sum(w[i] * g.rec01 for i, g in enumerate(greeks))),
        )
