"""Premium payment schedules.

The first step of the engine for each option (paper Fig. 1) is to "determine
a set of distinct time points" extending to the maturity date.  These are the
premium payment dates implied by the option's payment frequency, with a final
(possibly short) stub ending exactly at maturity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.types import CDSOption
from repro.errors import ScheduleError

__all__ = ["PaymentSchedule", "build_schedule", "schedule_lengths"]

#: Tolerance used when deciding whether the final regular payment date
#: coincides with maturity (avoids generating a zero-length stub period).
_STUB_EPS = 1e-9


@dataclass(frozen=True)
class PaymentSchedule:
    """The distinct time points of one option.

    Attributes
    ----------
    times:
        Payment times ``t_1 < t_2 < ... < t_N = maturity`` (years); read-only
        float64 array.  ``t_0 = 0`` is implicit.
    accruals:
        Year fractions ``delta_i = t_i - t_{i-1}``, same length as ``times``.
    """

    times: np.ndarray
    accruals: np.ndarray

    def __post_init__(self) -> None:
        self.times.flags.writeable = False
        self.accruals.flags.writeable = False

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def maturity(self) -> float:
        """The final time point (equals the option maturity)."""
        return float(self.times[-1])

    def with_time_zero(self) -> np.ndarray:
        """Times prefixed with the implicit ``t_0 = 0`` (length N+1)."""
        return np.concatenate(([0.0], self.times))


def build_schedule(option: CDSOption) -> PaymentSchedule:
    """Generate the premium payment schedule for ``option``.

    Payments fall at multiples of ``1 / frequency`` up to maturity; if the
    maturity is not an exact multiple, a short final stub period ends at
    maturity (this is the "distinct time points extend to the maturity date"
    behaviour of paper Fig. 1).

    Examples
    --------
    >>> from repro.core.types import CDSOption
    >>> s = build_schedule(CDSOption(maturity=1.0, frequency=4, recovery_rate=0.4))
    >>> [float(t) for t in s.times]
    [0.25, 0.5, 0.75, 1.0]
    """
    step = 1.0 / float(option.frequency)
    n_full = int(math.floor(option.maturity / step + _STUB_EPS))
    times = [step * (i + 1) for i in range(n_full)]
    if not times or option.maturity - times[-1] > _STUB_EPS:
        times.append(option.maturity)
    else:
        # Snap the final regular date exactly onto maturity so downstream
        # survival/discount evaluations at maturity are exact.
        times[-1] = option.maturity
    arr = np.asarray(times, dtype=np.float64)
    if arr.size == 0 or not np.all(np.diff(arr) > 0.0):
        raise ScheduleError(f"degenerate schedule for option {option!r}: {arr!r}")
    accruals = np.diff(np.concatenate(([0.0], arr)))
    return PaymentSchedule(times=arr, accruals=accruals)


def schedule_lengths(options: list[CDSOption]) -> np.ndarray:
    """Number of time points per option, vectorised helper for sizing."""
    return np.asarray([len(build_schedule(o)) for o in options], dtype=np.int64)
