"""Value types shared across the pricing library and the FPGA engines.

The types mirror the data the paper's engine consumes:

* two constant term structures (interest rates and hazard rates), each a list
  of ``(time, value)`` pairs — :class:`RatePoint`;
* a vector of options, each ``(maturity, payment frequency, recovery rate)``
  — :class:`CDSOption`;
* one spread result per option — :class:`CDSResult`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ValidationError

__all__ = ["RatePoint", "CDSOption", "LegBreakdown", "CDSResult"]


@dataclass(frozen=True, slots=True)
class RatePoint:
    """One entry of a rate term structure.

    Parameters
    ----------
    time:
        Point in time as a fraction of a year (must be positive; entries in a
        curve must be strictly increasing).
    value:
        The interest or hazard value applying at (or up to) ``time``.
    """

    time: float
    value: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or not math.isfinite(self.value):
            raise ValidationError(f"RatePoint must be finite, got {self!r}")
        if self.time <= 0.0:
            raise ValidationError(f"RatePoint.time must be > 0, got {self.time}")


@dataclass(frozen=True, slots=True)
class CDSOption:
    """A single CDS contract to be priced.

    The three fields are exactly the three per-option inputs of the paper's
    engine (Section II.A).

    Parameters
    ----------
    maturity:
        Time to maturity in years (the end of the CDS protection).
    frequency:
        Number of premium payments per year (e.g. 4 for quarterly).
    recovery_rate:
        Fraction of the notional recovered on default, in ``[0, 1)``.
        The protection payout on default is ``1 - recovery_rate``.
    """

    maturity: float
    frequency: int
    recovery_rate: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.maturity) or self.maturity <= 0.0:
            raise ValidationError(f"maturity must be finite and > 0, got {self.maturity}")
        if int(self.frequency) != self.frequency or self.frequency < 1:
            raise ValidationError(f"frequency must be a positive integer, got {self.frequency}")
        if not 0.0 <= self.recovery_rate < 1.0:
            raise ValidationError(
                f"recovery_rate must lie in [0, 1), got {self.recovery_rate}"
            )

    @property
    def n_payments(self) -> int:
        """Number of premium payment dates up to and including maturity."""
        return int(math.ceil(self.maturity * self.frequency - 1e-12))

    @property
    def loss_given_default(self) -> float:
        """Fraction of notional lost on default: ``1 - recovery_rate``."""
        return 1.0 - self.recovery_rate


@dataclass(frozen=True, slots=True)
class LegBreakdown:
    """Present values of the individual CDS legs (per unit notional).

    These are the four per-option terms the paper's flowchart computes before
    combining them into the spread: the premium (payment) leg annuity, the
    protection (payoff) leg, and the accrued-premium-on-default term.
    """

    premium_leg: float
    protection_leg: float
    accrual_leg: float
    survival_at_maturity: float

    @property
    def risky_annuity(self) -> float:
        """Denominator of the par-spread formula: premium + accrual PV."""
        return self.premium_leg + self.accrual_leg


@dataclass(frozen=True, slots=True)
class CDSResult:
    """Spread result for one option.

    Attributes
    ----------
    spread_bps:
        The par spread in basis points — the annual premium (per unit
        notional, times 10 000) that makes the contract worth zero at
        inception.  Dividing by 100 gives the percentage quoted in the paper.
    legs:
        Optional per-leg PV breakdown (populated by the reference pricer;
        engines may omit it).
    """

    spread_bps: float
    legs: LegBreakdown | None = field(default=None, compare=False)

    @property
    def spread_pct(self) -> float:
        """Spread as a percentage of the loan (paper: bps / 100)."""
        return self.spread_bps / 100.0
