"""Validation helpers shared by curves, schedules and pricers."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import CurveError, ValidationError

__all__ = [
    "as_float_array",
    "check_strictly_increasing",
    "check_finite",
    "check_positive",
    "check_probability",
]


def as_float_array(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert ``values`` to a 1-D float64 array, validating shape.

    Raises
    ------
    ValidationError
        If the input is empty or not one-dimensional.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must be non-empty")
    return arr


def check_finite(arr: np.ndarray, name: str) -> None:
    """Raise :class:`CurveError` if ``arr`` contains NaN or infinity."""
    if not np.all(np.isfinite(arr)):
        bad = int(np.flatnonzero(~np.isfinite(arr))[0])
        raise CurveError(f"{name} contains a non-finite value at index {bad}")


def check_strictly_increasing(arr: np.ndarray, name: str) -> None:
    """Raise :class:`CurveError` unless ``arr`` is strictly increasing."""
    if arr.size > 1 and not np.all(np.diff(arr) > 0.0):
        bad = int(np.flatnonzero(np.diff(arr) <= 0.0)[0])
        raise CurveError(
            f"{name} must be strictly increasing; violation between "
            f"indices {bad} and {bad + 1} ({arr[bad]!r} -> {arr[bad + 1]!r})"
        )


def check_positive(arr: np.ndarray, name: str, *, strict: bool = True) -> None:
    """Raise :class:`CurveError` unless all elements are positive.

    With ``strict=False`` zero values are allowed.
    """
    limit_ok = np.all(arr > 0.0) if strict else np.all(arr >= 0.0)
    if not limit_ok:
        cmp = arr <= 0.0 if strict else arr < 0.0
        bad = int(np.flatnonzero(cmp)[0])
        op = ">" if strict else ">="
        raise CurveError(f"{name} must be {op} 0; value {arr[bad]!r} at index {bad}")


def check_probability(value: float, name: str) -> None:
    """Raise :class:`ValidationError` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must lie in [0, 1], got {value!r}")
