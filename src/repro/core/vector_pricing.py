"""NumPy-vectorised batch CDS pricer.

This is the software-optimised counterpart of the scalar reference pricer in
:mod:`repro.core.pricing`: it prices an entire option portfolio with array
operations and no per-option Python loop over time points.  It backs the
"bespoke version of the engine in C++ with OpenMP" CPU baseline of the paper
(Section II.B) — the vectorisation plays the role of the compiler's ``-O3``
inner-loop optimisation, and :mod:`repro.cpu.engine` adds multiprocessing for
the multi-core rows.

The implementation follows the guide idiom of replacing Python loops with
masked 2-D array computations: options are laid out along axis 0 and their
(ragged) payment schedules along axis 1, padded to the longest schedule and
masked.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption, CDSResult, LegBreakdown
from repro.errors import ValidationError

__all__ = [
    "VectorCDSPricer",
    "price_portfolio",
    "portfolio_arrays",
    "price_packed",
]


def portfolio_arrays(
    options: list[CDSOption],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack a portfolio's schedules into padded 2-D arrays.

    Returns
    -------
    times:
        ``(n_options, max_len)`` payment times, padded with the final time of
        each row (padding values are masked out of all reductions).
    accruals:
        Same shape; year fractions, zero in padded slots.
    mask:
        Boolean validity mask, same shape.
    recovery:
        ``(n_options,)`` recovery rates.
    """
    if not options:
        raise ValidationError("portfolio must contain at least one option")
    schedules = [build_schedule(o) for o in options]
    max_len = max(len(s) for s in schedules)
    n = len(options)
    times = np.empty((n, max_len), dtype=np.float64)
    accruals = np.zeros((n, max_len), dtype=np.float64)
    mask = np.zeros((n, max_len), dtype=bool)
    for row, sched in enumerate(schedules):
        k = len(sched)
        times[row, :k] = sched.times
        times[row, k:] = sched.times[-1]  # benign padding value
        accruals[row, :k] = sched.accruals
        mask[row, :k] = True
    recovery = np.asarray([o.recovery_rate for o in options], dtype=np.float64)
    return times, accruals, mask, recovery


@dataclass(frozen=True)
class VectorCDSPricer:
    """Vectorised portfolio pricer sharing the reference model's semantics.

    Parameters
    ----------
    yield_curve:
        Interest-rate term structure used for discounting.
    hazard_curve:
        Hazard-rate term structure used for survival probabilities.
    """

    yield_curve: YieldCurve
    hazard_curve: HazardCurve

    def price_portfolio(self, options: list[CDSOption]) -> list[CDSResult]:
        """Price every option in ``options``; order is preserved."""
        spreads, legs = self.price_portfolio_detailed(options)
        return [
            CDSResult(spread_bps=float(s), legs=lb) for s, lb in zip(spreads, legs)
        ]

    def spreads(self, options: list[CDSOption]) -> np.ndarray:
        """Par spreads in basis points as a float64 array (fast path)."""
        spreads, _ = self._compute(options, want_legs=False)
        return spreads

    def price_portfolio_detailed(
        self, options: list[CDSOption]
    ) -> tuple[np.ndarray, list[LegBreakdown]]:
        """Spreads plus a per-option leg breakdown."""
        spreads, leg_arrays = self._compute(options, want_legs=True)
        premium, protection, accrual, surv = leg_arrays
        legs = [
            LegBreakdown(
                premium_leg=float(premium[i]),
                protection_leg=float(protection[i]),
                accrual_leg=float(accrual[i]),
                survival_at_maturity=float(surv[i]),
            )
            for i in range(len(options))
        ]
        return spreads, legs

    # ------------------------------------------------------------------
    def _compute(
        self, options: list[CDSOption], *, want_legs: bool
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
        times, accruals, mask, recovery = portfolio_arrays(options)
        return price_packed(
            times,
            accruals,
            mask,
            recovery,
            self.yield_curve,
            self.hazard_curve,
            want_legs=want_legs,
        )


def price_packed(
    times: np.ndarray,
    accruals: np.ndarray,
    mask: np.ndarray,
    recovery: np.ndarray,
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    want_legs: bool = True,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
    """Price a pre-packed portfolio (see :func:`portfolio_arrays`).

    The packing depends only on the contracts, not on the market state, so
    callers repricing one portfolio under many curve scenarios (the risk
    subsystem's bump-and-reprice grid) pack once and call this per
    scenario.

    Parameters
    ----------
    times / accruals / mask / recovery:
        Arrays as returned by :func:`portfolio_arrays`.  ``recovery`` may
        be scenario-shifted relative to the contracts' own rates.
    yield_curve / hazard_curve:
        The market state to price under.
    want_legs:
        When false, skip the leg breakdown and return ``(spreads, None)``.

    Returns
    -------
    tuple
        ``(spreads_bps, legs)`` with ``legs`` either ``None`` or the
        ``(premium, protection, accrual, survival_at_maturity)`` arrays.
    """
    flat = times.reshape(-1)
    survival = np.asarray(hazard_curve.survival(flat)).reshape(times.shape)
    discount = np.asarray(yield_curve.discount(flat)).reshape(times.shape)

    # S(t_{i-1}) with S(t_0) = 1 in the first column.
    surv_prev = np.empty_like(survival)
    surv_prev[:, 0] = 1.0
    surv_prev[:, 1:] = survival[:, :-1]

    default_in_period = np.where(mask, surv_prev - survival, 0.0)
    masked_acc = np.where(mask, accruals, 0.0)

    premium = np.einsum("ij,ij,ij->i", discount, np.where(mask, survival, 0.0), masked_acc)
    protection_raw = np.einsum("ij,ij->i", discount, default_in_period)
    accrual = 0.5 * np.einsum("ij,ij,ij->i", discount, default_in_period, masked_acc)
    protection = (1.0 - recovery) * protection_raw

    annuity = premium + accrual
    if np.any(annuity <= 0.0) or not np.all(np.isfinite(annuity)):
        bad = int(np.flatnonzero((annuity <= 0.0) | ~np.isfinite(annuity))[0])
        raise ValidationError(
            f"non-positive risky annuity for option index {bad}: {annuity[bad]!r}"
        )
    spreads = BASIS_POINTS * protection / annuity

    if not want_legs:
        return spreads, None
    # Survival at maturity = last *valid* column of each row.
    last_idx = mask.sum(axis=1) - 1
    surv_mat = survival[np.arange(times.shape[0]), last_idx]
    return spreads, (premium, protection, accrual, surv_mat)


def price_portfolio(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> np.ndarray:
    """Convenience wrapper: par spreads (bps) for a portfolio.

    Examples
    --------
    >>> from repro.core import CDSOption, YieldCurve, HazardCurve
    >>> yc = YieldCurve([1.0, 5.0], [0.02, 0.03])
    >>> hc = HazardCurve([1.0, 5.0], [0.01, 0.02])
    >>> opts = [CDSOption(2.0, 4, 0.4), CDSOption(5.0, 2, 0.25)]
    >>> price_portfolio(opts, yc, hc).shape
    (2,)
    """
    return VectorCDSPricer(yield_curve, hazard_curve).spreads(options)
