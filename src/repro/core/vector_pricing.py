"""NumPy-vectorised batch CDS pricer.

This is the software-optimised counterpart of the scalar reference pricer in
:mod:`repro.core.pricing`: it prices an entire option portfolio with array
operations and no per-option Python loop over time points.  It backs the
"bespoke version of the engine in C++ with OpenMP" CPU baseline of the paper
(Section II.B) — the vectorisation plays the role of the compiler's ``-O3``
inner-loop optimisation, and :mod:`repro.cpu.engine` adds multiprocessing for
the multi-core rows.

The implementation follows the guide idiom of replacing Python loops with
masked 2-D array computations: options are laid out along axis 0 and their
(ragged) payment schedules along axis 1, padded to the longest schedule and
masked.

Two batch depths are exposed:

* :func:`price_packed` — one market state, the whole portfolio.  Used by
  :class:`VectorCDSPricer` and by per-scenario revaluation loops.
* :func:`price_packed_many` — many market states at once: the scenario
  axis of a risk grid becomes a leading array dimension, the curves are
  evaluated for every scenario in one vectorised pass
  (:func:`~repro.core.curves.survival_many` /
  :func:`~repro.core.curves.discount_factors_many`), and the leg math runs
  on a single ``(n_scenarios * n_options, max_len)`` layout — the same
  einsum calls as the single-state kernel, just on a taller portfolio.
  Results are **bit-identical** to calling :func:`price_packed` once per
  scenario; a ``chunk_size`` knob bounds peak memory on large grids.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.core.curves import (
    HazardCurve,
    YieldCurve,
    discount_factors_many,
    survival_many,
)
from repro.core.pricing import BASIS_POINTS
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption, CDSResult, LegBreakdown
from repro.deprecation import deprecated_call
from repro.errors import ValidationError

__all__ = [
    "VectorCDSPricer",
    "PackedPortfolio",
    "price_portfolio",
    "portfolio_arrays",
    "price_packed",
    "price_packed_book",
    "price_packed_many",
    "shifted_recovery",
    "shifted_recovery_row",
    "auto_chunk_size",
    "get_kernel_profile_hook",
    "set_kernel_profile_hook",
    "CHUNK_TARGET_BYTES",
    "RECOVERY_CAP",
]

#: Process-wide kernel profile hook (``None`` = profiling off).  When
#: set, :func:`price_packed_many` calls ``hook.on_call()`` once per entry
#: and ``hook.on_chunk(n_rows, n_cells, wall_s)`` with the measured host
#: wall-time of every internal chunk.  The unset path costs one ``is not
#: None`` check per chunk, so the kernel's numbers and its performance
#: are untouched by default.  See
#: :class:`repro.telemetry.profile.KernelProfiler` for the standard
#: consumer.
_PROFILE_HOOK = None


def get_kernel_profile_hook():
    """The currently-installed kernel profile hook (``None`` when off)."""
    return _PROFILE_HOOK


def set_kernel_profile_hook(hook) -> None:
    """Install (or, with ``None``, remove) the kernel profile hook.

    The hook needs ``on_call()`` and ``on_chunk(n_rows, n_cells,
    wall_s)`` methods; it is process-wide, so installers should save and
    restore the previous hook (the profiler context manager does).
    """
    global _PROFILE_HOOK
    _PROFILE_HOOK = hook

#: Upper clamp on scenario-shifted recovery rates.  Every path applying
#: an additive recovery shift — the batched kernel, the per-scenario
#: revaluation loop, the session's tensor decomposition — must clamp to
#: ``[0, RECOVERY_CAP]`` through :func:`shifted_recovery` /
#: :func:`shifted_recovery_row`, or the paths drift apart and break the
#: batched == looped bit-identity pin.
RECOVERY_CAP = 0.999


def portfolio_arrays(
    options: list[CDSOption],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Pack a portfolio's schedules into padded 2-D arrays.

    Returns
    -------
    times:
        ``(n_options, max_len)`` payment times, padded with the final time
        of each row.  The padding is *benign by construction*: repeating
        the final time with a zero accrual makes every padded term of the
        pricing reductions exactly ``+0.0`` (equal consecutive times give
        zero default probability), which the kernels rely on instead of
        masking — :class:`PackedPortfolio` validates the invariant.
    accruals:
        Same shape; year fractions, zero in padded slots.
    mask:
        Boolean validity mask, same shape.
    recovery:
        ``(n_options,)`` recovery rates.
    """
    if not options:
        raise ValidationError("portfolio must contain at least one option")
    schedules = [build_schedule(o) for o in options]
    max_len = max(len(s) for s in schedules)
    n = len(options)
    times = np.empty((n, max_len), dtype=np.float64)
    accruals = np.zeros((n, max_len), dtype=np.float64)
    mask = np.zeros((n, max_len), dtype=bool)
    for row, sched in enumerate(schedules):
        k = len(sched)
        times[row, :k] = sched.times
        times[row, k:] = sched.times[-1]  # benign padding value
        accruals[row, :k] = sched.accruals
        mask[row, :k] = True
    recovery = np.asarray([o.recovery_rate for o in options], dtype=np.float64)
    return times, accruals, mask, recovery


@dataclass(frozen=True)
class PackedPortfolio:
    """A packed portfolio plus the state-independent kernel intermediates.

    The padded arrays of :func:`portfolio_arrays` depend only on the
    contracts, never on the market state, and so do several intermediates
    the pricing kernel needs every call (the flattened time grid, each
    row's last valid column).  Packing them once lets a revaluation
    engine reprice thousands of scenarios without re-deriving them per
    scenario.

    Attributes
    ----------
    times / accruals / mask / recovery:
        The :func:`portfolio_arrays` layout.
    flat_times:
        ``times`` flattened to ``(n_options * max_len,)`` — the curve
        evaluation grid.
    last_idx:
        ``(n_options,)`` index of each row's last valid column (for
        survival-at-maturity gathers).
    unique_times / unique_inverse:
        ``np.unique(flat_times, return_inverse=True)``, computed lazily
        on first access (only the scenario kernel needs it): payment
        grids overlap heavily across a book's contracts (quarterly and
        semi-annual schedules share their dates), so curve evaluation
        collapses to the unique times — typically tens of times fewer —
        and scatters back by ``unique_inverse``.  Values are identical
        bit for bit; only redundant work disappears.
    """

    times: np.ndarray
    accruals: np.ndarray
    mask: np.ndarray
    recovery: np.ndarray
    flat_times: np.ndarray = field(init=False)
    last_idx: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.times.ndim != 2 or self.times.shape != self.mask.shape:
            raise ValidationError(
                "times and mask must be 2-D arrays of equal shape, got "
                f"{self.times.shape} and {self.mask.shape}"
            )
        object.__setattr__(self, "flat_times", self.times.reshape(-1))
        last_idx = self.mask.sum(axis=1) - 1
        object.__setattr__(self, "last_idx", last_idx)
        # The mask-free kernels require the benign-padding invariant of
        # :func:`portfolio_arrays`: padded slots repeat the row's final
        # valid time and carry zero accrual (so every padded reduction
        # term is exactly +0.0).  Reject other paddings loudly instead
        # of pricing them wrong silently.
        if np.any(last_idx < 0):
            raise ValidationError("every row needs at least one valid column")
        final_times = self.times[np.arange(self.times.shape[0]), last_idx]
        if not np.all(
            self.mask | (self.times == final_times[:, None])
        ) or np.any(self.accruals[~self.mask] != 0.0):
            raise ValidationError(
                "padded slots must repeat the row's final payment time "
                "with zero accrual (the portfolio_arrays layout)"
            )

    @cached_property
    def _unique_pair(self) -> tuple[np.ndarray, np.ndarray]:
        unique, inverse = np.unique(self.flat_times, return_inverse=True)
        return unique, inverse.reshape(-1)

    @property
    def unique_times(self) -> np.ndarray:
        """Sorted distinct payment times (lazy; see class docstring)."""
        return self._unique_pair[0]

    @property
    def unique_inverse(self) -> np.ndarray:
        """Scatter index from ``unique_times`` back to ``flat_times``."""
        return self._unique_pair[1]

    @classmethod
    def pack(cls, options: list[CDSOption]) -> "PackedPortfolio":
        """Pack ``options`` via :func:`portfolio_arrays`."""
        return cls(*portfolio_arrays(options))

    @property
    def n_options(self) -> int:
        """Number of packed contracts."""
        return int(self.times.shape[0])

    @property
    def max_len(self) -> int:
        """Padded schedule length."""
        return int(self.times.shape[1])


@dataclass(frozen=True)
class VectorCDSPricer:
    """Vectorised portfolio pricer sharing the reference model's semantics.

    Parameters
    ----------
    yield_curve:
        Interest-rate term structure used for discounting.
    hazard_curve:
        Hazard-rate term structure used for survival probabilities.
    """

    yield_curve: YieldCurve
    hazard_curve: HazardCurve

    def price_portfolio(self, options: list[CDSOption]) -> list[CDSResult]:
        """Price every option in ``options``; order is preserved.

        .. deprecated:: 1.5
            Open a pricing session instead
            (``repro.api.open_session("vectorized", options)``): the
            session's :class:`~repro.api.PriceResult` surfaces replace
            the per-option :class:`CDSResult` list.  Bit-identical; warns
            once per process.
        """
        deprecated_call(
            "repro.core.vector_pricing.VectorCDSPricer.price_portfolio",
            "VectorCDSPricer.price_portfolio() is deprecated; use "
            "repro.api.open_session('vectorized', options)."
            "price_state(yc, hc, want_legs=True) instead",
        )
        spreads, legs = self.price_portfolio_detailed(options)
        return [
            CDSResult(spread_bps=float(s), legs=lb) for s, lb in zip(spreads, legs)
        ]

    def spreads(self, options: list[CDSOption]) -> np.ndarray:
        """Par spreads in basis points as a float64 array (fast path)."""
        spreads, _ = self._compute(options, want_legs=False)
        return spreads

    def price_portfolio_detailed(
        self, options: list[CDSOption]
    ) -> tuple[np.ndarray, list[LegBreakdown]]:
        """Spreads plus a per-option leg breakdown."""
        spreads, leg_arrays = self._compute(options, want_legs=True)
        premium, protection, accrual, surv = leg_arrays
        legs = [
            LegBreakdown(
                premium_leg=float(premium[i]),
                protection_leg=float(protection[i]),
                accrual_leg=float(accrual[i]),
                survival_at_maturity=float(surv[i]),
            )
            for i in range(len(options))
        ]
        return spreads, legs

    # ------------------------------------------------------------------
    def _compute(
        self, options: list[CDSOption], *, want_legs: bool
    ) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
        return price_packed_book(
            PackedPortfolio.pack(options),
            self.yield_curve,
            self.hazard_curve,
            want_legs=want_legs,
        )


def _spreads_and_legs(
    discount: np.ndarray,
    survival: np.ndarray,
    masked_accruals: np.ndarray,
    recovery: np.ndarray,
    last_idx: np.ndarray,
    *,
    want_legs: bool,
    row_name: Callable[[int], str] | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
    """Leg math on pre-evaluated curve tables (one row per contract-state).

    Every argument is laid out as ``(rows, max_len)`` (or ``(rows,)``) —
    a single-state portfolio passes its ``n_options`` rows, the scenario
    kernel passes ``n_scenarios * n_options`` rows.  Both therefore run
    the *same* einsum reductions over the same contiguous axis, which is
    what makes the batched path bit-identical to the looped one.

    No validity mask is needed: :func:`portfolio_arrays` pads each row
    with its final payment time and zero accruals, so every padded term
    below is exactly ``+0.0`` — the accruals zero the premium and accrual
    sums, and equal padded times make consecutive survivals cancel to
    zero default probability.
    """
    # Default probability per period: S(t_{i-1}) - S(t_i), with
    # S(t_0) = 1 in the first column.  Padded columns repeat the final
    # time, so their difference is exactly zero.
    default_in_period = np.empty_like(survival)
    np.subtract(1.0, survival[:, 0], out=default_in_period[:, 0])
    np.subtract(survival[:, :-1], survival[:, 1:], out=default_in_period[:, 1:])

    premium = np.einsum("ij,ij,ij->i", discount, survival, masked_accruals)
    protection_raw = np.einsum("ij,ij->i", discount, default_in_period)
    accrual = 0.5 * np.einsum(
        "ij,ij,ij->i", discount, default_in_period, masked_accruals
    )
    protection = (1.0 - recovery) * protection_raw

    annuity = premium + accrual
    if np.any(annuity <= 0.0) or not np.all(np.isfinite(annuity)):
        bad = int(np.flatnonzero((annuity <= 0.0) | ~np.isfinite(annuity))[0])
        # The batched kernel's rows are scenario-major; let it decode the
        # flat row into (scenario, option) for the message.
        label = row_name(bad) if row_name else f"option index {bad}"
        raise ValidationError(
            f"non-positive risky annuity for {label}: {annuity[bad]!r}"
        )
    spreads = BASIS_POINTS * protection / annuity

    if not want_legs:
        return spreads, None
    # Survival at maturity = last *valid* column of each row.
    surv_mat = survival[np.arange(survival.shape[0]), last_idx]
    return spreads, (premium, protection, accrual, surv_mat)


def price_packed_book(
    packed: PackedPortfolio,
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    recovery: np.ndarray | None = None,
    want_legs: bool = True,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
    """Price a :class:`PackedPortfolio` under one market state.

    The pre-packed variant of :func:`price_packed`: the state-independent
    intermediates are read off ``packed`` instead of being re-derived, so
    per-state callers (revaluation loops) pay only the curve evaluation
    and the leg reductions.

    Parameters
    ----------
    packed:
        The packed book.
    yield_curve / hazard_curve:
        The market state to price under.
    recovery:
        Optional override of the packed recovery rates (e.g. a
        scenario-shifted vector); defaults to ``packed.recovery``.
    want_legs:
        When false, skip the leg breakdown and return ``(spreads, None)``.
    """
    rec = packed.recovery if recovery is None else recovery
    survival = np.asarray(hazard_curve.survival(packed.flat_times)).reshape(
        packed.times.shape
    )
    discount = np.asarray(yield_curve.discount(packed.flat_times)).reshape(
        packed.times.shape
    )
    return _spreads_and_legs(
        discount,
        survival,
        packed.accruals,
        rec,
        packed.last_idx,
        want_legs=want_legs,
    )


def price_packed(
    times: np.ndarray,
    accruals: np.ndarray,
    mask: np.ndarray,
    recovery: np.ndarray,
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    want_legs: bool = True,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
    """Price a pre-packed portfolio (see :func:`portfolio_arrays`).

    .. deprecated:: 1.5
        This raw-array entry point predates the unified pricing API;
        open a session instead (``repro.api.open_session("vectorized",
        options)``) or call :func:`price_packed_book` on a
        :class:`PackedPortfolio`.  The shim stays bit-identical and
        warns once per process.

    The packing depends only on the contracts, not on the market state, so
    callers repricing one portfolio under many curve scenarios (the risk
    subsystem's bump-and-reprice grid) pack once and call this per
    scenario — or, better, hand the whole scenario tensor to
    :func:`price_packed_many` in one call.

    Parameters
    ----------
    times / accruals / mask / recovery:
        Arrays in the :func:`portfolio_arrays` layout.  The padding must
        be *benign* — padded slots repeat the row's final payment time
        with zero accrual — because the kernel relies on that invariant
        instead of masking; other paddings raise ``ValidationError``.
        ``recovery`` may be scenario-shifted relative to the contracts'
        own rates.
    yield_curve / hazard_curve:
        The market state to price under.
    want_legs:
        When false, skip the leg breakdown and return ``(spreads, None)``.

    Returns
    -------
    tuple
        ``(spreads_bps, legs)`` with ``legs`` either ``None`` or the
        ``(premium, protection, accrual, survival_at_maturity)`` arrays.
    """
    deprecated_call(
        "repro.core.vector_pricing.price_packed",
        "price_packed() is deprecated; open a pricing session via "
        "repro.api.open_session('vectorized', options) or use "
        "price_packed_book() on a PackedPortfolio",
    )
    packed = PackedPortfolio(times, accruals, mask, recovery)
    return price_packed_book(
        packed, yield_curve, hazard_curve, want_legs=want_legs
    )


#: Working-set budget (bytes) the automatic chunk size aims at for the
#: survival/discount pair of one kernel chunk.  Small enough that the
#: chunk's tables stay cache-resident — pricing the whole grid in one
#: shot streams hundreds of megabytes through memory and is *slower* —
#: large enough to amortise per-chunk fixed costs.
CHUNK_TARGET_BYTES = 6 << 20


def auto_chunk_size(n_options: int, max_len: int) -> int:
    """Scenarios per kernel chunk targeting :data:`CHUNK_TARGET_BYTES`.

    Parameters
    ----------
    n_options / max_len:
        The packed-book grid shape (one scenario costs roughly
        ``2 * n_options * max_len`` float64 table entries).
    """
    per_scenario = 2 * n_options * max_len * 8
    return max(1, CHUNK_TARGET_BYTES // per_scenario)


def shifted_recovery(recovery: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Per-scenario recovery rates under additive shifts.

    Rows with a non-zero shift are clamped to ``[0, RECOVERY_CAP]`` after
    the shift; zero-shift rows pass the base rates through untouched —
    the same conditional the per-scenario revaluation path applies
    (:func:`shifted_recovery_row`), preserved so the batched path stays
    bit-identical.

    Parameters
    ----------
    recovery:
        ``(n_options,)`` base recovery rates.
    shifts:
        ``(n_scenarios,)`` additive shifts.

    Returns
    -------
    np.ndarray
        ``(n_scenarios, n_options)`` recovery rates.
    """
    rec = np.asarray(recovery, dtype=np.float64)
    sh = np.asarray(shifts, dtype=np.float64)
    base = np.broadcast_to(rec[None, :], (sh.size, rec.size))
    if not np.any(sh):
        return base
    shifted = np.clip(rec[None, :] + sh[:, None], 0.0, RECOVERY_CAP)
    return np.where(sh[:, None] != 0.0, shifted, base)


def shifted_recovery_row(
    recovery: np.ndarray, shift: float
) -> np.ndarray | None:
    """Clamped recovery rates under one scalar shift, ``None`` if unshifted.

    The single-state counterpart of :func:`shifted_recovery`: per-scenario
    revaluation loops and the session's tensor decomposition both apply
    exactly this conditional, so the looped path stays bit-identical to
    the batched kernel.  ``None`` (for a zero shift) tells the pricing
    path to use the contracts' own rates untouched.

    Parameters
    ----------
    recovery:
        ``(n_options,)`` base recovery rates.
    shift:
        The scenario's additive recovery shift.
    """
    if shift == 0.0:
        return None
    return np.clip(
        np.asarray(recovery, dtype=np.float64) + shift, 0.0, RECOVERY_CAP
    )


def price_packed_many(
    packed: PackedPortfolio,
    yield_times: np.ndarray,
    yield_values: np.ndarray,
    hazard_times: np.ndarray,
    hazard_values: np.ndarray,
    *,
    recovery_shifts: np.ndarray | None = None,
    want_legs: bool = True,
    chunk_size: int | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, ...] | None]:
    """Price a packed portfolio under many market states in one kernel call.

    The scenario axis leads: row ``s`` of ``yield_values`` /
    ``hazard_values`` is one complete market state on the shared knot
    grids.  Curves for all scenarios are evaluated in one vectorised pass
    and the leg math runs on an ``(n_scenarios * n_options, max_len)``
    layout — the identical reductions as :func:`price_packed`, making the
    result bit-identical to a per-scenario loop.

    Parameters
    ----------
    packed:
        The packed book (state-independent).
    yield_times / yield_values:
        Shared yield knot grid ``(k_y,)`` and per-scenario zero-rate rows
        ``(n_scenarios, k_y)``.
    hazard_times / hazard_values:
        Shared hazard knot grid ``(k_h,)`` and per-scenario intensity rows
        ``(n_scenarios, k_h)``.
    recovery_shifts:
        Optional ``(n_scenarios,)`` additive recovery shifts (see
        :func:`shifted_recovery`).
    want_legs:
        When false, return ``(spreads, None)``.
    chunk_size:
        Maximum scenarios per internal kernel invocation.  Peak memory
        scales with ``chunk_size * n_options * max_len``; ``None`` picks
        a cache-friendly size automatically (see
        :data:`CHUNK_TARGET_BYTES`).  Chunking never changes the
        numbers — rows are independent.

    Returns
    -------
    tuple
        ``(spreads_bps, legs)`` of shape ``(n_scenarios, n_options)``
        arrays; ``legs`` is ``None`` or the ``(premium, protection,
        accrual, survival_at_maturity)`` tuple.
    """
    yv = np.atleast_2d(np.asarray(yield_values, dtype=np.float64))
    hv = np.atleast_2d(np.asarray(hazard_values, dtype=np.float64))
    n_scenarios = yv.shape[0]
    if n_scenarios == 0:
        raise ValidationError("price_packed_many needs at least one scenario")
    if hv.shape[0] != n_scenarios:
        raise ValidationError(
            "yield_values and hazard_values must agree on the scenario "
            f"count, got {n_scenarios} and {hv.shape[0]}"
        )
    if recovery_shifts is None:
        shifts = np.zeros(n_scenarios, dtype=np.float64)
    else:
        shifts = np.asarray(recovery_shifts, dtype=np.float64)
        if shifts.shape != (n_scenarios,):
            raise ValidationError(
                f"recovery_shifts must have shape ({n_scenarios},), got "
                f"{shifts.shape}"
            )
    if chunk_size is not None and chunk_size < 1:
        raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")

    n, width = packed.times.shape
    spreads = np.empty((n_scenarios, n), dtype=np.float64)
    legs = (
        tuple(np.empty((n_scenarios, n), dtype=np.float64) for _ in range(4))
        if want_legs
        else None
    )
    step = chunk_size if chunk_size is not None else auto_chunk_size(n, width)
    step = min(step, n_scenarios)

    hook = _PROFILE_HOOK
    if hook is not None:
        hook.on_call()

    # State-independent operands, tiled once for the common chunk shape
    # (the final short chunk slices them down).
    inv = packed.unique_inverse
    acc_rows = np.tile(packed.accruals, (step, 1))
    last_rows = np.tile(packed.last_idx, step)

    for lo in range(0, n_scenarios, step):
        hi = min(lo + step, n_scenarios)
        m = hi - lo
        rows = m * n
        chunk_t0 = time.perf_counter() if hook is not None else 0.0
        # Curves are evaluated on the deduplicated payment-time grid and
        # scattered back to the padded (rows, width) schedule layout —
        # identical values, a fraction of the evaluation work.  ``take``
        # (not fancy indexing) keeps the gather C-contiguous so the
        # reshape below is a free view.
        survival = survival_many(
            packed.unique_times, hazard_times, hv[lo:hi]
        ).take(inv, axis=1).reshape(rows, width)
        discount = discount_factors_many(
            packed.unique_times, yield_times, yv[lo:hi]
        ).take(inv, axis=1).reshape(rows, width)
        sp, lg = _spreads_and_legs(
            discount,
            survival,
            acc_rows[:rows],
            shifted_recovery(packed.recovery, shifts[lo:hi]).reshape(rows),
            last_rows[:rows],
            want_legs=want_legs,
            row_name=lambda row, lo=lo: (
                f"scenario {lo + row // n}, option index {row % n}"
            ),
        )
        spreads[lo:hi] = sp.reshape(m, n)
        if want_legs:
            for out, part in zip(legs, lg):
                out[lo:hi] = part.reshape(m, n)
        if hook is not None:
            hook.on_chunk(m, rows, time.perf_counter() - chunk_t0)
    return spreads, legs


def price_portfolio(
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
) -> np.ndarray:
    """Convenience wrapper: par spreads (bps) for a portfolio.

    .. deprecated:: 1.5
        Superseded by the unified pricing API::

            from repro.api import open_session
            open_session("vectorized", options).spreads(yc, hc)

        The shim stays bit-identical and warns once per process.

    Examples
    --------
    >>> from repro.core import CDSOption, YieldCurve, HazardCurve
    >>> yc = YieldCurve([1.0, 5.0], [0.02, 0.03])
    >>> hc = HazardCurve([1.0, 5.0], [0.01, 0.02])
    >>> opts = [CDSOption(2.0, 4, 0.4), CDSOption(5.0, 2, 0.25)]
    >>> price_portfolio(opts, yc, hc).shape
    (2,)
    """
    deprecated_call(
        "repro.core.vector_pricing.price_portfolio",
        "price_portfolio() is deprecated; use "
        "repro.api.open_session('vectorized', options).spreads(yc, hc) "
        "instead",
    )
    return VectorCDSPricer(yield_curve, hazard_curve).spreads(options)
