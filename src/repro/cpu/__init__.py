"""CPU baseline: a runnable engine plus a calibrated Xeon performance model.

The paper compares its FPGA engines against "a 24-core Xeon Platinum
(Cascade Lake) 8260M and ... a bespoke version of the engine in C++ with
OpenMP for multi-threading" (Section II.B).  We provide both halves of that
comparison:

``engine``
    A *real, runnable* CPU engine (NumPy-vectorised inner loops, optional
    process-parallel decomposition over options) — numerical ground truth
    and live host measurements.
``xeon``
    The 8260M machine descriptor.
``scaling``
    The calibrated analytic performance model used for the paper-comparison
    tables: mechanistic per-option operation counts times a calibrated
    cycles-per-operation factor, and a memory-contention strong-scaling law
    reproducing the paper's poor 24-core scaling (24x cores -> ~8.7x).
``power``
    Socket power model (idle + per-active-core) fitted to the paper's
    175.39 W at 24 cores.
"""

from repro.cpu.xeon import XEON_8260M, CPUDescriptor
from repro.cpu.engine import CPUEngine, CPUEngineResult
from repro.cpu.scaling import CPUPerformanceModel, CPUWorkEstimate
from repro.cpu.power import CPUPowerModel

__all__ = [
    "CPUDescriptor",
    "XEON_8260M",
    "CPUEngine",
    "CPUEngineResult",
    "CPUPerformanceModel",
    "CPUWorkEstimate",
    "CPUPowerModel",
]
