"""A runnable CPU CDS engine.

This is the live counterpart of the paper's bespoke C++/OpenMP CPU engine:
it prices real option batches on the host machine using the vectorised
pricer, optionally decomposing the batch across worker processes the same
way the FPGA multi-engine decomposes across kernels (contiguous chunks of
the option vector).

Measurements from this engine are *host measurements* — they characterise
whatever machine runs the benchmark, not the paper's Xeon 8260M.  The
paper-comparison tables use the calibrated model in
:mod:`repro.cpu.scaling`; this engine exists to verify numerics end-to-end
and to give users a genuine baseline on their own hardware.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.core.vector_pricing import VectorCDSPricer
from repro.errors import ValidationError

__all__ = ["CPUEngine", "CPUEngineResult", "chunk_options"]


def chunk_options(options: list[CDSOption], n_chunks: int) -> list[list[CDSOption]]:
    """Split a batch into ``n_chunks`` contiguous near-equal chunks.

    The same decomposition the paper uses across FPGA engines: "we
    decomposed based upon the options themselves, splitting the entire set
    up into N chunks" (Section IV).  Chunks differ in size by at most one.
    """
    if n_chunks < 1:
        raise ValidationError(f"n_chunks must be >= 1, got {n_chunks}")
    if not options:
        raise ValidationError("cannot chunk an empty option batch")
    n = len(options)
    base, extra = divmod(n, n_chunks)
    chunks: list[list[CDSOption]] = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(options[start : start + size])
        start += size
    return [c for c in chunks if c]


@dataclass(frozen=True)
class CPUEngineResult:
    """Outcome of one CPU engine run.

    Attributes
    ----------
    spreads_bps:
        Par spreads, in input order.
    elapsed_seconds:
        Wall-clock time of the pricing phase.
    options_per_second:
        Throughput implied by the run.
    workers:
        Worker processes used (1 = in-process).
    """

    spreads_bps: np.ndarray
    elapsed_seconds: float
    options_per_second: float
    workers: int


def _price_chunk(
    payload: tuple[
        list[tuple[float, int, float]],
        tuple[tuple[float, ...], tuple[float, ...]],
        tuple[tuple[float, ...], tuple[float, ...]],
    ],
) -> list[float]:
    """Worker entry point (must be picklable at module top level)."""
    raw_options, (yt, yv), (ht, hv) = payload
    options = [CDSOption(m, f, r) for (m, f, r) in raw_options]
    pricer = VectorCDSPricer(
        yield_curve=YieldCurve(list(yt), list(yv)),
        hazard_curve=HazardCurve(list(ht), list(hv)),
    )
    return [float(s) for s in pricer.spreads(options)]


class CPUEngine:
    """Host CDS engine with optional process parallelism.

    Parameters
    ----------
    yield_curve / hazard_curve:
        The constant rate data shared by all options.
    workers:
        Worker processes; 1 runs in-process (no pool overhead).
    """

    def __init__(
        self,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self.yield_curve = yield_curve
        self.hazard_curve = hazard_curve
        self.workers = workers
        self._pricer = VectorCDSPricer(
            yield_curve=yield_curve, hazard_curve=hazard_curve
        )

    def run(self, options: list[CDSOption]) -> CPUEngineResult:
        """Price ``options``, timing the pricing phase."""
        if not options:
            raise ValidationError("option batch must be non-empty")
        start = time.perf_counter()
        if self.workers == 1:
            spreads = self._pricer.spreads(options)
        else:
            spreads = self._run_parallel(options)
        elapsed = time.perf_counter() - start
        elapsed = max(elapsed, 1e-9)
        return CPUEngineResult(
            spreads_bps=np.asarray(spreads, dtype=np.float64),
            elapsed_seconds=elapsed,
            options_per_second=len(options) / elapsed,
            workers=self.workers,
        )

    # ------------------------------------------------------------------
    def _run_parallel(self, options: list[CDSOption]) -> np.ndarray:
        chunks = chunk_options(options, self.workers)
        yt = tuple(float(t) for t in self.yield_curve.times)
        yv = tuple(float(v) for v in self.yield_curve.values)
        ht = tuple(float(t) for t in self.hazard_curve.times)
        hv = tuple(float(v) for v in self.hazard_curve.values)
        payloads = [
            (
                [(o.maturity, o.frequency, o.recovery_rate) for o in chunk],
                (yt, yv),
                (ht, hv),
            )
            for chunk in chunks
        ]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            parts = list(pool.map(_price_chunk, payloads))
        flat: list[float] = []
        for part in parts:
            flat.extend(part)
        return np.asarray(flat, dtype=np.float64)
