"""CPU socket power model.

The paper measured 175.39 W for the fully-loaded 24-core Xeon (Table II).
The standard affine socket model — package idle power plus a per-active-core
increment — is fitted so that 24 active cores draw that figure:

``P(k) = 60.2 + 4.8 * k``  ->  ``P(24) = 175.4 W``

The idle share matches public Cascade Lake package-idle measurements; the
per-core increment is the fitted slope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.xeon import XEON_8260M, CPUDescriptor
from repro.errors import ValidationError

__all__ = ["CPUPowerModel"]


@dataclass(frozen=True)
class CPUPowerModel:
    """Affine socket power in the number of active cores.

    Parameters
    ----------
    cpu:
        Machine descriptor (bounds the active-core count).
    idle_watts:
        Package power with all cores idle.
    per_core_watts:
        Increment per fully-active core.
    """

    cpu: CPUDescriptor = XEON_8260M
    idle_watts: float = 60.2
    per_core_watts: float = 4.8

    def __post_init__(self) -> None:
        if self.idle_watts < 0 or self.per_core_watts < 0:
            raise ValidationError("power components must be >= 0")

    def watts(self, active_cores: int) -> float:
        """Socket draw with ``active_cores`` busy."""
        if active_cores < 0 or active_cores > self.cpu.cores:
            raise ValidationError(
                f"active_cores must be in [0, {self.cpu.cores}], got {active_cores}"
            )
        return self.idle_watts + self.per_core_watts * active_cores

    def energy_joules(self, active_cores: int, seconds: float) -> float:
        """Energy over ``seconds`` with ``active_cores`` busy."""
        if seconds < 0:
            raise ValidationError(f"seconds must be >= 0, got {seconds}")
        return self.watts(active_cores) * seconds

    def efficiency(self, options_per_second: float, active_cores: int) -> float:
        """Options/second/Watt (Table II's last column)."""
        if options_per_second < 0:
            raise ValidationError("options_per_second must be >= 0")
        return options_per_second / self.watts(active_cores)
