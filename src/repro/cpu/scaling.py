"""Calibrated Xeon performance model.

Two layers:

* :class:`CPUWorkEstimate` counts the elementary operations a scalar C++
  implementation of the engine performs per option — the same accumulation
  and interpolation walks the FPGA stages perform, executed sequentially on
  one core.  The serial hazard accumulation is charged at the *latency* of a
  dependent FP add chain (the CPU equivalent of the FPGA's II=7 bottleneck:
  out-of-order execution cannot reorder a true dependency either).

* :class:`CPUPerformanceModel` converts operation counts into options/second
  with a single calibrated ``calibration_factor`` covering what the count
  abstracts away (cache misses on the 16 KiB rate tables, libm call
  overhead, loop control) and applies a memory-contention strong-scaling law
  for multi-core runs:

  ``rate(p) = rate(1) * p / (1 + contention * (p - 1))``

  The paper observes "the CPU code is scaling fairly poorly, where we have
  increased the core count by 24 times but the performance only increases by
  around nine times" (Section IV); ``contention = 0.0768`` reproduces that
  9x figure at 24 cores.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.schedule import build_schedule
from repro.core.types import CDSOption
from repro.cpu.xeon import XEON_8260M, CPUDescriptor
from repro.errors import ValidationError
from repro.hls.ops import DADD_LATENCY

__all__ = ["CPUWorkEstimate", "CPUPerformanceModel"]

#: Approximate cycles per scanned interpolation-table entry on the CPU
#: (compare + select + address arithmetic on a branchy scalar loop).
INTERP_CYCLES_PER_ENTRY = 3.0

#: Approximate cycles per libm double-precision ``exp`` call.
EXP_CYCLES = 150.0

#: Fixed per-option overhead (schedule generation, function calls, result
#: store) in cycles.
PER_OPTION_OVERHEAD_CYCLES = 2_000.0


@dataclass(frozen=True)
class CPUWorkEstimate:
    """Elementary-operation counts for pricing one option.

    Attributes
    ----------
    hazard_adds:
        Dependent accumulation steps over the hazard table (summed over all
        time points, each recomputed from the table start as the reference
        implementation does).
    interp_entries:
        Interpolation-table entries scanned (one full-table scan per time
        point in the bespoke engine, matching the FPGA's fixed-bound loop).
    exp_calls:
        ``exp`` evaluations (survival + discount per time point).
    time_points:
        Schedule length.
    """

    hazard_adds: int
    interp_entries: int
    exp_calls: int
    time_points: int

    def mechanistic_cycles(self) -> float:
        """Cycle count implied by the per-operation costs (pre-calibration)."""
        return (
            self.hazard_adds * DADD_LATENCY
            + self.interp_entries * INTERP_CYCLES_PER_ENTRY
            + self.exp_calls * EXP_CYCLES
            + PER_OPTION_OVERHEAD_CYCLES
        )

    @classmethod
    def for_option(
        cls,
        option: CDSOption,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
    ) -> "CPUWorkEstimate":
        """Count the work of one option against the given curves."""
        schedule = build_schedule(option)
        hazard_adds = sum(
            hazard_curve.accumulation_length(float(t)) for t in schedule.times
        )
        interp_entries = len(yield_curve) * len(schedule)
        exp_calls = 2 * len(schedule)
        return cls(
            hazard_adds=hazard_adds,
            interp_entries=interp_entries,
            exp_calls=exp_calls,
            time_points=len(schedule),
        )


@dataclass(frozen=True)
class CPUPerformanceModel:
    """Options/second model for a CPU socket.

    Parameters
    ----------
    cpu:
        Machine descriptor (clock, core count).
    calibration_factor:
        Multiplier on the mechanistic cycle count absorbing cache, libm and
        loop-control effects; calibrated once against the paper's
        single-core measurement (8738.92 options/s) for the paper scenario.
    contention:
        Strong-scaling contention coefficient; 0.0768 reproduces the
        paper's ~8.7x speedup at 24 cores.
    """

    cpu: CPUDescriptor = XEON_8260M
    calibration_factor: float = 2.565
    contention: float = 0.0768

    def __post_init__(self) -> None:
        if self.calibration_factor <= 0:
            raise ValidationError("calibration_factor must be > 0")
        if self.contention < 0:
            raise ValidationError("contention must be >= 0")

    def cycles_per_option(self, work: CPUWorkEstimate) -> float:
        """Calibrated cycles to price one option on one core."""
        return work.mechanistic_cycles() * self.calibration_factor

    def single_core_rate(self, work: CPUWorkEstimate) -> float:
        """Options/second on one core."""
        return self.cpu.base_clock_hz / self.cycles_per_option(work)

    def rate(self, work: CPUWorkEstimate, cores: int) -> float:
        """Options/second on ``cores`` cores under the contention law."""
        if cores < 1 or cores > self.cpu.cores:
            raise ValidationError(
                f"cores must be in [1, {self.cpu.cores}], got {cores}"
            )
        r1 = self.single_core_rate(work)
        return r1 * cores / (1.0 + self.contention * (cores - 1))

    def speedup(self, cores: int) -> float:
        """Strong-scaling speedup at ``cores`` (independent of workload)."""
        if cores < 1:
            raise ValidationError(f"cores must be >= 1, got {cores}")
        return cores / (1.0 + self.contention * (cores - 1))

    def parallel_efficiency(self, cores: int) -> float:
        """Speedup divided by core count."""
        return self.speedup(cores) / cores
