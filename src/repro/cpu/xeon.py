"""CPU machine descriptors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["CPUDescriptor", "XEON_8260M"]


@dataclass(frozen=True)
class CPUDescriptor:
    """Static description of a CPU socket.

    Parameters
    ----------
    name:
        Marketing name.
    cores:
        Physical core count.
    base_clock_hz:
        Base (all-core sustained) clock; the scaling model uses this rather
        than single-core turbo because the paper's comparison point is the
        fully-loaded socket.
    l3_bytes:
        Shared last-level cache size.
    memory_bandwidth_bytes_per_sec:
        Socket DRAM bandwidth (six DDR4-2933 channels for Cascade Lake).
    """

    name: str
    cores: int
    base_clock_hz: float
    l3_bytes: int
    memory_bandwidth_bytes_per_sec: float

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValidationError(f"cores must be >= 1, got {self.cores}")
        if self.base_clock_hz <= 0:
            raise ValidationError("base_clock_hz must be > 0")


#: The paper's comparison CPU: 24-core Cascade Lake Xeon Platinum 8260M.
XEON_8260M = CPUDescriptor(
    name="Intel Xeon Platinum 8260M (Cascade Lake)",
    cores=24,
    base_clock_hz=2.4e9,
    l3_bytes=36_608 * 1024,
    memory_bandwidth_bytes_per_sec=141e9,
)
