"""Cycle-level discrete-event simulator for HLS-style dataflow designs.

This package is the software substitute for the Vitis HLS + Alveo U280
execution substrate of the paper.  It models the execution semantics that the
paper's optimisations manipulate:

* **bounded streams** (:mod:`~repro.dataflow.stream`) — HLS ``hls::stream``
  FIFOs with blocking read/write and back-pressure;
* **processes** (:mod:`~repro.dataflow.process`) — concurrently-running
  dataflow functions, written as Python generators that yield
  :class:`~repro.dataflow.process.Read` / :class:`~repro.dataflow.process.Write`
  / :class:`~repro.dataflow.process.Delay` commands;
* **the scheduler** (:mod:`~repro.dataflow.engine`) — a deterministic
  Kahn-process-network simulator with per-process cycle clocks; token
  timestamps propagate via ``max`` constraints so results are independent of
  scheduling order;
* **pipelined-loop helpers** (:mod:`~repro.dataflow.pipeline`) — initiation
  interval (II) and latency modelling for ``#pragma HLS PIPELINE`` loops;
* **dataflow regions** (:mod:`~repro.dataflow.region`) — ``#pragma HLS
  DATAFLOW`` region start/stop overhead and per-invocation fill/drain;
* **analysis** (:mod:`~repro.dataflow.graph`, :mod:`~repro.dataflow.analytic`,
  :mod:`~repro.dataflow.stats`, :mod:`~repro.dataflow.tracing`) — topology
  export (paper Figs. 1-3), closed-form throughput models cross-validated
  against the simulator, stall statistics and event traces.

The simulator is *cycle-level*, not RTL-accurate: each stage's arithmetic is
computed functionally (ordinary Python/NumPy), while its timing follows the
II/latency/occupancy rules of HLS.  That is exactly the level at which the
paper reasons about its optimisations (II=7 accumulations, fill/drain,
round-robin replication), so the performance *shape* is preserved while
results stay numerically checkable.
"""

from repro.dataflow.stream import Stream, StreamStats
from repro.dataflow.process import Delay, Process, ProcessState, Read, Write
from repro.dataflow.engine import SimulationResult, Simulator
from repro.dataflow.pipeline import LoopTiming, pipelined_loop_cycles
from repro.dataflow.region import DataflowRegion, RegionTiming
from repro.dataflow.graph import DataflowGraph
from repro.dataflow.analytic import (
    AnalyticStage,
    dataflow_region_cycles,
    replicated_stage_cycles,
    sequential_cycles,
    streaming_cycles,
)

__all__ = [
    "Stream",
    "StreamStats",
    "Process",
    "ProcessState",
    "Read",
    "Write",
    "Delay",
    "Simulator",
    "SimulationResult",
    "LoopTiming",
    "pipelined_loop_cycles",
    "DataflowRegion",
    "RegionTiming",
    "DataflowGraph",
    "AnalyticStage",
    "sequential_cycles",
    "dataflow_region_cycles",
    "streaming_cycles",
    "replicated_stage_cycles",
]
