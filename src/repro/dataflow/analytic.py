"""Closed-form throughput models for the four engine organisations.

These formulas are the "paper napkin" versions of what the discrete-event
simulator measures mechanistically; the test suite asserts that simulator
and analytic model agree within a small tolerance on representative
networks.  The benchmarks use the analytic model for fast wide sweeps and
the simulator for the headline tables.

Notation: a *stage* processes one work item (one option's full time-point
set) in ``cycles_per_item`` cycles and has a one-off ``fill_latency``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "AnalyticStage",
    "sequential_cycles",
    "dataflow_region_cycles",
    "streaming_cycles",
    "replicated_stage_cycles",
]


@dataclass(frozen=True)
class AnalyticStage:
    """Closed-form descriptor of one dataflow stage.

    Parameters
    ----------
    name:
        Stage label (matches the simulator process name).
    cycles_per_item:
        Busy cycles the stage needs per work item, once running.
    fill_latency:
        One-off pipeline fill cost for the first item.
    """

    name: str
    cycles_per_item: float
    fill_latency: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles_per_item < 0.0:
            raise ValidationError(
                f"stage {self.name!r}: cycles_per_item must be >= 0"
            )
        if self.fill_latency < 0.0:
            raise ValidationError(f"stage {self.name!r}: fill_latency must be >= 0")


def sequential_cycles(stages: list[AnalyticStage], n_items: int) -> float:
    """Phases run one after another per item (Xilinx baseline, Fig. 1).

    Every item pays the sum of all stage costs plus each stage's fill.
    """
    _check(stages, n_items)
    per_item = sum(s.cycles_per_item + s.fill_latency for s in stages)
    return n_items * per_item


def dataflow_region_cycles(
    stages: list[AnalyticStage],
    n_items: int,
    *,
    region_overhead: float = 0.0,
) -> float:
    """Concurrent stages, region restarted per item (optimised dataflow).

    Per item: the slowest stage dominates, but the whole stage chain's fill
    latency is paid every invocation (pipelines drain between items), plus
    the start/stop handshake.
    """
    _check(stages, n_items)
    if region_overhead < 0.0:
        raise ValidationError("region_overhead must be >= 0")
    bottleneck = max(s.cycles_per_item for s in stages)
    chain_fill = sum(s.fill_latency for s in stages)
    return n_items * (bottleneck + chain_fill + region_overhead)


def streaming_cycles(
    stages: list[AnalyticStage],
    n_items: int,
    *,
    region_overhead: float = 0.0,
) -> float:
    """Free-running region across all items (dataflow inter-options).

    Steady state: the bottleneck stage's cost per item amortises the chain
    fill across the entire batch; the handshake is paid once.
    """
    _check(stages, n_items)
    if region_overhead < 0.0:
        raise ValidationError("region_overhead must be >= 0")
    bottleneck = max(s.cycles_per_item for s in stages)
    chain_fill = sum(s.fill_latency for s in stages)
    return chain_fill + n_items * bottleneck + region_overhead


def replicated_stage_cycles(
    stages: list[AnalyticStage],
    n_items: int,
    replication: dict[str, int],
    *,
    region_overhead: float = 0.0,
) -> float:
    """Streaming execution with some stages replicated ``k``-fold (Fig. 3).

    A stage replicated ``k`` times behind a round-robin scheduler sustains
    ``cycles_per_item / k`` per item, so the effective bottleneck is
    ``max_s cycles_per_item(s) / k(s)``.  Replication cannot push a stage's
    effective cost below the scheduler's distribution cost of one cycle per
    work unit, which is folded into the un-replicated stages' costs.
    """
    _check(stages, n_items)
    for name, k in replication.items():
        if k < 1:
            raise ValidationError(f"replication factor for {name!r} must be >= 1")
    effective = [
        AnalyticStage(
            name=s.name,
            cycles_per_item=s.cycles_per_item / replication.get(s.name, 1),
            fill_latency=s.fill_latency,
        )
        for s in stages
    ]
    return streaming_cycles(effective, n_items, region_overhead=region_overhead)


def _check(stages: list[AnalyticStage], n_items: int) -> None:
    if not stages:
        raise ValidationError("at least one stage is required")
    if n_items < 0:
        raise ValidationError(f"n_items must be >= 0, got {n_items}")
