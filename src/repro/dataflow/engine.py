"""The dataflow simulator scheduler.

Semantics
---------
The simulator executes a set of :class:`~repro.dataflow.process.Process`
kernels connected by bounded SPSC :class:`~repro.dataflow.stream.Stream`
FIFOs.  Every process carries its own cycle clock; the only cross-process
constraints are:

* a read of token *k* from a stream cannot complete before the token's ready
  timestamp (producer issue time + pipeline latency);
* a write to a full stream cannot complete before the consumer pops a token
  (back-pressure).

Both constraints are ``max`` operations over timestamps, making the network a
timed Kahn process network: the simulated cycle counts are **deterministic
and independent of scheduler ordering**.  The scheduler therefore uses a
simple ready queue rather than a global time wheel, which keeps the hot loop
small.

Deadlock (all processes blocked, none runnable, not all finished) raises
:class:`~repro.errors.DeadlockError` with a diagnostic listing every blocked
process and the stream it waits on — the software analogue of a hung HLS
DATAFLOW region.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.dataflow.process import Delay, Kernel, Process, ProcessState, Read, Write
from repro.dataflow.stream import Stream, StreamStats
from repro.errors import DeadlockError, SimulationError

__all__ = ["Simulator", "SimulationResult", "feeder", "collector"]

#: Hard command-count guard against runaway kernels.
DEFAULT_MAX_COMMANDS = 200_000_000


@dataclass
class SimulationResult:
    """Outcome of one :meth:`Simulator.run`.

    Attributes
    ----------
    makespan_cycles:
        Completion time of the slowest process (cycles).
    commands:
        Number of kernel commands executed (size proxy for the run).
    process_times:
        Finish time per process name.
    process_busy:
        ``Delay`` cycles per process name (compute occupancy).
    process_stall_read / process_stall_write:
        Stall cycles per process name.
    stream_stats:
        Final :class:`~repro.dataflow.stream.StreamStats` per stream name.
    """

    makespan_cycles: float
    commands: int
    process_times: dict[str, float] = field(default_factory=dict)
    process_busy: dict[str, float] = field(default_factory=dict)
    process_stall_read: dict[str, float] = field(default_factory=dict)
    process_stall_write: dict[str, float] = field(default_factory=dict)
    stream_stats: dict[str, StreamStats] = field(default_factory=dict)

    def seconds(self, clock_hz: float) -> float:
        """Wall-clock seconds of the simulated run at ``clock_hz``."""
        if clock_hz <= 0:
            raise SimulationError(f"clock_hz must be > 0, got {clock_hz}")
        return self.makespan_cycles / clock_hz

    def throughput(self, items: int, clock_hz: float) -> float:
        """Items per second processed by the simulated design."""
        secs = self.seconds(clock_hz)
        if secs == 0.0:
            raise SimulationError("zero-makespan run has undefined throughput")
        return items / secs

    def bottleneck(self) -> str:
        """Name of the process with the most busy cycles."""
        if not self.process_busy:
            raise SimulationError("no processes in result")
        return max(self.process_busy, key=lambda k: self.process_busy[k])

    def total_stall_cycles(self) -> float:
        """Sum of all stall cycles across processes."""
        return sum(self.process_stall_read.values()) + sum(
            self.process_stall_write.values()
        )


class Simulator:
    """Builds and runs one dataflow network.

    Typical usage::

        sim = Simulator("engine")
        a2b = sim.stream("a2b", depth=4)
        sim.process("producer", feeder(a2b, values))
        sim.process("consumer", collector(a2b, len(values), sink))
        result = sim.run()

    A fresh :class:`Simulator` corresponds to one configuration of the FPGA
    fabric; invoking :meth:`run` repeatedly on the *same* simulator is not
    supported (build a new one, or use
    :class:`~repro.dataflow.region.DataflowRegion` for repeated invocation
    semantics).
    """

    def __init__(self, name: str = "sim") -> None:
        self.name = name
        self.streams: dict[str, Stream] = {}
        self.processes: dict[str, Process] = {}
        self._ran = False
        #: Optional tracer with a ``record(kind, time, process, stream)``
        #: method (see :mod:`repro.dataflow.tracing`).
        self.tracer: Any | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def stream(
        self, name: str, depth: int = 2, *, per_option: bool = False
    ) -> Stream:
        """Create and register a stream; names must be unique."""
        if name in self.streams:
            raise SimulationError(f"duplicate stream name {name!r}")
        s = Stream(name=name, depth=depth, per_option=per_option)
        self.streams[name] = s
        return s

    def process(
        self,
        name: str,
        kernel: Kernel,
        *,
        group: str | None = None,
        reads: tuple[Stream, ...] = (),
        writes: tuple[Stream, ...] = (),
    ) -> Process:
        """Create and register a process running ``kernel``.

        ``reads`` / ``writes`` pre-declare stream connections so the
        topology graph is complete even before execution discovers them;
        they also enforce the SPSC property eagerly.
        """
        if name in self.processes:
            raise SimulationError(f"duplicate process name {name!r}")
        p = Process(name=name, generator=kernel, group=group)
        for s in reads:
            s.bind_reader(p)
            p.reads.add(s.name)
        for s in writes:
            s.bind_writer(p)
            p.writes.add(s.name)
        self.processes[name] = p
        return p

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, max_commands: int = DEFAULT_MAX_COMMANDS) -> SimulationResult:
        """Execute the network to completion and return statistics."""
        if self._ran:
            raise SimulationError(
                f"simulator {self.name!r} has already run; build a fresh one"
            )
        self._ran = True
        ready: deque[Process] = deque(self.processes.values())
        commands = 0
        trace = self.tracer

        while ready:
            p = ready.popleft()
            if p.state is ProcessState.DONE:
                continue
            p.state = ProcessState.READY
            commands += self._step(p, ready, trace, max_commands - commands)

        unfinished = [p for p in self.processes.values() if not p.done]
        if unfinished:
            detail = "; ".join(
                f"{p.name} {p.state.value} on "
                f"{p.pending.stream.name if p.pending is not None else '?'}"
                for p in unfinished
            )
            raise DeadlockError(
                f"dataflow network {self.name!r} deadlocked with "
                f"{len(unfinished)} blocked process(es): {detail}"
            )

        makespan = max((p.time for p in self.processes.values()), default=0.0)
        return SimulationResult(
            makespan_cycles=makespan,
            commands=commands,
            process_times={p.name: p.time for p in self.processes.values()},
            process_busy={p.name: p.busy_cycles for p in self.processes.values()},
            process_stall_read={
                p.name: p.stall_read_cycles for p in self.processes.values()
            },
            process_stall_write={
                p.name: p.stall_write_cycles for p in self.processes.values()
            },
            stream_stats={s.name: s.stats for s in self.streams.values()},
        )

    # ------------------------------------------------------------------
    def _step(
        self, p: Process, ready: deque[Process], trace: Any, budget: int
    ) -> int:
        """Run ``p`` until it blocks or finishes; returns commands executed."""
        gen = p.generator
        executed = 0
        while True:
            # Either retry the command we blocked on, or fetch the next one.
            if p.pending is not None:
                cmd = p.pending
                p.pending = None
            else:
                try:
                    cmd = gen.send(p._resume_value)
                except StopIteration:
                    p.state = ProcessState.DONE
                    return executed
                p._resume_value = None
                executed += 1
                if executed > budget:
                    raise SimulationError(
                        f"command budget exceeded in {self.name!r}; "
                        "likely a non-terminating kernel"
                    )

            if type(cmd) is Delay:
                p.time += cmd.cycles
                p.busy_cycles += cmd.cycles
                continue

            if type(cmd) is Read:
                s = cmd.stream
                if s.reader is None:
                    s.bind_reader(p)
                    p.reads.add(s.name)
                elif s.reader is not p:
                    raise SimulationError(
                        f"{p.name!r} read from {s.name!r} owned by {s.reader.name!r}"
                    )
                if s.empty:
                    p.pending = cmd
                    p.state = ProcessState.BLOCKED_READ
                    p.block_since = p.time
                    return executed
                ready_time, value = s.pop()
                if ready_time > p.time:
                    wait = ready_time - p.time
                    p.stall_read_cycles += wait
                    s.stats.reader_stall_cycles += wait
                    p.time = ready_time
                if trace is not None:
                    trace.record("read", p.time, p.name, s.name)
                # Popping freed a slot: release a back-pressured writer.
                w = s.writer
                if (
                    w is not None
                    and w.state is ProcessState.BLOCKED_WRITE
                    and w.pending is not None
                    and w.pending.stream is s
                ):
                    stall = max(0.0, p.time - w.block_since)
                    w.stall_write_cycles += stall
                    s.stats.writer_stall_cycles += stall
                    w.time = max(w.time, p.time)
                    w.state = ProcessState.READY
                    ready.append(w)
                p._resume_value = value
                continue

            if type(cmd) is Write:
                s = cmd.stream
                if s.writer is None:
                    s.bind_writer(p)
                    p.writes.add(s.name)
                elif s.writer is not p:
                    raise SimulationError(
                        f"{p.name!r} wrote to {s.name!r} owned by {s.writer.name!r}"
                    )
                if cmd.issue_time is None:
                    cmd.issue_time = p.time
                if s.full:
                    p.pending = cmd
                    p.state = ProcessState.BLOCKED_WRITE
                    p.block_since = p.time
                    return executed
                # The value was computed at issue time even if the FIFO was
                # full in between (it waited in the pipeline output
                # register), so readiness is issue + latency or the moment
                # the slot freed, whichever is later.
                s.push(max(cmd.issue_time + cmd.delay, p.time), cmd.value)
                if trace is not None:
                    trace.record("write", p.time, p.name, s.name)
                # A token arrived: release a starved reader.
                r = s.reader
                if (
                    r is not None
                    and r.state is ProcessState.BLOCKED_READ
                    and r.pending is not None
                    and r.pending.stream is s
                ):
                    r.state = ProcessState.READY
                    ready.append(r)
                continue

            raise SimulationError(
                f"kernel {p.name!r} yielded unknown command {cmd!r}"
            )


# ----------------------------------------------------------------------
# Stock kernels
# ----------------------------------------------------------------------
def feeder(
    stream: Stream,
    values: list[Any],
    *,
    ii: float = 1.0,
    latency: float = 0.0,
) -> Kernel:
    """Kernel: write ``values`` to ``stream`` one per ``ii`` cycles.

    Models an input DMA / loader stage.
    """
    for v in values:
        yield Write(stream, v, delay=latency)
        yield Delay(ii)


def collector(
    stream: Stream,
    count: int,
    sink: list[Any],
    *,
    ii: float = 1.0,
) -> Kernel:
    """Kernel: read ``count`` tokens from ``stream`` into ``sink``.

    Models an output DMA / result-drain stage.
    """
    for _ in range(count):
        v = yield Read(stream)
        sink.append(v)
        yield Delay(ii)


def transformer(
    inp: Stream,
    out: Stream,
    count: int,
    fn: Callable[[Any], Any],
    *,
    ii: float = 1.0,
    latency: float = 0.0,
) -> Kernel:
    """Kernel: ``out[k] = fn(inp[k])`` with the given II and latency."""
    for _ in range(count):
        v = yield Read(inp)
        yield Write(out, fn(v), delay=latency)
        yield Delay(ii)
