"""Topology graphs of dataflow networks (paper Figures 1-3).

The paper communicates its architectures with three diagrams: the sequential
flowchart of the Xilinx engine (Fig. 1), the dataflow reorganisation with
per-option and per-time-point streams (Fig. 2), and the round-robin
replication of the defaulting-probability calculation (Fig. 3).  This module
reconstructs those diagrams from live simulator objects: a
:class:`DataflowGraph` captures processes as nodes and streams as edges and
renders to Graphviz DOT or plain ASCII (both used by the figure benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.dataflow.engine import Simulator
from repro.errors import SimulationError

__all__ = ["DataflowGraph", "GraphNode", "GraphEdge"]


@dataclass(frozen=True)
class GraphNode:
    """A process node: name plus optional replica group label."""

    name: str
    group: str | None = None


@dataclass(frozen=True)
class GraphEdge:
    """A stream edge between two processes.

    ``per_option`` distinguishes the paper's red (once per option) from blue
    (once per time point) arrows in Fig. 2.
    """

    src: str
    dst: str
    stream: str
    depth: int
    per_option: bool = False


@dataclass
class DataflowGraph:
    """Process/stream topology with rendering helpers."""

    name: str
    nodes: list[GraphNode] = field(default_factory=list)
    edges: list[GraphEdge] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_simulator(cls, sim: Simulator) -> "DataflowGraph":
        """Extract the topology of a built (or run) simulator.

        Streams without both endpoints bound (e.g. external I/O) appear as
        edges from/to the pseudo-nodes ``"<input>"`` / ``"<output>"``.
        """
        g = cls(name=sim.name)
        for p in sim.processes.values():
            g.nodes.append(GraphNode(name=p.name, group=p.group))
        for s in sim.streams.values():
            src = s.writer.name if s.writer is not None else "<input>"
            dst = s.reader.name if s.reader is not None else "<output>"
            g.edges.append(
                GraphEdge(
                    src=src,
                    dst=dst,
                    stream=s.name,
                    depth=s.depth,
                    per_option=s.per_option,
                )
            )
        return g

    def to_networkx(self) -> nx.MultiDiGraph:
        """Convert to a :class:`networkx.MultiDiGraph` for analysis."""
        g = nx.MultiDiGraph(name=self.name)
        for node in self.nodes:
            g.add_node(node.name, group=node.group)
        for e in self.edges:
            if e.src not in g:
                g.add_node(e.src, group=None)
            if e.dst not in g:
                g.add_node(e.dst, group=None)
            g.add_edge(e.src, e.dst, key=e.stream, depth=e.depth, per_option=e.per_option)
        return g

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def is_acyclic(self) -> bool:
        """Whether the network is a DAG (HLS DATAFLOW requires it)."""
        return nx.is_directed_acyclic_graph(self.to_networkx())

    def topological_order(self) -> list[str]:
        """Stage names in a topological order (raises if cyclic)."""
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            raise SimulationError(f"graph {self.name!r} contains a cycle")
        return list(nx.topological_sort(g))

    def stage_depth(self) -> int:
        """Longest process chain (pipeline depth in stages)."""
        g = self.to_networkx()
        if not nx.is_directed_acyclic_graph(g):
            raise SimulationError(f"graph {self.name!r} contains a cycle")
        return int(nx.dag_longest_path_length(g)) + 1 if g.nodes else 0

    def groups(self) -> dict[str, list[str]]:
        """Replica groups: group label -> member process names."""
        out: dict[str, list[str]] = {}
        for node in self.nodes:
            if node.group is not None:
                out.setdefault(node.group, []).append(node.name)
        return out

    def fan_out(self, node: str) -> int:
        """Number of outgoing streams from ``node``."""
        return sum(1 for e in self.edges if e.src == node)

    def fan_in(self, node: str) -> int:
        """Number of incoming streams into ``node``."""
        return sum(1 for e in self.edges if e.dst == node)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def to_dot(self) -> str:
        """Graphviz DOT text, colouring per-option edges red and
        per-time-point edges blue (matching paper Fig. 2's legend)."""
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;", "  node [shape=box];"]
        groups = self.groups()
        grouped = {m for members in groups.values() for m in members}
        for node in self.nodes:
            if node.name not in grouped:
                lines.append(f'  "{node.name}";')
        for gi, (label, members) in enumerate(sorted(groups.items())):
            lines.append(f"  subgraph cluster_{gi} {{")
            lines.append(f'    label="{label}";')
            for m in sorted(members):
                lines.append(f'    "{m}";')
            lines.append("  }")
        for e in self.edges:
            colour = "red" if e.per_option else "blue"
            lines.append(
                f'  "{e.src}" -> "{e.dst}" '
                f'[label="{e.stream} (d={e.depth})", color={colour}];'
            )
        lines.append("}")
        return "\n".join(lines)

    def to_ascii(self) -> str:
        """Compact ASCII rendering: one line per edge, topologically sorted."""
        try:
            order = {n: i for i, n in enumerate(self.topological_order())}
        except SimulationError:
            order = {n.name: i for i, n in enumerate(self.nodes)}
        rows = sorted(
            self.edges, key=lambda e: (order.get(e.src, 0), order.get(e.dst, 0))
        )
        width = max((len(e.src) for e in rows), default=0)
        lines = [f"[{self.name}]"]
        for e in rows:
            marker = "==" if e.per_option else "--"
            lines.append(
                f"  {e.src:>{width}} {marker}{e.stream}{marker}> {e.dst}"
            )
        legend = "  (== per-option stream, -- per-time-point stream)"
        lines.append(legend)
        return "\n".join(lines)
