"""Pipelined-loop timing (``#pragma HLS PIPELINE``).

HLS pipelines a loop so that a new iteration *initiates* every II cycles
(the initiation interval) while each iteration takes ``latency`` cycles to
flow through the pipeline.  A loop of ``n`` iterations therefore occupies

``cycles(n) = latency + (n - 1) * II``        (n >= 1)

The paper's core bottleneck is exactly an II phenomenon: the hazard
accumulation loop carries a dependency through a double-precision add whose
latency is seven cycles, forcing ``II = 7`` — one result every seven cycles
(Section III).  Listing 1 restores ``II = 1`` by interleaving seven partial
sums; the timing consequences of both variants are modelled in
:mod:`repro.hls.accumulator` on top of this module.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["LoopTiming", "pipelined_loop_cycles", "nested_loop_cycles"]


@dataclass(frozen=True)
class LoopTiming:
    """Static timing descriptor of a pipelined loop.

    Parameters
    ----------
    ii:
        Initiation interval in cycles (>= 1 in real HLS; fractional values
        are allowed for modelling averaged behaviour).
    latency:
        Iteration latency in cycles (>= ii is typical but not required).
    """

    ii: float = 1.0
    latency: float = 1.0

    def __post_init__(self) -> None:
        if self.ii <= 0.0:
            raise ValidationError(f"II must be > 0, got {self.ii}")
        if self.latency < 0.0:
            raise ValidationError(f"latency must be >= 0, got {self.latency}")

    def cycles(self, trip_count: int) -> float:
        """Total cycles to execute ``trip_count`` iterations."""
        return pipelined_loop_cycles(trip_count, self.ii, self.latency)

    def steady_state_cycles(self, trip_count: int) -> float:
        """Cycles excluding the one-off fill latency: ``trip_count * II``.

        This is the per-invocation cost once the pipeline is continuously
        fed — the quantity the paper's *inter-option* optimisation exposes
        by never draining the pipeline between options.
        """
        if trip_count < 0:
            raise ValidationError(f"trip_count must be >= 0, got {trip_count}")
        return trip_count * self.ii

    def scaled(self, factor: float) -> "LoopTiming":
        """A copy with II scaled by ``factor`` (used for derating sweeps)."""
        return LoopTiming(ii=self.ii * factor, latency=self.latency)


def pipelined_loop_cycles(trip_count: int, ii: float, latency: float) -> float:
    """Cycles for a pipelined loop: ``latency + (n - 1) * II`` (0 for n=0)."""
    if trip_count < 0:
        raise ValidationError(f"trip_count must be >= 0, got {trip_count}")
    if trip_count == 0:
        return 0.0
    if ii <= 0.0:
        raise ValidationError(f"II must be > 0, got {ii}")
    return latency + (trip_count - 1) * ii


def nested_loop_cycles(
    outer_trips: int, inner_trips: int, inner: LoopTiming, *, flattened: bool = False
) -> float:
    """Cycles for an outer loop wrapping a pipelined inner loop.

    Without flattening (HLS default for imperfect nests) the inner pipeline
    fills and drains once per outer iteration:

    ``outer_trips * (latency + (inner_trips - 1) * II)``

    With ``flattened=True`` (perfect nest) the pipeline fills once:

    ``latency + (outer_trips * inner_trips - 1) * II``
    """
    if outer_trips < 0:
        raise ValidationError(f"outer_trips must be >= 0, got {outer_trips}")
    if outer_trips == 0 or inner_trips == 0:
        return 0.0
    if flattened:
        return pipelined_loop_cycles(outer_trips * inner_trips, inner.ii, inner.latency)
    return outer_trips * inner.cycles(inner_trips)
