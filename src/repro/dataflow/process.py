"""Dataflow processes and the command protocol they speak.

A *process* models one concurrently-executing HLS dataflow function (a black
box of paper Fig. 2).  Kernels are written as Python generators that yield
command objects to the scheduler:

* ``value = yield Read(stream)`` — blocking FIFO read;
* ``yield Write(stream, value, delay=L)`` — blocking FIFO write whose token
  becomes visible ``L`` cycles after the write issues (models pipeline
  latency without stalling the writer);
* ``yield Delay(cycles)`` — advance the process clock (models compute
  occupancy: an II=7 accumulation of ``n`` values is ``Delay(7 * n)``).

Example
-------
A doubling stage with II=1 and 3-cycle latency::

    def doubler(inp, out, n):
        for _ in range(n):
            v = yield Read(inp)
            yield Write(out, 2 * v, delay=3)
            yield Delay(1)

The scheduler (:mod:`repro.dataflow.engine`) advances each process's local
cycle clock; all cross-process constraints are ``max`` of timestamps, so the
simulation is deterministic regardless of scheduling order (Kahn process
network semantics).
"""

from __future__ import annotations

import enum
from typing import Any, Generator

from repro.dataflow.stream import Stream
from repro.errors import SimulationError

__all__ = ["Read", "Write", "Delay", "Process", "ProcessState", "Kernel"]

#: Type alias for kernel generators.
Kernel = Generator["Read | Write | Delay", Any, None]


class Read:
    """Command: blocking read of one token from ``stream``."""

    __slots__ = ("stream",)

    def __init__(self, stream: Stream) -> None:
        self.stream = stream

    def __repr__(self) -> str:  # pragma: no cover
        return f"Read({self.stream.name})"


class Write:
    """Command: blocking write of ``value`` to ``stream``.

    Parameters
    ----------
    stream:
        Target FIFO.
    value:
        Payload.
    delay:
        Pipeline latency in cycles between the write issuing and the token
        becoming readable downstream.  The writer's own clock does **not**
        advance by ``delay`` — that is the essence of pipelining.

    Notes
    -----
    ``issue_time`` is stamped by the scheduler when the write first
    executes.  If the FIFO is full, the value was still *computed* at issue
    time (it waits in the pipeline's output register), so when the slot
    frees at time ``T`` the token becomes readable at
    ``max(issue_time + delay, T)`` — not ``T + delay``.
    """

    __slots__ = ("stream", "value", "delay", "issue_time")

    def __init__(self, stream: Stream, value: Any, delay: float = 0.0) -> None:
        if delay < 0.0:
            raise SimulationError(f"Write delay must be >= 0, got {delay}")
        self.stream = stream
        self.value = value
        self.delay = delay
        self.issue_time: float | None = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"Write({self.stream.name}, delay={self.delay})"


class Delay:
    """Command: advance the process clock by ``cycles``."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: float) -> None:
        if cycles < 0.0:
            raise SimulationError(f"Delay must be >= 0, got {cycles}")
        self.cycles = cycles

    def __repr__(self) -> str:  # pragma: no cover
        return f"Delay({self.cycles})"


class ProcessState(enum.Enum):
    """Lifecycle of a process during simulation."""

    READY = "ready"
    BLOCKED_READ = "blocked-read"
    BLOCKED_WRITE = "blocked-write"
    DONE = "done"


class Process:
    """One concurrently-running dataflow function under simulation.

    Attributes
    ----------
    name:
        Unique name (appears in graphs, stats and deadlock diagnostics).
    time:
        Local cycle clock; monotonically non-decreasing.
    state:
        Current :class:`ProcessState`.
    busy_cycles:
        Total cycles spent in ``Delay`` (compute occupancy).
    stall_read_cycles / stall_write_cycles:
        Cycles spent blocked on empty inputs / full outputs.
    group:
        Optional label grouping replicas (used by the vectorised engine's
        round-robin clusters and the figure renderers).
    """

    __slots__ = (
        "name",
        "generator",
        "time",
        "state",
        "busy_cycles",
        "stall_read_cycles",
        "stall_write_cycles",
        "group",
        "pending",
        "block_since",
        "_resume_value",
        "reads",
        "writes",
    )

    def __init__(self, name: str, generator: Kernel, group: str | None = None) -> None:
        self.name = name
        self.generator = generator
        self.group = group
        self.time: float = 0.0
        self.state = ProcessState.READY
        self.busy_cycles: float = 0.0
        self.stall_read_cycles: float = 0.0
        self.stall_write_cycles: float = 0.0
        #: Pending blocked command (Read or Write) awaiting a wakeup.
        self.pending: Read | Write | None = None
        self.block_since: float = 0.0
        self._resume_value: Any = None
        #: Streams this process reads / writes (discovered during execution,
        #: pre-registered via Simulator.process(reads=..., writes=...)).
        self.reads: set[str] = set()
        self.writes: set[str] = set()

    @property
    def done(self) -> bool:
        """Whether the kernel generator has finished."""
        return self.state is ProcessState.DONE

    @property
    def total_stall_cycles(self) -> float:
        """Read plus write stall cycles."""
        return self.stall_read_cycles + self.stall_write_cycles

    def utilisation(self, makespan: float) -> float:
        """Fraction of the run this process spent computing.

        Parameters
        ----------
        makespan:
            Total simulated cycles of the run (from
            :class:`~repro.dataflow.engine.SimulationResult`).
        """
        if makespan <= 0.0:
            return 0.0
        return min(1.0, self.busy_cycles / makespan)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Process({self.name!r}, t={self.time:.0f}, {self.state.value}, "
            f"busy={self.busy_cycles:.0f})"
        )
