"""Dataflow region invocation semantics (``#pragma HLS DATAFLOW``).

A DATAFLOW region is a cluster of concurrently-running functions connected by
streams.  Two invocation styles matter for the paper:

* **restart per work item** (the paper's first optimised engine): the region
  is started once per option; between invocations all pipelines drain and
  there is a fixed start/stop handshake overhead.  Performance suffers from
  "the overhead of starting and stopping the dataflow region [and] the
  pipelines also continually filling and draining" (Section III).
* **free-running / inter-option** (the paper's second optimisation): one
  invocation processes the whole batch; fill and drain are paid once.

:class:`DataflowRegion` wraps a *builder* callback that constructs the
network of one invocation into a fresh
:class:`~repro.dataflow.engine.Simulator`; :meth:`run_per_item` and
:meth:`run_batch` realise the two styles on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.dataflow.engine import SimulationResult, Simulator
from repro.errors import ValidationError

__all__ = ["RegionTiming", "DataflowRegion"]

#: Default start/stop handshake overhead of a Vitis DATAFLOW region, in
#: cycles.  Covers the ap_ctrl handshake and stream-reset sequencing between
#: invocations; the precise figure is design-dependent — this default is
#: deliberately modest and engines override it from the scenario calibration.
DEFAULT_REGION_OVERHEAD_CYCLES = 32.0


@dataclass
class RegionTiming:
    """Aggregate timing of a sequence of region invocations.

    Attributes
    ----------
    total_cycles:
        End-to-end cycles including per-invocation overhead.
    invocations:
        Number of times the region ran.
    overhead_cycles:
        Total start/stop handshake cycles included in ``total_cycles``.
    results:
        Per-invocation :class:`~repro.dataflow.engine.SimulationResult`.
    """

    total_cycles: float
    invocations: int
    overhead_cycles: float
    results: list[SimulationResult]

    @property
    def compute_cycles(self) -> float:
        """Cycles spent inside invocations (excludes handshake overhead)."""
        return self.total_cycles - self.overhead_cycles

    @property
    def mean_invocation_cycles(self) -> float:
        """Average cycles per invocation including overhead."""
        if self.invocations == 0:
            return 0.0
        return self.total_cycles / self.invocations


class DataflowRegion:
    """A re-invocable dataflow region.

    Parameters
    ----------
    name:
        Region name (prefixes the per-invocation simulator names).
    builder:
        Callback ``builder(sim, item) -> None`` that populates a fresh
        :class:`~repro.dataflow.engine.Simulator` with the processes and
        streams of one invocation processing ``item``.
    start_overhead_cycles:
        Handshake cycles charged per invocation (start + stop).
    """

    def __init__(
        self,
        name: str,
        builder: Callable[[Simulator, Any], None],
        *,
        start_overhead_cycles: float = DEFAULT_REGION_OVERHEAD_CYCLES,
    ) -> None:
        if start_overhead_cycles < 0.0:
            raise ValidationError(
                f"start_overhead_cycles must be >= 0, got {start_overhead_cycles}"
            )
        self.name = name
        self.builder = builder
        self.start_overhead_cycles = start_overhead_cycles

    def run_per_item(self, items: Sequence[Any]) -> RegionTiming:
        """Invoke the region once per item (restart semantics).

        Every invocation pays the start/stop overhead and refills its
        pipelines from empty — this is the cost profile of the paper's
        "Optimised Dataflow CDS engine" row.
        """
        results: list[SimulationResult] = []
        total = 0.0
        for idx, item in enumerate(items):
            sim = Simulator(f"{self.name}[{idx}]")
            self.builder(sim, item)
            res = sim.run()
            results.append(res)
            total += res.makespan_cycles + self.start_overhead_cycles
        return RegionTiming(
            total_cycles=total,
            invocations=len(results),
            overhead_cycles=self.start_overhead_cycles * len(results),
            results=results,
        )

    def run_batch(self, batch: Any) -> RegionTiming:
        """Single free-running invocation over a whole batch.

        The builder receives the entire ``batch``; fill/drain and the
        handshake are paid exactly once — the paper's "Dataflow
        inter-options" style.
        """
        sim = Simulator(f"{self.name}[batch]")
        self.builder(sim, batch)
        res = sim.run()
        return RegionTiming(
            total_cycles=res.makespan_cycles + self.start_overhead_cycles,
            invocations=1,
            overhead_cycles=self.start_overhead_cycles,
            results=[res],
        )
