"""Summaries over simulation results: bottlenecks, utilisation, stalls.

These helpers turn the raw per-process counters of a
:class:`~repro.dataflow.engine.SimulationResult` into the kind of judgement
the paper makes in prose — e.g. "other dataflow stages ... can generate a
result per cycle, but as they depend upon data from such preceding stages,
stalls frequently occurred" (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.engine import SimulationResult

__all__ = ["StageSummary", "summarise", "stall_fraction", "utilisation_table"]


@dataclass(frozen=True)
class StageSummary:
    """Digest of one stage's behaviour over a run.

    Attributes
    ----------
    name:
        Process name.
    busy_cycles:
        Compute-occupied cycles.
    stall_read_cycles / stall_write_cycles:
        Cycles blocked on empty inputs / full outputs.
    finish_time:
        Local clock at completion.
    utilisation:
        ``busy / makespan`` of the run.
    """

    name: str
    busy_cycles: float
    stall_read_cycles: float
    stall_write_cycles: float
    finish_time: float
    utilisation: float

    @property
    def stalled_fraction(self) -> float:
        """Fraction of the stage's own finish time spent stalled."""
        if self.finish_time <= 0.0:
            return 0.0
        return (self.stall_read_cycles + self.stall_write_cycles) / self.finish_time


def summarise(result: SimulationResult) -> list[StageSummary]:
    """Per-stage summaries, sorted by descending busy cycles."""
    makespan = result.makespan_cycles or 1.0
    rows = [
        StageSummary(
            name=name,
            busy_cycles=result.process_busy.get(name, 0.0),
            stall_read_cycles=result.process_stall_read.get(name, 0.0),
            stall_write_cycles=result.process_stall_write.get(name, 0.0),
            finish_time=result.process_times.get(name, 0.0),
            utilisation=min(1.0, result.process_busy.get(name, 0.0) / makespan),
        )
        for name in result.process_times
    ]
    rows.sort(key=lambda r: r.busy_cycles, reverse=True)
    return rows


def stall_fraction(result: SimulationResult) -> float:
    """Total stall cycles over total process-time across all stages.

    A design-level congestion indicator: near zero for a well-balanced
    free-running pipeline, large when slow producers starve consumers.
    """
    total_time = sum(result.process_times.values())
    if total_time <= 0.0:
        return 0.0
    return result.total_stall_cycles() / total_time


def utilisation_table(result: SimulationResult) -> str:
    """Fixed-width text table of per-stage utilisation and stalls."""
    rows = summarise(result)
    width = max((len(r.name) for r in rows), default=4)
    lines = [
        f"{'stage':<{width}}  {'busy':>12}  {'stall-rd':>10}  "
        f"{'stall-wr':>10}  {'finish':>12}  {'util':>6}"
    ]
    for r in rows:
        lines.append(
            f"{r.name:<{width}}  {r.busy_cycles:>12.0f}  {r.stall_read_cycles:>10.0f}  "
            f"{r.stall_write_cycles:>10.0f}  {r.finish_time:>12.0f}  {r.utilisation:>6.1%}"
        )
    return "\n".join(lines)
