"""Bounded single-producer single-consumer streams (``hls::stream`` model).

An HLS stream is a hardware FIFO: a write blocks when the FIFO is full, a
read blocks when it is empty.  Stream *depth* is a synthesis knob — the paper
connects its dataflow functions with such streams (red/blue arrows of
Fig. 2), and back-pressure through them is what makes a slow stage stall its
neighbours ("stalls frequently occurred", Section III).

Tokens carry a *ready timestamp*: the cycle at which the producing stage's
pipeline emits them.  A reader that pops a token earlier than its ready time
advances its local clock to the ready time and records the difference as a
read stall.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.dataflow.process import Process

__all__ = ["Stream", "StreamStats", "DEFAULT_STREAM_DEPTH"]

#: Vitis HLS default stream depth (two-entry handshake FIFO).
DEFAULT_STREAM_DEPTH = 2


@dataclass
class StreamStats:
    """Observed statistics for one stream over a simulation run.

    Attributes
    ----------
    tokens:
        Number of tokens that passed through the stream.
    max_occupancy:
        Highest number of tokens simultaneously buffered.
    reader_stall_cycles:
        Total cycles the consumer spent waiting on an empty FIFO (including
        waiting for a token's ready timestamp).
    writer_stall_cycles:
        Total cycles the producer spent waiting on a full FIFO
        (back-pressure).
    """

    tokens: int = 0
    max_occupancy: int = 0
    reader_stall_cycles: float = 0.0
    writer_stall_cycles: float = 0.0

    def merge(self, other: "StreamStats") -> "StreamStats":
        """Combine statistics from two runs (used by multi-region engines)."""
        return StreamStats(
            tokens=self.tokens + other.tokens,
            max_occupancy=max(self.max_occupancy, other.max_occupancy),
            reader_stall_cycles=self.reader_stall_cycles + other.reader_stall_cycles,
            writer_stall_cycles=self.writer_stall_cycles + other.writer_stall_cycles,
        )


@dataclass
class Stream:
    """A bounded SPSC FIFO carrying timestamped tokens.

    Parameters
    ----------
    name:
        Unique name within the simulator (used in graphs and diagnostics).
    depth:
        FIFO capacity in tokens; must be >= 1.
    per_option:
        Annotation only: ``True`` for streams carrying one token per option
        (red arrows of paper Fig. 2), ``False`` for per-time-point streams
        (blue arrows).  Used by the figure renderers.
    """

    name: str
    depth: int = DEFAULT_STREAM_DEPTH
    per_option: bool = False
    stats: StreamStats = field(default_factory=StreamStats)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise SimulationError(f"stream {self.name!r}: depth must be >= 1")
        self._fifo: deque[tuple[float, Any]] = deque()
        self.reader: "Process | None" = None
        self.writer: "Process | None" = None

    # ------------------------------------------------------------------
    # Registration (enforces single-producer single-consumer)
    # ------------------------------------------------------------------
    def bind_reader(self, process: "Process") -> None:
        """Register ``process`` as the unique consumer."""
        if self.reader is not None and self.reader is not process:
            raise SimulationError(
                f"stream {self.name!r} already has reader {self.reader.name!r}; "
                f"cannot also attach {process.name!r} (streams are SPSC)"
            )
        self.reader = process

    def bind_writer(self, process: "Process") -> None:
        """Register ``process`` as the unique producer."""
        if self.writer is not None and self.writer is not process:
            raise SimulationError(
                f"stream {self.name!r} already has writer {self.writer.name!r}; "
                f"cannot also attach {process.name!r} (streams are SPSC)"
            )
        self.writer = process

    # ------------------------------------------------------------------
    # FIFO operations (used by the scheduler, not end users)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def full(self) -> bool:
        """Whether a write would block right now."""
        return len(self._fifo) >= self.depth

    @property
    def empty(self) -> bool:
        """Whether a read would block right now."""
        return not self._fifo

    def push(self, ready_time: float, value: Any) -> None:
        """Append a token; caller must have checked :attr:`full`."""
        if self.full:
            raise SimulationError(f"push to full stream {self.name!r}")
        self._fifo.append((ready_time, value))
        self.stats.tokens += 1
        if len(self._fifo) > self.stats.max_occupancy:
            self.stats.max_occupancy = len(self._fifo)

    def pop(self) -> tuple[float, Any]:
        """Remove and return ``(ready_time, value)``; caller checks :attr:`empty`."""
        if self.empty:
            raise SimulationError(f"pop from empty stream {self.name!r}")
        return self._fifo.popleft()

    def drain(self) -> list[Any]:
        """Remove and return all buffered values (between region invocations)."""
        values = [v for _, v in self._fifo]
        self._fifo.clear()
        return values

    def reset(self) -> None:
        """Clear FIFO contents and statistics (fresh simulation)."""
        self._fifo.clear()
        self.stats = StreamStats()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Stream({self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._fifo)})"
        )
