"""Event tracing for dataflow simulations (telemetry adapter).

Attach a :class:`Trace` to a :class:`~repro.dataflow.engine.Simulator` via
``sim.tracer = Trace()`` to record every stream read/write with its cycle
timestamp.  Traces support waveform-style occupancy reconstruction and a
textual timeline, which the examples use to visualise pipeline fill/drain —
the phenomenon the paper's inter-option optimisation removes.

Since the unified telemetry layer (:mod:`repro.telemetry`) landed, this
module is an *adapter*: a :class:`Trace` can mirror every event into a
telemetry span recorder (``Trace(recorder=...)``), and :attr:`Trace.spans`
views the recorded events as :class:`~repro.telemetry.Span` instants, so
dataflow traces export through the same Chrome-trace/CSV pipeline as
serving and risk runs.  Constructing a standalone :class:`Trace` stays
supported for the occupancy analyses, but its direct use as a recording
surface is deprecated in favour of :class:`~repro.telemetry.SpanRecorder`
(announced once per process via :mod:`repro.deprecation`).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.deprecation import deprecated_call

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    kind:
        ``"read"`` or ``"write"``.
    time:
        Cycle at which the event committed.
    process:
        Acting process name.
    stream:
        Stream involved.
    """

    kind: str
    time: float
    process: str
    stream: str


@dataclass
class Trace:
    """In-memory event recorder with simple analyses.

    Attributes
    ----------
    events:
        Committed transfers in record order (the legacy surface every
        occupancy analysis reads).
    recorder:
        Optional telemetry span recorder; when attached and enabled,
        every event is mirrored as an instant span (``start == end`` at
        the commit cycle) on the stream's track, so a dataflow run
        exports alongside serving/risk telemetry.
    """

    events: list[TraceEvent] = field(default_factory=list)
    recorder: object | None = None

    def record(self, kind: str, time: float, process: str, stream: str) -> None:
        """Called by the simulator scheduler on every committed transfer."""
        if self.recorder is None:
            deprecated_call(
                "repro.dataflow.tracing.Trace.record",
                "recording through a bare repro.dataflow.tracing.Trace is "
                "deprecated; attach a repro.telemetry.SpanRecorder "
                "(Trace(recorder=...)) or record spans with the telemetry "
                "layer directly",
            )
        self.events.append(
            TraceEvent(kind=kind, time=time, process=process, stream=stream)
        )
        recorder = self.recorder
        if recorder is not None and recorder.enabled:
            recorder.record(
                kind,
                time,
                time,
                track=stream,
                category="dataflow",
                args={"process": process},
            )

    def __len__(self) -> int:
        return len(self.events)

    @property
    def spans(self):
        """The events viewed as telemetry instant spans (record order).

        Cycle timestamps are carried through unscaled: dataflow traces
        tick in cycles, not simulated seconds, and the exporters only
        need monotone timestamps.
        """
        from repro.telemetry import Span

        return tuple(
            Span(
                name=e.kind,
                start_s=e.time,
                end_s=e.time,
                track=e.stream,
                category="dataflow",
                args={"process": e.process},
            )
            for e in self.events
        )

    # ------------------------------------------------------------------
    def for_stream(self, stream: str) -> list[TraceEvent]:
        """All events on one stream, in commit order."""
        return [e for e in self.events if e.stream == stream]

    def occupancy_profile(self, stream: str) -> list[tuple[float, int]]:
        """Piecewise-constant FIFO occupancy: ``(time, occupancy)`` steps.

        Writes increment, reads decrement; events are sorted by time with
        reads applied before writes at equal timestamps (a token cannot be
        read and still occupy its slot).
        """
        deltas: list[tuple[float, int, int]] = []
        for e in self.for_stream(stream):
            if e.kind == "write":
                deltas.append((e.time, 1, +1))
            elif e.kind == "read":
                deltas.append((e.time, 0, -1))
        deltas.sort()
        profile: list[tuple[float, int]] = []
        occ = 0
        for time, _, d in deltas:
            occ += d
            if profile and profile[-1][0] == time:
                profile[-1] = (time, occ)
            else:
                profile.append((time, occ))
        return profile

    def occupancy_at(self, stream: str, time: float) -> int:
        """FIFO occupancy of ``stream`` at cycle ``time``."""
        profile = self.occupancy_profile(stream)
        times = [t for t, _ in profile]
        idx = bisect_right(times, time) - 1
        return profile[idx][1] if idx >= 0 else 0

    def first_output_time(self, stream: str) -> float | None:
        """Cycle of the first read committed on ``stream`` (fill latency probe)."""
        for e in self.events:
            if e.stream == stream and e.kind == "read":
                return e.time
        return None

    def timeline(self, limit: int = 50) -> str:
        """Human-readable event log (first ``limit`` events by time)."""
        ordered = sorted(self.events, key=lambda e: (e.time, e.kind))[:limit]
        lines = [
            f"{e.time:>10.1f}  {e.kind:<5}  {e.process:<24} {e.stream}"
            for e in ordered
        ]
        header = f"{'cycle':>10}  {'kind':<5}  {'process':<24} stream"
        return "\n".join([header, *lines])
