"""Event tracing for dataflow simulations.

Attach a :class:`Trace` to a :class:`~repro.dataflow.engine.Simulator` via
``sim.tracer = Trace()`` to record every stream read/write with its cycle
timestamp.  Traces support waveform-style occupancy reconstruction and a
textual timeline, which the examples use to visualise pipeline fill/drain —
the phenomenon the paper's inter-option optimisation removes.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event.

    Attributes
    ----------
    kind:
        ``"read"`` or ``"write"``.
    time:
        Cycle at which the event committed.
    process:
        Acting process name.
    stream:
        Stream involved.
    """

    kind: str
    time: float
    process: str
    stream: str


@dataclass
class Trace:
    """In-memory event recorder with simple analyses."""

    events: list[TraceEvent] = field(default_factory=list)

    def record(self, kind: str, time: float, process: str, stream: str) -> None:
        """Called by the simulator scheduler on every committed transfer."""
        self.events.append(TraceEvent(kind=kind, time=time, process=process, stream=stream))

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def for_stream(self, stream: str) -> list[TraceEvent]:
        """All events on one stream, in commit order."""
        return [e for e in self.events if e.stream == stream]

    def occupancy_profile(self, stream: str) -> list[tuple[float, int]]:
        """Piecewise-constant FIFO occupancy: ``(time, occupancy)`` steps.

        Writes increment, reads decrement; events are sorted by time with
        reads applied before writes at equal timestamps (a token cannot be
        read and still occupy its slot).
        """
        deltas: list[tuple[float, int, int]] = []
        for e in self.for_stream(stream):
            if e.kind == "write":
                deltas.append((e.time, 1, +1))
            elif e.kind == "read":
                deltas.append((e.time, 0, -1))
        deltas.sort()
        profile: list[tuple[float, int]] = []
        occ = 0
        for time, _, d in deltas:
            occ += d
            if profile and profile[-1][0] == time:
                profile[-1] = (time, occ)
            else:
                profile.append((time, occ))
        return profile

    def occupancy_at(self, stream: str, time: float) -> int:
        """FIFO occupancy of ``stream`` at cycle ``time``."""
        profile = self.occupancy_profile(stream)
        times = [t for t, _ in profile]
        idx = bisect_right(times, time) - 1
        return profile[idx][1] if idx >= 0 else 0

    def first_output_time(self, stream: str) -> float | None:
        """Cycle of the first read committed on ``stream`` (fill latency probe)."""
        for e in self.events:
            if e.stream == stream and e.kind == "read":
                return e.time
        return None

    def timeline(self, limit: int = 50) -> str:
        """Human-readable event log (first ``limit`` events by time)."""
        ordered = sorted(self.events, key=lambda e: (e.time, e.kind))[:limit]
        lines = [
            f"{e.time:>10.1f}  {e.kind:<5}  {e.process:<24} {e.stream}"
            for e in ordered
        ]
        header = f"{'cycle':>10}  {'kind':<5}  {'process':<24} stream"
        return "\n".join([header, *lines])
