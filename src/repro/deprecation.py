"""Once-per-process deprecation warnings for legacy entry points.

The unified pricing API (:mod:`repro.api`) supersedes several of the
direct entry points that grew alongside it — the free-function kernels
callers used to reach into before :class:`~repro.api.PricingSession`
existed.  Those entry points keep working (thin shims over the same
implementations, results bit-identical), but each one announces its
replacement with a :class:`DeprecationWarning` **exactly once per
process**: a risk run looping a shimmed function over ten thousand
scenarios should not print ten thousand warnings.

This module is intentionally dependency-free (only :mod:`warnings`), so
both :mod:`repro.core` and :mod:`repro.api` can import it without
creating a cycle.
"""

from __future__ import annotations

import warnings

__all__ = ["deprecated_call", "reset_deprecation_registry"]

#: Keys that have already warned this process.
_EMITTED: set[str] = set()


def deprecated_call(key: str, message: str, *, stacklevel: int = 3) -> None:
    """Emit ``DeprecationWarning`` for ``key`` unless it already fired.

    Parameters
    ----------
    key:
        Stable identifier of the deprecated entry point (conventionally
        its dotted path).  Each key warns at most once per process.
    message:
        The warning text; name the :mod:`repro.api` replacement.
    stacklevel:
        Forwarded to :func:`warnings.warn`; the default of 3 points at
        the caller of the deprecated shim.
    """
    if key in _EMITTED:
        return
    _EMITTED.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)


def reset_deprecation_registry() -> None:
    """Forget which keys have warned (test isolation helper)."""
    _EMITTED.clear()
