"""The five FPGA CDS engine variants of the paper.

Each engine prices the same option batch against the same rate curves and
returns both *numerical results* (par spreads, verified against the
reference pricer) and *performance results* (simulated cycles, wall-clock
seconds at the kernel clock including PCIe, options/second).

Variants, in the order Table I introduces them:

=====================================  =========================================
:class:`~repro.engines.xilinx_baseline.XilinxBaselineEngine`
                                       The open-source Vitis library engine:
                                       phases sequential, hazard accumulation
                                       at II=7, invoked per option.
:class:`~repro.engines.dataflow_engine.OptimisedDataflowEngine`
                                       Concurrent dataflow stages (Fig. 2),
                                       Listing-1 accumulators, but the region
                                       still restarts per option.
:class:`~repro.engines.interoption.InterOptionDataflowEngine`
                                       Free-running region streaming the whole
                                       option batch.
:class:`~repro.engines.vectorized.VectorizedDataflowEngine`
                                       Hazard/interpolation stages replicated
                                       behind round-robin schedulers (Fig. 3).
:class:`~repro.engines.multi_engine.MultiEngineSystem`
                                       N engines with option-chunk
                                       decomposition (Table II).
=====================================  =========================================
"""

from repro.engines.base import CDSEngineBase, EngineResult
from repro.engines.xilinx_baseline import XilinxBaselineEngine
from repro.engines.dataflow_engine import OptimisedDataflowEngine
from repro.engines.interoption import InterOptionDataflowEngine
from repro.engines.vectorized import VectorizedDataflowEngine
from repro.engines.multi_engine import MultiEngineSystem

__all__ = [
    "CDSEngineBase",
    "EngineResult",
    "XilinxBaselineEngine",
    "OptimisedDataflowEngine",
    "InterOptionDataflowEngine",
    "VectorizedDataflowEngine",
    "MultiEngineSystem",
]
