"""Common engine interface and result type."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.schedule import PaymentSchedule, build_schedule
from repro.core.types import CDSOption
from repro.dataflow.engine import SimulationResult
from repro.errors import ValidationError
from repro.hls.resources import ResourceUsage
from repro.workloads.scenarios import PaperScenario

__all__ = ["EngineResult", "CDSEngineBase", "EngineWorkload"]


@dataclass(frozen=True)
class EngineWorkload:
    """One priced batch: options with precomputed schedules plus curves.

    The dataflow kernels receive this object so every stage shares the same
    precomputed schedules — mirroring the FPGA engines, where each stage "is
    aware of the overall number of options" (paper Section III).
    """

    options: list[CDSOption]
    schedules: list[PaymentSchedule]
    yield_curve: YieldCurve
    hazard_curve: HazardCurve

    @classmethod
    def build(
        cls,
        options: list[CDSOption],
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
    ) -> "EngineWorkload":
        """Precompute schedules for ``options``."""
        if not options:
            raise ValidationError("workload needs at least one option")
        return cls(
            options=options,
            schedules=[build_schedule(o) for o in options],
            yield_curve=yield_curve,
            hazard_curve=hazard_curve,
        )

    @property
    def n_options(self) -> int:
        """Batch size."""
        return len(self.options)

    @property
    def total_time_points(self) -> int:
        """Sum of schedule lengths over the batch."""
        return sum(len(s) for s in self.schedules)


@dataclass(frozen=True)
class EngineResult:
    """Numerical and performance outcome of one engine run.

    Attributes
    ----------
    engine:
        Engine variant name.
    spreads_bps:
        Par spreads in input order (verified against the reference pricer
        by the integration tests).
    kernel_cycles:
        Simulated cycles on the FPGA fabric (compute + invocation
        overheads; excludes PCIe).
    pcie_seconds:
        Host transfer time added on top (paper results include it).
    seconds:
        End-to-end seconds: kernel cycles at the kernel clock + PCIe.
    options_per_second:
        The paper's headline metric.
    invocations:
        Kernel invocations performed (per-option engines: one per option).
    n_engines:
        Engine instances used (1 except for the multi-engine system).
    resources:
        Estimated fabric resources of the deployed configuration.
    sim_results:
        Raw discrete-event results (one per invocation or engine), for
        stall/utilisation analysis.  Excluded from equality comparisons.
    """

    engine: str
    spreads_bps: np.ndarray
    kernel_cycles: float
    pcie_seconds: float
    seconds: float
    options_per_second: float
    invocations: int
    n_engines: int
    resources: ResourceUsage
    sim_results: list[SimulationResult] = field(default_factory=list, compare=False)

    def summary(self) -> str:
        """One-line result summary."""
        return (
            f"{self.engine}: {self.options_per_second:,.0f} options/s "
            f"({len(self.spreads_bps)} options, {self.kernel_cycles:,.0f} cycles, "
            f"{self.n_engines} engine(s), {self.invocations} invocation(s))"
        )


class CDSEngineBase(abc.ABC):
    """Shared machinery for all engine variants.

    Subclasses implement :meth:`_execute` returning
    ``(spreads, kernel_cycles, invocations, sim_results)``; the base class
    handles workload assembly, PCIe accounting and rate computation.

    Parameters
    ----------
    scenario:
        Experimental configuration and calibration constants.
    """

    #: Variant name; subclasses override.
    name = "abstract"

    def __init__(self, scenario: PaperScenario | None = None) -> None:
        self.scenario = scenario if scenario is not None else PaperScenario()

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        """Run the engine over ``workload``.

        Returns
        -------
        (spreads_bps, kernel_cycles, invocations, sim_results)
        """

    @abc.abstractmethod
    def resources(self) -> ResourceUsage:
        """Estimated fabric resources of one deployed instance."""

    @property
    def n_engines(self) -> int:
        """Engine instances (overridden by the multi-engine system)."""
        return 1

    # ------------------------------------------------------------------
    def run(
        self,
        options: list[CDSOption] | None = None,
        yield_curve: YieldCurve | None = None,
        hazard_curve: HazardCurve | None = None,
    ) -> EngineResult:
        """Price a batch and report throughput.

        All arguments default to the scenario's workload, so
        ``engine.run()`` reproduces the paper configuration.
        """
        sc = self.scenario
        options = options if options is not None else sc.options()
        yc = yield_curve if yield_curve is not None else sc.yield_curve()
        hc = hazard_curve if hazard_curve is not None else sc.hazard_curve()
        workload = EngineWorkload.build(options, yc, hc)

        spreads, cycles, invocations, sims = self._execute(workload)
        if spreads.shape != (workload.n_options,):
            raise ValidationError(
                f"{self.name}: expected {workload.n_options} spreads, "
                f"got shape {spreads.shape}"
            )
        pcie = sc.pcie_seconds(workload.n_options)
        seconds = sc.clock.seconds(cycles) + pcie
        return EngineResult(
            engine=self.name,
            spreads_bps=spreads,
            kernel_cycles=cycles,
            pcie_seconds=pcie,
            seconds=seconds,
            options_per_second=workload.n_options / seconds,
            invocations=invocations,
            n_engines=self.n_engines,
            resources=self.resources().scale(self.n_engines),
            sim_results=sims,
        )
