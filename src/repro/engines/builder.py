"""Dataflow network construction and resource estimation.

:func:`build_dataflow_network` wires the stage kernels of
:mod:`repro.engines.stages` into a :class:`~repro.dataflow.engine.Simulator`
— the programmatic form of paper Fig. 2 (and, with ``replication > 1``, of
Fig. 3's round-robin clusters).  The same builder serves the per-option
restart engine (one option index) and the free-running engines (all
indices).

:func:`engine_resources` estimates the fabric cost of one engine instance.
Per-stage operator sums follow the HLS op table; the per-engine
``_INFRASTRUCTURE`` constant covers what op-level sums cannot see (AXI/HBM
interface adapters, dataflow FIFOs, control FSMs, routing margin) and is
sized so that the vectorised engine reproduces the paper's observed fit of
**five** engines on the U280 — the op-level sum alone is a lower bound that
would misleadingly suggest ten or more.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.engine import Simulator
from repro.dataflow.stream import Stream
from repro.engines.base import EngineWorkload
from repro.engines.stages import StageModels, port_contention_factor
from repro.errors import ValidationError
from repro.hls.ops import op
from repro.hls.resources import ResourceUsage
from repro.workloads.scenarios import PaperScenario

__all__ = ["build_dataflow_network", "engine_resources", "NetworkHandles"]


@dataclass
class NetworkHandles:
    """Handles into a built network the caller needs afterwards."""

    results_sink: dict[int, float]
    result_stream: Stream


def build_dataflow_network(
    sim: Simulator,
    wl: EngineWorkload,
    indices: list[int],
    models: StageModels,
    *,
    stream_depth: int = 4,
    replication: int = 1,
    uram_ports: int = 2,
) -> NetworkHandles:
    """Populate ``sim`` with the full CDS dataflow network.

    Parameters
    ----------
    sim:
        Fresh simulator to build into.
    wl:
        Workload (options, schedules, curves).
    indices:
        Option indices this invocation processes (``[i]`` for per-option
        restart, ``range(n)`` for free-running).
    models:
        Stage timing models.
    stream_depth:
        FIFO depth for per-time-point streams.
    replication:
        Replica count for the hazard and interpolation stages (1 = Fig. 2,
        >1 = Fig. 3).
    uram_ports:
        Read ports of the URAM holding each rate table (shared by
        replicas).
    """
    if replication < 1:
        raise ValidationError(f"replication must be >= 1, got {replication}")
    d = stream_depth
    n_opts = len(indices)

    # Streams ----------------------------------------------------------
    tg_hz = sim.stream("tg->hazard", depth=d)
    tg_in = sim.stream("tg->interp", depth=d)
    tg_par = sim.stream("tg->combine.params", depth=max(2, n_opts), per_option=True)
    hz_dp = sim.stream("hazard->defprob", depth=d)
    dp_tee = sim.stream("defprob->teeS", depth=d)
    in_dc = sim.stream("interp->discount", depth=d)
    dc_tee = sim.stream("discount->teeD", depth=d)
    s_pay = sim.stream("teeS->payment", depth=d)
    s_poff = sim.stream("teeS->payoff", depth=d)
    s_acc = sim.stream("teeS->accrual", depth=d)
    d_pay = sim.stream("teeD->payment", depth=d)
    d_poff = sim.stream("teeD->payoff", depth=d)
    d_acc = sim.stream("teeD->accrual", depth=d)
    leg_pay = sim.stream("payment->accum", depth=d)
    leg_poff = sim.stream("payoff->accum", depth=d)
    leg_acc = sim.stream("accrual->accum", depth=d)
    c_pay = sim.stream("accum.payment->combine", depth=2, per_option=True)
    c_poff = sim.stream("accum.payoff->combine", depth=2, per_option=True)
    c_acc = sim.stream("accum.accrual->combine", depth=2, per_option=True)
    results = sim.stream("combine->drain", depth=max(2, n_opts), per_option=True)

    # Front of the graph.  Every process pre-declares its stream
    # connections so the topology (paper Figs. 2/3) is complete before the
    # network ever runs.
    sim.process(
        "timegrid",
        models.timegrid(wl, indices, tg_hz, tg_in, tg_par),
        writes=(tg_hz, tg_in, tg_par),
    )

    # Hazard / interpolation paths (replicated or not) -------------------
    if replication == 1:
        sim.process(
            "hazard_acc",
            models.hazard_accumulate(wl, indices, tg_hz, hz_dp),
            group="hazard",
            reads=(tg_hz,),
            writes=(hz_dp,),
        )
        sim.process(
            "interp",
            models.interpolate(wl, indices, tg_in, in_dc),
            group="interp",
            reads=(tg_in,),
            writes=(in_dc,),
        )
    else:
        factor = port_contention_factor(replication, uram_ports)
        hz_ins = tuple(
            sim.stream(f"rr->hazard[{k}]", depth=d) for k in range(replication)
        )
        hz_outs = tuple(
            sim.stream(f"hazard[{k}]->rr", depth=d) for k in range(replication)
        )
        sim.process(
            "hazard_rr_sched",
            models.rr_distribute(wl, indices, tg_hz, hz_ins),
            reads=(tg_hz,),
            writes=hz_ins,
        )
        for k in range(replication):
            sim.process(
                f"hazard_acc[{k}]",
                models.hazard_accumulate(
                    wl,
                    indices,
                    hz_ins[k],
                    hz_outs[k],
                    stride=replication,
                    offset=k,
                    port_factor=factor,
                ),
                group="hazard",
                reads=(hz_ins[k],),
                writes=(hz_outs[k],),
            )
        sim.process(
            "hazard_rr_collect",
            models.rr_collect(wl, indices, hz_outs, hz_dp),
            reads=hz_outs,
            writes=(hz_dp,),
        )

        in_ins = tuple(
            sim.stream(f"rr->interp[{k}]", depth=d) for k in range(replication)
        )
        in_outs = tuple(
            sim.stream(f"interp[{k}]->rr", depth=d) for k in range(replication)
        )
        sim.process(
            "interp_rr_sched",
            models.rr_distribute(wl, indices, tg_in, in_ins),
            reads=(tg_in,),
            writes=in_ins,
        )
        for k in range(replication):
            sim.process(
                f"interp[{k}]",
                models.interpolate(
                    wl,
                    indices,
                    in_ins[k],
                    in_outs[k],
                    stride=replication,
                    offset=k,
                    port_factor=factor,
                ),
                group="interp",
                reads=(in_ins[k],),
                writes=(in_outs[k],),
            )
        sim.process(
            "interp_rr_collect",
            models.rr_collect(wl, indices, in_outs, in_dc),
            reads=in_outs,
            writes=(in_dc,),
        )

    # Remainder of the graph ---------------------------------------------
    sim.process(
        "defprob",
        models.default_probability(wl, indices, hz_dp, dp_tee),
        reads=(hz_dp,),
        writes=(dp_tee,),
    )
    sim.process(
        "discount",
        models.discount(wl, indices, in_dc, dc_tee),
        reads=(in_dc,),
        writes=(dc_tee,),
    )
    sim.process(
        "tee_S",
        models.tee(wl, indices, dp_tee, (s_pay, s_poff, s_acc)),
        reads=(dp_tee,),
        writes=(s_pay, s_poff, s_acc),
    )
    sim.process(
        "tee_D",
        models.tee(wl, indices, dc_tee, (d_pay, d_poff, d_acc)),
        reads=(dc_tee,),
        writes=(d_pay, d_poff, d_acc),
    )
    sim.process(
        "payment",
        models.payment(wl, indices, s_pay, d_pay, leg_pay),
        reads=(s_pay, d_pay),
        writes=(leg_pay,),
    )
    sim.process(
        "payoff",
        models.payoff(wl, indices, s_poff, d_poff, leg_poff),
        reads=(s_poff, d_poff),
        writes=(leg_poff,),
    )
    sim.process(
        "accrual",
        models.accrual(wl, indices, s_acc, d_acc, leg_acc),
        reads=(s_acc, d_acc),
        writes=(leg_acc,),
    )
    sim.process(
        "accum_payment",
        models.leg_accumulator(wl, indices, leg_pay, c_pay),
        reads=(leg_pay,),
        writes=(c_pay,),
    )
    sim.process(
        "accum_payoff",
        models.leg_accumulator(wl, indices, leg_poff, c_poff),
        reads=(leg_poff,),
        writes=(c_poff,),
    )
    sim.process(
        "accum_accrual",
        models.leg_accumulator(wl, indices, leg_acc, c_acc),
        reads=(leg_acc,),
        writes=(c_acc,),
    )
    sim.process(
        "combine",
        models.combine(wl, indices, tg_par, c_pay, c_poff, c_acc, results),
        reads=(tg_par, c_pay, c_poff, c_acc),
        writes=(results,),
    )
    sink: dict[int, float] = {}
    sim.process(
        "drain",
        models.result_drain(n_opts, results, sink),
        reads=(results,),
    )
    return NetworkHandles(results_sink=sink, result_stream=results)


# ======================================================================
# Resource estimation
# ======================================================================

#: Per-engine infrastructure beyond the op-level stage sums: AXI/HBM
#: interface adapters, DATAFLOW FIFO fabric, control FSMs and the routing
#: margin of a timing-closed build.  Sized so the vectorised engine's total
#: (~179 k LUT) reproduces the paper's observed capacity of five engines on
#: the U280 under its 90% routable ceiling (a sixth exceeds the LUT budget).
_INFRASTRUCTURE = ResourceUsage(lut=80_000, ff=110_000, bram36=32, uram=0, dsp=12)


def _stage_sum(names: list[str]) -> ResourceUsage:
    total = ResourceUsage()
    for n in names:
        spec = op(n)
        total = total + ResourceUsage(lut=spec.lut, ff=spec.ff, dsp=spec.dsp)
    return total


def engine_resources(
    scenario: PaperScenario,
    *,
    replication: int = 1,
    interleaved: bool = True,
) -> ResourceUsage:
    """Estimated fabric resources of one engine instance.

    Composition: replicated hazard accumulators (one partial-sum adder per
    Listing-1 lane when interleaved, one otherwise), replicated
    interpolators, the fixed stage set, per-table URAM copies (one copy
    serves ``effective_uram_ports`` replicas), and the per-engine
    infrastructure constant.  ``scenario.precision`` selects the operator
    family; single-precision operators are markedly cheaper, which is how
    the reduced-precision study fits more engines per card.
    """
    if replication < 1:
        raise ValidationError(f"replication must be >= 1, got {replication}")

    p = "d" if scenario.precision == "double" else "s"
    lanes = op(p + "add").latency
    hazard_unit = _stage_sum([p + "add"] * (lanes if interleaved else 1))
    interp_unit = _stage_sum(
        [p + "div", p + "mul", p + "sub", p + "sub", p + "add", p + "cmp"]
    )
    fixed = (
        _stage_sum([p + "exp", p + "sub"])  # defprob
        + _stage_sum([p + "exp", p + "mul"])  # discount
        + _stage_sum([p + "mul", p + "mul"])  # payment
        + _stage_sum([p + "mul"])  # payoff
        + _stage_sum([p + "mul", p + "mul"])  # accrual
        + _stage_sum([p + "add"] * (3 * lanes))  # interleaved leg accumulators
        + _stage_sum([p + "div", p + "mul", p + "sub"])  # combine
    )
    entry_bytes = 16 if scenario.precision == "double" else 8
    table_bytes = scenario.n_rates * entry_bytes  # (time, value) per entry
    copies = -(-replication // scenario.effective_uram_ports)
    tables = ResourceUsage.for_table_bytes(table_bytes, in_uram=True).scale(2 * copies)

    total = (
        hazard_unit.scale(replication)
        + interp_unit.scale(replication)
        + fixed
        + tables
        + _INFRASTRUCTURE
    )
    return total
