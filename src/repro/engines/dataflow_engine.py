"""Variant 2: the optimised dataflow engine with per-option region restart.

"We developed a new version of the engine using an explicit dataflow style
via the HLS DATAFLOW pragma ... distinct dataflow regions are declared as
functions, operating concurrently and connected to other dataflow functions
via HLS streams" (paper Section III).  The hazard accumulation uses the
Listing-1 interleaved form (II=1).

The remaining inefficiency — the reason this variant is only ~2x the
baseline rather than ~4x — is that "the dataflow region shuts-down and
restarts between options, and in addition to the performance overhead of
starting and stopping the dataflow region, the pipelines were also
continually filling and draining."  The engine therefore runs one simulator
invocation *per option*, paying the host-invocation overhead and the
pipeline fill each time.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.engine import SimulationResult, Simulator
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.builder import build_dataflow_network, engine_resources
from repro.engines.stages import StageModels
from repro.engines.xilinx_baseline import _sink_to_array
from repro.hls.resources import ResourceUsage

__all__ = ["OptimisedDataflowEngine"]


class OptimisedDataflowEngine(CDSEngineBase):
    """Concurrent dataflow stages, restarted per option (Table I row 3)."""

    name = "optimised_dataflow"

    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        models = StageModels.for_scenario(self.scenario, interleaved=True)
        n = workload.n_options
        merged: dict[int, float] = {}
        sims: list[SimulationResult] = []
        total_cycles = 0.0
        for oi in range(n):
            sim = Simulator(f"optimised_dataflow[{oi}]")
            handles = build_dataflow_network(
                sim,
                workload,
                [oi],
                models,
                stream_depth=self.scenario.stream_depth,
                replication=1,
                uram_ports=self.scenario.effective_uram_ports,
            )
            res = sim.run()
            sims.append(res)
            total_cycles += (
                res.makespan_cycles + self.scenario.invocation_overhead_cycles
            )
            # Per-invocation sinks are keyed by the real option index.
            merged.update(handles.results_sink)
        spreads = _sink_to_array(merged, n, self.name)
        return spreads, total_cycles, n, sims

    def resources(self) -> ResourceUsage:
        """Single hazard/interp units, interleaved accumulators, FIFOs."""
        return engine_resources(self.scenario, replication=1, interleaved=True)
