"""Variant 3: the free-running inter-option dataflow engine.

"We modified the engine to run continually between options.  This required
changing the input and output option parameters to be streams, rather than
individual scalar values, and also involved each dataflow stage being aware
of the overall number of options" (paper Section III).  One kernel
invocation processes the entire batch: the invocation overhead and the
pipeline fill are paid once, and throughput settles at the bottleneck
stage's steady-state rate — here the fixed-bound interpolation table scan.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.engine import SimulationResult, Simulator
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.builder import build_dataflow_network, engine_resources
from repro.engines.stages import StageModels
from repro.engines.xilinx_baseline import _sink_to_array
from repro.hls.resources import ResourceUsage

__all__ = ["InterOptionDataflowEngine", "run_streaming"]


def run_streaming(
    scenario,
    workload: EngineWorkload,
    indices: list[int],
    *,
    replication: int,
    sim_name: str,
) -> tuple[dict[int, float], SimulationResult]:
    """One free-running invocation over ``indices``.

    Shared by the inter-option engine (``replication=1``), the vectorised
    engine (``replication=k``) and each engine of the multi-engine system
    (chunked indices).  Returns the result sink and the simulation result;
    the caller adds invocation overhead.
    """
    models = StageModels.for_scenario(scenario, interleaved=True)
    sim = Simulator(sim_name)
    handles = build_dataflow_network(
        sim,
        workload,
        indices,
        models,
        stream_depth=scenario.stream_depth,
        replication=replication,
        uram_ports=scenario.effective_uram_ports,
    )
    res = sim.run()
    return handles.results_sink, res


class InterOptionDataflowEngine(CDSEngineBase):
    """Free-running dataflow across the whole batch (Table I row 4)."""

    name = "dataflow_interoption"

    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        n = workload.n_options
        sink, res = run_streaming(
            self.scenario,
            workload,
            list(range(n)),
            replication=1,
            sim_name="dataflow_interoption",
        )
        cycles = res.makespan_cycles + self.scenario.invocation_overhead_cycles
        spreads = _sink_to_array(sink, n, self.name)
        return spreads, cycles, 1, [res]

    def resources(self) -> ResourceUsage:
        """Same fabric as the per-option dataflow engine (control differs)."""
        return engine_resources(self.scenario, replication=1, interleaved=True)
