"""Variant 5: scaling up the number of CDS engines (paper Section IV).

"We scaled up the number of CDS engines on the FPGA, being able to fit five
onto the Alveo U280.  There are no dependencies between calculations
involving different options, and as such we decomposed based upon the
options themselves, splitting the entire set up into N chunks ... All
engines require the full interest and hazard rate data, which is read in
upon initialisation of the engine and stored in UltraRAM."

Model: each engine instance runs the vectorised engine's free-running
network over its contiguous option chunk (independent discrete-event
simulations — the chunks share no data); the batch completes when the
slowest chunk finishes, stretched by a shared-interface contention factor
(all engines arbitrate for the same HBM/PCIe shell):

``makespan(n) = max_chunk_makespan * (1 + contention * (n - 1))``

Construction validates the floorplan: requesting more engines than fit
under the device's routable ceiling raises
:class:`~repro.errors.ResourceError` (six of the paper's engines do not fit
— that is why Table II stops at five).
"""

from __future__ import annotations

import numpy as np

from repro.cpu.engine import chunk_options
from repro.dataflow.engine import SimulationResult
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.builder import engine_resources
from repro.engines.interoption import run_streaming
from repro.engines.xilinx_baseline import _sink_to_array
from repro.errors import ValidationError
from repro.fpga.floorplan import Floorplan
from repro.hls.resources import ResourceUsage

__all__ = ["MultiEngineSystem"]


class MultiEngineSystem(CDSEngineBase):
    """N vectorised engines with option-chunk decomposition (Table II).

    Parameters
    ----------
    scenario:
        Experimental configuration.
    n_engines:
        Engine instances to deploy; validated against the device floorplan
        at construction.
    """

    name = "multi_engine"

    def __init__(self, scenario=None, *, n_engines: int = 1) -> None:
        super().__init__(scenario)
        if n_engines < 1:
            raise ValidationError(f"n_engines must be >= 1, got {n_engines}")
        self._n_engines = n_engines
        # Validates the fit; raises ResourceError when the count is too
        # large for the device (e.g. 6 paper engines on the U280).
        self.floorplan = Floorplan(
            device=self.scenario.device,
            engine_resources=self.resources(),
            n_engines=n_engines,
        )
        self.name = f"multi_engine[{n_engines}]"

    @property
    def n_engines(self) -> int:
        """Deployed engine instances."""
        return self._n_engines

    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        n = workload.n_options
        indices = list(range(n))
        index_chunks = chunk_options(indices, self._n_engines)

        merged: dict[int, float] = {}
        sims: list[SimulationResult] = []
        worst = 0.0
        for ei, chunk in enumerate(index_chunks):
            sink, res = run_streaming(
                self.scenario,
                workload,
                chunk,
                replication=self.scenario.replication_factor,
                sim_name=f"engine[{ei}]",
            )
            merged.update(sink)
            sims.append(res)
            worst = max(worst, res.makespan_cycles)

        active = len(index_chunks)
        contention = 1.0 + self.scenario.multi_engine_contention * (active - 1)
        cycles = worst * contention + self.scenario.invocation_overhead_cycles
        spreads = _sink_to_array(merged, n, self.name)
        return spreads, cycles, active, sims

    def resources(self) -> ResourceUsage:
        """One engine instance (the base class scales by ``n_engines``)."""
        return engine_resources(
            self.scenario,
            replication=self.scenario.replication_factor,
            interleaved=True,
        )

    def power_watts(self) -> float:
        """Card power for this configuration (Table II column 3)."""
        return self.scenario.fpga_power.watts(self._n_engines)
