"""Dataflow stage kernels (the black boxes of paper Fig. 2).

Each kernel is a generator for the discrete-event simulator: it computes the
*functional* value of its stage with ordinary floating-point arithmetic
(bit-compatible with the reference pricer) while consuming *cycles*
according to the HLS timing models.  The same kernels serve the
per-option-restart engine (passed a single option index) and the
free-running engines (passed the whole batch), exactly as the paper's HLS
functions were made "aware of the overall number of options".

Stage inventory and the streams between them::

    timegrid --(t,dt)--> hazard_acc --(Lambda,dt)--> defprob --(S,dS,dt)--> tee_S
    timegrid --(t)-----> interp -----(t,r)---------> discount --(D)-------> tee_D
    tee_S/tee_D --> payment --> acc_payment \\
    tee_S/tee_D --> payoff  --> acc_payoff   >--> combine --> results
    tee_S/tee_D --> accrual --> acc_accrual /

Red (per-option) tokens: option parameters into ``combine`` and the three
leg sums; blue (per-time-point) tokens: everything else.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dataflow.process import Delay, Kernel, Read, Write
from repro.dataflow.stream import Stream
from repro.engines.base import EngineWorkload
from repro.errors import ValidationError
from repro.hls.accumulator import AccumulatorModel
from repro.hls.interpolation import InterpolatorModel
from repro.hls.ops import op
from repro.workloads.scenarios import PaperScenario

__all__ = ["StageModels", "port_contention_factor"]

#: Latency of the time-grid address arithmetic.
GRID_LATENCY = 4.0


def port_contention_factor(replicas: int, ports: int) -> float:
    """Slow-down of each replica's table scan from shared URAM ports.

    ``replicas`` units round-robin over a table whose memory serves
    ``ports`` reads per cycle; past ``ports`` concurrent scanners each scan
    is stretched by ``replicas / ports``.  This is the mechanism that caps
    the paper's 6-fold replication at the observed ~2x gain with dual-ported
    URAM.
    """
    if replicas < 1 or ports < 1:
        raise ValidationError("replicas and ports must be >= 1")
    return max(1.0, replicas / ports)


@dataclass(frozen=True)
class StageModels:
    """Bundle of timing models shared by a family of stage kernels.

    Parameters
    ----------
    accumulator:
        Hazard/leg accumulation model (naive II=7 or Listing-1 II=1).
    interpolator:
        Rate-table interpolation unit model.
    exp_latency / mul_latency / div_latency / add_latency:
        Operator latencies from the HLS table.
    """

    accumulator: AccumulatorModel
    interpolator: InterpolatorModel
    exp_latency: float
    mul_latency: float
    div_latency: float
    add_latency: float

    @classmethod
    def for_scenario(
        cls, scenario: PaperScenario, *, interleaved: bool
    ) -> "StageModels":
        """Models for the given scenario; ``interleaved`` picks Listing 1.

        ``scenario.precision`` selects the operator family: double-precision
        (the paper's engines) or single-precision (the reduced-precision
        study) — the latter shortens the adder latency, which both lowers
        the naive accumulation II and shrinks the Listing-1 lane count.
        """
        prefix = "d" if scenario.precision == "double" else "s"
        add = op(prefix + "add")
        return cls(
            accumulator=AccumulatorModel(
                interleaved=interleaved,
                lanes=add.latency,
                add_latency=add.latency,
            ),
            interpolator=InterpolatorModel(table_length=scenario.n_rates),
            exp_latency=float(op(prefix + "exp").latency),
            mul_latency=float(op(prefix + "mul").latency),
            div_latency=float(op(prefix + "div").latency),
            add_latency=float(add.latency),
        )

    # ==================================================================
    # Stage kernels
    # ==================================================================
    def timegrid(
        self,
        wl: EngineWorkload,
        indices: list[int],
        out_haz: Stream,
        out_int: Stream,
        out_params: Stream,
    ) -> Kernel:
        """Generate the distinct time points of each option (Fig. 1 step 1).

        Emits ``(t_i, dt_i)`` down the hazard path, ``t_i`` down the
        interpolation path and one ``(index, recovery)`` parameter token per
        option for the combiner.
        """
        for oi in indices:
            sched = wl.schedules[oi]
            yield Write(
                out_params,
                (oi, wl.options[oi].recovery_rate),
                delay=GRID_LATENCY,
            )
            for t, dt in zip(sched.times, sched.accruals):
                yield Write(out_haz, (float(t), float(dt)), delay=GRID_LATENCY)
                yield Write(out_int, float(t), delay=GRID_LATENCY)
                yield Delay(1)

    def hazard_accumulate(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        out: Stream,
        *,
        stride: int = 1,
        offset: int = 0,
        port_factor: float = 1.0,
    ) -> Kernel:
        """Accumulate the hazard table up to each time point.

        Consumes ``(t, dt)``; produces ``(Lambda(t), dt)``.  The per-point
        cycle cost is the accumulation model applied to the number of table
        entries at or before ``t`` — II=7 each for the naive loop, ~II=1
        with Listing 1 — stretched by ``port_factor`` when replicas share
        URAM ports.  ``stride``/``offset`` implement round-robin replication
        (this replica handles points ``offset, offset+stride, ...`` of each
        option, matching Fig. 3's cyclic scheduler).
        """
        hc = wl.hazard_curve
        counter = 0  # global across options: the cyclic scheduler of Fig. 3
        for oi in indices:
            n_points = len(wl.schedules[oi])
            for _ in range(n_points):
                mine = counter % stride == offset
                counter += 1
                if not mine:
                    continue
                t, dt = yield Read(inp)
                n_entries = hc.accumulation_length(t)
                yield Delay(self.accumulator.cycles(n_entries) * port_factor)
                lam = hc.integrated(t)
                yield Write(out, (lam, dt), delay=self.add_latency)

    def default_probability(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        out: Stream,
    ) -> Kernel:
        """Survival/default from cumulative hazard (Fig. 1 step 2).

        Consumes ``(Lambda, dt)``; produces ``(S, dS, dt)`` where
        ``S = exp(-Lambda)`` and ``dS = S_prev - S`` (the probability of
        defaulting inside the period).  Stateful in ``S_prev`` per option.
        """
        import numpy as np

        for oi in indices:
            s_prev = 1.0
            for _ in range(len(wl.schedules[oi])):
                lam, dt = yield Read(inp)
                s = float(np.exp(-lam))
                ds = s_prev - s
                s_prev = s
                yield Write(
                    out, (s, ds, dt), delay=self.exp_latency + self.add_latency
                )
                yield Delay(1)

    def interpolate(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        out: Stream,
        *,
        stride: int = 1,
        offset: int = 0,
        port_factor: float = 1.0,
    ) -> Kernel:
        """Interpolate the interest-rate table at each time point.

        Consumes ``t``; produces ``(t, r(t))``.  The cycle cost is the
        fixed-bound table scan (see
        :class:`~repro.hls.interpolation.InterpolatorModel`), stretched by
        ``port_factor`` under replication.
        """
        yc = wl.yield_curve
        counter = 0  # global across options: the cyclic scheduler of Fig. 3
        for oi in indices:
            n_points = len(wl.schedules[oi])
            for _ in range(n_points):
                mine = counter % stride == offset
                counter += 1
                if not mine:
                    continue
                t = yield Read(inp)
                scan = self.interpolator.evaluation_cycles(yc.locate(t))
                arith = self.interpolator.arithmetic_latency
                yield Delay((scan - arith) * port_factor)
                r = yc.interpolate(t)
                yield Write(out, (t, r), delay=arith)

    def discount(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        out: Stream,
    ) -> Kernel:
        """Discount factor ``D = exp(-r * t)`` per time point."""
        import numpy as np

        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                t, r = yield Read(inp)
                d = float(np.exp(-r * t))
                yield Write(out, d, delay=self.mul_latency + self.exp_latency)
                yield Delay(1)

    def tee(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        outs: tuple[Stream, ...],
    ) -> Kernel:
        """Duplicate each token to several consumers (II=1).

        HLS streams are single-consumer, so fan-out needs an explicit
        duplication function — same constraint as our simulator.
        """
        total = sum(len(wl.schedules[oi]) for oi in indices)
        for _ in range(total):
            v = yield Read(inp)
            for o in outs:
                yield Write(o, v)
            yield Delay(1)

    def payment(
        self,
        wl: EngineWorkload,
        indices: list[int],
        in_s: Stream,
        in_d: Stream,
        out: Stream,
    ) -> Kernel:
        """Premium-leg contribution ``D * S * dt`` per time point."""
        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                s, _ds, dt = yield Read(in_s)
                d = yield Read(in_d)
                yield Write(out, d * s * dt, delay=2 * self.mul_latency)
                yield Delay(1)

    def payoff(
        self,
        wl: EngineWorkload,
        indices: list[int],
        in_s: Stream,
        in_d: Stream,
        out: Stream,
    ) -> Kernel:
        """Protection-leg contribution ``D * dS`` per time point
        (the loss-given-default factor is applied once in ``combine``)."""
        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                _s, ds, _dt = yield Read(in_s)
                d = yield Read(in_d)
                yield Write(out, d * ds, delay=self.mul_latency)
                yield Delay(1)

    def accrual(
        self,
        wl: EngineWorkload,
        indices: list[int],
        in_s: Stream,
        in_d: Stream,
        out: Stream,
    ) -> Kernel:
        """Accrued-premium contribution ``D * dS * dt / 2`` per time point."""
        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                _s, ds, dt = yield Read(in_s)
                d = yield Read(in_d)
                yield Write(out, d * ds * dt * 0.5, delay=2 * self.mul_latency)
                yield Delay(1)

    def leg_accumulator(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        out: Stream,
    ) -> Kernel:
        """Sum the per-point contributions of one leg into a per-option PV.

        Left-to-right accumulation (matching the reference pricer's
        association); timing follows the accumulation model: the naive loop
        accepts one value per 7 cycles, Listing 1 one per cycle plus a tail
        reduction per option.
        """
        acc = self.accumulator
        for oi in indices:
            n = len(wl.schedules[oi])
            total = 0.0
            for _ in range(n):
                v = yield Read(inp)
                total += v
                yield Delay(acc.ii)
            tail = max(0.0, acc.cycles(n) - n * acc.ii)
            yield Delay(tail)
            yield Write(out, total, delay=self.add_latency)

    def combine(
        self,
        wl: EngineWorkload,
        indices: list[int],
        in_params: Stream,
        in_pay: Stream,
        in_poff: Stream,
        in_acc: Stream,
        out: Stream,
    ) -> Kernel:
        """Combine the legs into the option's spread (Fig. 1 final step).

        ``spread_bps = 10_000 * (payoff_raw * (1 - R)) / (payment + accrual)``
        — the exact operation order of the reference pricer, so results are
        bit-identical.
        """
        from repro.core.pricing import BASIS_POINTS

        for _ in indices:
            oi, recovery = yield Read(in_params)
            pay = yield Read(in_pay)
            poff_raw = yield Read(in_poff)
            acc = yield Read(in_acc)
            protection = poff_raw * (1.0 - recovery)
            annuity = pay + acc
            if annuity <= 0.0 or not math.isfinite(annuity):
                raise ValidationError(
                    f"combine: non-positive annuity {annuity!r} for option {oi}"
                )
            spread = BASIS_POINTS * protection / annuity
            yield Write(
                out,
                (oi, spread),
                delay=self.div_latency + self.mul_latency,
            )
            yield Delay(2)

    def result_drain(
        self,
        count: int,
        inp: Stream,
        sink: dict[int, float],
    ) -> Kernel:
        """Collect ``(index, spread)`` results into ``sink``."""
        for _ in range(count):
            oi, spread = yield Read(inp)
            sink[int(oi)] = float(spread)
            yield Delay(1)

    # ==================================================================
    # Round-robin replication plumbing (Fig. 3)
    # ==================================================================
    def rr_distribute(
        self,
        wl: EngineWorkload,
        indices: list[int],
        inp: Stream,
        outs: tuple[Stream, ...],
    ) -> Kernel:
        """Cyclic scheduler: deal per-point tokens to replicas in order.

        The counter runs continuously across options so replica load stays
        balanced even when the per-option point count is not a multiple of
        the replica count.
        """
        k = len(outs)
        counter = 0
        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                v = yield Read(inp)
                yield Write(outs[counter % k], v)
                counter += 1
                yield Delay(1)

    def rr_collect(
        self,
        wl: EngineWorkload,
        indices: list[int],
        ins: tuple[Stream, ...],
        out: Stream,
    ) -> Kernel:
        """Cyclic collector: gather replica outputs preserving point order."""
        k = len(ins)
        counter = 0
        for oi in indices:
            for _ in range(len(wl.schedules[oi])):
                v = yield Read(ins[counter % k])
                counter += 1
                yield Write(out, v)
                yield Delay(1)
