"""Variant 4: the vectorised dataflow engine (paper Fig. 3).

"The hazard calculation and linear interpolations of Figure 2 involve
nested loops ... they require many cycles to produce a result for a single
time point.  Other dataflow stages ... can generate a result per cycle, but
as they depend upon data from such preceding stages, stalls frequently
occurred.  For that reason we replicated, or vectorised, those sub-functions
which perform the hazard calculation or interpolation functionality" —
six replicas each, fed round-robin by a cyclic scheduler and drained by a
cyclic collector so result ordering is maintained (paper Section III).

The paper observes that six-fold replication "doubled performance", not
six-folded it: each replica must read the shared rate tables, which live in
dual-ported URAM ("additional dual-ported URAM storing the hazard and
interest rate constant data").  Two ports serve at most two concurrent
table scans per cycle, capping the cluster's effective speedup near 2x —
the mechanism modelled by
:func:`repro.engines.stages.port_contention_factor` and explored by the
replication-sweep ablation benchmark.
"""

from __future__ import annotations

import numpy as np

from repro.dataflow.engine import SimulationResult
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.builder import engine_resources
from repro.engines.interoption import run_streaming
from repro.engines.xilinx_baseline import _sink_to_array
from repro.hls.resources import ResourceUsage

__all__ = ["VectorizedDataflowEngine"]


class VectorizedDataflowEngine(CDSEngineBase):
    """Replicated hazard/interpolation clusters, free-running (Table I row 5).

    Parameters
    ----------
    scenario:
        Experimental configuration; ``scenario.replication_factor`` sets the
        replica count (paper: 6).
    """

    name = "vectorised_dataflow"

    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        n = workload.n_options
        sink, res = run_streaming(
            self.scenario,
            workload,
            list(range(n)),
            replication=self.scenario.replication_factor,
            sim_name="vectorised_dataflow",
        )
        cycles = res.makespan_cycles + self.scenario.invocation_overhead_cycles
        spreads = _sink_to_array(sink, n, self.name)
        return spreads, cycles, 1, [res]

    def resources(self) -> ResourceUsage:
        """Replicated units plus per-replica-pair URAM table copies."""
        return engine_resources(
            self.scenario,
            replication=self.scenario.replication_factor,
            interleaved=True,
        )
