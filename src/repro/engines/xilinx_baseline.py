"""Variant 1: the Xilinx Vitis open-source CDS engine (paper Fig. 1).

Design decisions modelled (paper Sections II.A and III):

* The engine "processed one option at a time, where input values for an
  option are loaded, the calculations then undertaken for each time point,
  and then the spread returned" — one kernel invocation per option, each
  paying the host-invocation overhead.
* "Whilst the Xilinx implementation pipelines the individual loops it does
  not dataflow these" — the phases of Fig. 1 run **sequentially**; the
  engine is a single process whose per-option cycles are the *sum* of the
  phase costs.
* "The pipelined loop had an Initiation Interval of seven" — every
  accumulating loop (the hazard integration inside the default-probability
  phase, and the three leg accumulations) runs at II=7 through the
  double-precision adder dependency.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dataflow.engine import SimulationResult, Simulator
from repro.dataflow.graph import DataflowGraph, GraphEdge, GraphNode
from repro.dataflow.process import Delay, Kernel
from repro.engines.base import CDSEngineBase, EngineWorkload
from repro.engines.builder import engine_resources
from repro.engines.stages import GRID_LATENCY, StageModels
from repro.errors import ValidationError
from repro.hls.resources import ResourceUsage

__all__ = ["XilinxBaselineEngine", "baseline_flowchart"]


def baseline_flowchart() -> DataflowGraph:
    """Static structural graph of the baseline engine (paper Fig. 1).

    The boxes are the sequential phases; the single chain of per-option
    edges reflects that no two phases overlap.
    """
    phases = [
        "load_option",
        "generate_time_points",
        "default_probability",
        "pv_expected_payments",
        "pv_expected_payoff",
        "accrued_protection",
        "combine_spread",
    ]
    g = DataflowGraph(name="xilinx_baseline_flowchart")
    for p in phases:
        g.nodes.append(GraphNode(name=p))
    for a, b in zip(phases, phases[1:]):
        g.edges.append(
            GraphEdge(src=a, dst=b, stream=f"{a}->{b}", depth=1, per_option=True)
        )
    return g


class XilinxBaselineEngine(CDSEngineBase):
    """The unmodified Vitis library engine (sequential phases, II=7)."""

    name = "xilinx_baseline"

    def _execute(
        self, workload: EngineWorkload
    ) -> tuple[np.ndarray, float, int, list[SimulationResult]]:
        models = StageModels.for_scenario(self.scenario, interleaved=False)
        sink: dict[int, float] = {}
        sim = Simulator("xilinx_baseline")
        sim.process("engine", self._engine_kernel(workload, models, sink))
        res = sim.run()
        n = workload.n_options
        cycles = res.makespan_cycles + n * self.scenario.invocation_overhead_cycles
        spreads = _sink_to_array(sink, n, self.name)
        return spreads, cycles, n, [res]

    def resources(self) -> ResourceUsage:
        """One sequential engine: no replication, naive accumulators."""
        return engine_resources(self.scenario, replication=1, interleaved=False)

    # ------------------------------------------------------------------
    def _engine_kernel(
        self,
        wl: EngineWorkload,
        models: StageModels,
        sink: dict[int, float],
    ) -> Kernel:
        """Single-process kernel running every phase in order per option."""
        from repro.core.pricing import BASIS_POINTS

        hc = wl.hazard_curve
        yc = wl.yield_curve
        acc = models.accumulator  # naive: II = 7
        interp = models.interpolator

        for oi, (option, sched) in enumerate(zip(wl.options, wl.schedules)):
            n = len(sched)

            # Phase 1: distinct time points.
            yield Delay(GRID_LATENCY + n)

            # Phase 2: default probability per point — the II=7 hazard
            # accumulation recomputed from the table start for each point.
            survivals = np.empty(n)
            phase2 = models.exp_latency
            for i, t in enumerate(sched.times):
                phase2 += acc.cycles(hc.accumulation_length(float(t)))
                survivals[i] = hc.survival(float(t))
            yield Delay(phase2)

            # Phase 3: rate interpolation + discount factors per point.
            discounts = np.empty(n)
            phase3 = models.exp_latency + models.mul_latency
            for i, t in enumerate(sched.times):
                phase3 += interp.evaluation_cycles(yc.locate(float(t)))
                discounts[i] = yc.discount(float(t))
            yield Delay(phase3)

            # Phases 4-6: the three leg loops, each accumulating at II=7.
            premium = 0.0
            protection = 0.0
            accrual = 0.0
            s_prev = 1.0
            for i in range(n):
                s_i = float(survivals[i])
                d_i = float(discounts[i])
                dt_i = float(sched.accruals[i])
                ds_i = s_prev - s_i
                premium += d_i * s_i * dt_i
                protection += d_i * ds_i
                accrual += d_i * ds_i * dt_i * 0.5
                s_prev = s_i
            for _ in range(3):
                yield Delay(acc.cycles(n) + 2 * models.mul_latency)

            # Phase 7: combine into the spread.
            protection *= option.loss_given_default
            annuity = premium + accrual
            if annuity <= 0.0 or not math.isfinite(annuity):
                raise ValidationError(
                    f"baseline: non-positive annuity {annuity!r} for option {oi}"
                )
            sink[oi] = BASIS_POINTS * protection / annuity
            yield Delay(models.div_latency + models.mul_latency)


def _sink_to_array(sink: dict[int, float], n: int, engine: str) -> np.ndarray:
    """Order-checked conversion of a result sink to an array."""
    if len(sink) != n:
        raise ValidationError(
            f"{engine}: produced {len(sink)} results for {n} options"
        )
    out = np.empty(n, dtype=np.float64)
    for i in range(n):
        if i not in sink:
            raise ValidationError(f"{engine}: missing result for option {i}")
        out[i] = sink[i]
    return out
