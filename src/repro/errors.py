"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between configuration problems, numerical-input problems
and simulator-level problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An input (curve, option, configuration) failed validation.

    Raised eagerly at construction time so that simulation and pricing code
    can assume well-formed inputs.
    """


class CurveError(ValidationError):
    """A term-structure curve is malformed (non-monotonic times, NaNs, ...)."""


class ScheduleError(ValidationError):
    """A payment schedule could not be generated from the option parameters."""


class CapabilityError(ReproError):
    """A pricing backend was asked for work its capability flags exclude.

    Raised by :mod:`repro.api` when a :class:`~repro.api.PriceRequest`
    needs a capability (leg surfaces, streaming quotes, ...) the selected
    backend does not advertise and the session cannot negotiate around.
    """


class SimulationError(ReproError, RuntimeError):
    """The discrete-event simulator reached an inconsistent state."""


class DeadlockError(SimulationError):
    """No process can make progress but tokens remain in flight.

    This mirrors a hung HLS dataflow region: a stage blocked on a full output
    stream while its consumer is blocked on a different empty input.
    """


class ResourceError(ReproError):
    """A design does not fit on the target FPGA device."""


class CalibrationError(ReproError):
    """A calibration or bootstrap routine failed to converge."""
