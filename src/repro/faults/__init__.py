"""Deterministic fault injection over the unified simulation clock.

``repro.faults`` makes failure a modelled dimension of the stack:

* :mod:`~repro.faults.plan` — seeded :class:`FaultPlan` composed of
  card crashes (permanent or with repair), straggler slowdowns,
  host-link degradation/outage, and correlated multi-card failures,
  plus the compact ``--faults`` spec grammar;
* :mod:`~repro.faults.health` — :class:`ClusterHealth`, the pure
  availability oracle dispatchers consult (healthy cards, mid-window
  crashes, straggler/link factors, degradation gate);
* :mod:`~repro.faults.breaker` — per-card closed/open/half-open
  :class:`CircuitBreaker` and the :class:`BreakerBank`;
* :mod:`~repro.faults.retry` — :class:`RetryPolicy` (capped exponential
  backoff, full seeded jitter) and :class:`HedgePolicy` (duplicate the
  slowest straggling shard);
* :mod:`~repro.faults.report` — :class:`FaultReport` with per-phase
  goodput/p99, recovery time, and the duplicate-work ratio.

The contract with the rest of the repo: with an empty plan (or no plan
at all) every consuming layer takes its legacy code path and produces
byte-identical output — faults are strictly additive.
"""

from repro.faults.breaker import BreakerBank, CircuitBreaker
from repro.faults.health import ClusterHealth
from repro.faults.plan import (
    CardCrash,
    CardSlowdown,
    FaultPlan,
    LinkDegradation,
    LinkOutage,
    correlated_crash,
)
from repro.faults.report import (
    FaultCounters,
    FaultReport,
    PhaseStats,
    build_fault_report,
)
from repro.faults.retry import HedgePolicy, RetryPolicy

__all__ = [
    "CardCrash",
    "CardSlowdown",
    "LinkDegradation",
    "LinkOutage",
    "FaultPlan",
    "correlated_crash",
    "ClusterHealth",
    "CircuitBreaker",
    "BreakerBank",
    "RetryPolicy",
    "HedgePolicy",
    "FaultCounters",
    "PhaseStats",
    "FaultReport",
    "build_fault_report",
]
