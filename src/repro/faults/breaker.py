"""Per-card circuit breaker: closed → open → half-open → closed.

The breaker protects the dispatcher from repeatedly routing work at a
card that keeps failing.  Semantics follow the classic pattern:

* **closed** — dispatches flow; consecutive failures are counted and at
  ``failure_threshold`` the breaker trips **open**;
* **open** — the card is skipped outright for ``reset_timeout_s``
  simulated seconds (no dispatch attempts, no probes);
* **half-open** — after the timeout one *probe* dispatch is allowed
  through: success closes the breaker (counter reset), failure re-opens
  it for another full timeout.

All transitions happen on the shared simulated clock, driven by the
dispatcher reporting outcomes via :meth:`record_success` /
:meth:`record_failure` — the breaker never schedules events itself, so
it adds no nondeterminism.
"""

from __future__ import annotations

from repro.errors import ValidationError

__all__ = ["CircuitBreaker", "BreakerBank"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One card's breaker.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    reset_timeout_s:
        Simulated seconds the breaker stays open before allowing a
        half-open probe.
    """

    __slots__ = (
        "failure_threshold", "reset_timeout_s", "state", "failures",
        "opened_at_s", "n_trips", "n_probes",
    )

    def __init__(
        self, *, failure_threshold: int = 3, reset_timeout_s: float = 0.05
    ) -> None:
        if failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValidationError(
                f"reset_timeout_s must be > 0, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.state = CLOSED
        self.failures = 0
        self.opened_at_s = 0.0
        self.n_trips = 0
        self.n_probes = 0

    # ------------------------------------------------------------------
    def allow(self, now_s: float) -> bool:
        """Whether a dispatch may be routed at this card right now.

        An open breaker whose timeout has elapsed transitions to
        half-open here and admits exactly the caller's next dispatch as
        the probe.
        """
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if now_s - self.opened_at_s >= self.reset_timeout_s:
                self.state = HALF_OPEN
                self.n_probes += 1
                return True
            return False
        # HALF_OPEN: one probe is already in flight; hold further work
        # until its outcome is reported.
        return False

    def record_success(self, now_s: float) -> None:
        """Report a dispatch that completed cleanly."""
        self.failures = 0
        self.state = CLOSED

    def record_failure(self, now_s: float) -> None:
        """Report a failed dispatch; may trip or re-open the breaker."""
        if self.state == HALF_OPEN:
            self.state = OPEN
            self.opened_at_s = now_s
            self.n_trips += 1
            return
        self.failures += 1
        if self.state == CLOSED and self.failures >= self.failure_threshold:
            self.state = OPEN
            self.opened_at_s = now_s
            self.n_trips += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CircuitBreaker(state={self.state!r}, failures={self.failures})"


class BreakerBank:
    """One breaker per card, plus the aggregate counters reports want."""

    def __init__(
        self,
        n_cards: int,
        *,
        failure_threshold: int = 3,
        reset_timeout_s: float = 0.05,
    ) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        self.breakers = [
            CircuitBreaker(
                failure_threshold=failure_threshold,
                reset_timeout_s=reset_timeout_s,
            )
            for _ in range(n_cards)
        ]

    def __getitem__(self, card: int) -> CircuitBreaker:
        return self.breakers[card]

    def allow(self, card: int, now_s: float) -> bool:
        """Whether ``card``'s breaker admits a dispatch at ``now_s``."""
        return self.breakers[card].allow(now_s)

    def allowed_cards(self, cards, now_s: float) -> tuple[int, ...]:
        """Filter ``cards`` down to those whose breakers admit work.

        Note: half-open transitions happen inside :meth:`allow`, so this
        admits at most one probe per open-elapsed breaker per call.
        """
        return tuple(c for c in cards if self.breakers[c].allow(now_s))

    @property
    def n_trips(self) -> int:
        """Total breaker-open transitions across the bank."""
        return sum(b.n_trips for b in self.breakers)

    @property
    def n_probes(self) -> int:
        """Total half-open probes admitted across the bank."""
        return sum(b.n_probes for b in self.breakers)
