"""Cluster health view: the dispatcher's oracle over a fault plan.

:class:`ClusterHealth` projects a :class:`~repro.faults.plan.FaultPlan`
onto a concrete cluster shape and answers the questions the
failure-aware layers ask:

* *which cards may I dispatch to right now?* — :meth:`healthy_cards`;
* *will this prospective busy window be cut short by a crash?* —
  :meth:`crash_during` (the serving layer inspects windows before
  committing them, so a dispatch that would die mid-flight is detected
  and charged as wasted work up to the crash instant);
* *how much slower is this card right now?* — :meth:`service_factor`
  integrates straggler windows over a busy interval;
* *how stretched is the host link?* — :meth:`link_factor` /
  :meth:`link_blocked_until`;
* *is the cluster degraded at all?* — :meth:`capacity_reduced`, the
  gate for the degradation ladder.

The view is pure arithmetic over the plan — no mutable state — so the
same plan gives the same answers in every run, which is what keeps
fault reports bit-reproducible.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.faults.plan import FaultPlan

__all__ = ["ClusterHealth"]


class ClusterHealth:
    """Per-card and link availability derived from a fault plan.

    Parameters
    ----------
    plan:
        The fault schedule (validated against ``n_cards``).
    n_cards:
        Cluster size; card indices in the plan must be ``< n_cards``.
    """

    def __init__(self, plan: FaultPlan, n_cards: int) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        plan.validate_cards(n_cards)
        self.plan = plan
        self.n_cards = n_cards
        # Per-card outage windows [start, end) with end possibly inf.
        self._down: list[list[tuple[float, float]]] = [
            [] for _ in range(n_cards)
        ]
        for crash in plan.crashes:
            self._down[crash.card].append((crash.at_s, crash.down_until_s))
        for windows in self._down:
            windows.sort()
        self._slow: list[list[tuple[float, float, float]]] = [
            [] for _ in range(n_cards)
        ]
        for slow in plan.slowdowns:
            self._slow[slow.card].append((slow.at_s, slow.until_s, slow.factor))
        for windows in self._slow:
            windows.sort()
        self._link_deg = [
            (d.at_s, d.until_s, d.factor) for d in plan.link_degradations
        ]
        self._link_out = [(o.at_s, o.until_s) for o in plan.link_outages]

    # ------------------------------------------------------------------
    # Card availability
    def card_down(self, card: int, t: float) -> bool:
        """Whether ``card`` is inside an outage window at instant ``t``."""
        return any(s <= t < e for s, e in self._down[card])

    def healthy_cards(self, t: float) -> tuple[int, ...]:
        """Cards outside every outage window at instant ``t``."""
        return tuple(
            c for c in range(self.n_cards) if not self.card_down(c, t)
        )

    def card_up_at(self, card: int, t: float) -> float:
        """Earliest instant ``>= t`` at which ``card`` is up (may be inf)."""
        for s, e in self._down[card]:
            if s <= t < e:
                t = e
        return t

    def crash_during(self, card: int, start_s: float, done_s: float) -> float | None:
        """The crash instant cutting a busy window short, if any.

        A window ``[start_s, done_s)`` on ``card`` dies if a crash begins
        strictly inside it.  Returns the crash instant, or ``None`` when
        the window completes cleanly.  (A window *starting* inside an
        outage is the reservation layer's concern — :class:`Resource`
        pushes starts past down windows — so only mid-flight crashes
        reach here.)
        """
        for s, _ in self._down[card]:
            if start_s < s < done_s:
                return s
        return None

    # ------------------------------------------------------------------
    # Straggler inflation
    def service_factor(self, card: int, start_s: float, service_s: float) -> float:
        """Effective service inflation for work on ``card`` at ``start_s``.

        The inflation is integrated over the busy interval: the portion
        of the (inflated) window inside each straggler window is
        stretched by its factor.  For the common case — the window
        entirely inside or entirely outside one slowdown — this is the
        plain factor (or 1.0); partial overlap gets the proportional
        blend, computed by walking the stretched timeline.
        """
        if service_s <= 0 or not self._slow[card]:
            return 1.0
        # Walk forward consuming nominal service, stretching the part
        # that lands inside each slowdown window.
        remaining = service_s
        t = start_s
        for s, e, factor in self._slow[card]:
            if remaining <= 0:
                break
            if e <= t:
                continue
            if t < s:
                # Nominal-speed stretch until the window opens.
                gap = s - t
                if gap >= remaining:
                    t += remaining
                    remaining = 0.0
                    break
                t = s
                remaining -= gap
            # Inside [s, e): each nominal second takes `factor` seconds.
            span = e - t
            capacity = span / factor  # nominal seconds the window absorbs
            if capacity >= remaining:
                t += remaining * factor
                remaining = 0.0
                break
            t = e
            remaining -= capacity
        t += remaining  # tail at nominal speed
        elapsed = t - start_s
        return elapsed / service_s

    # ------------------------------------------------------------------
    # Host link
    def link_factor(self, t: float) -> float:
        """Dispatch-time stretch on the host link at instant ``t``."""
        factor = 1.0
        for s, e, f in self._link_deg:
            if s <= t < e:
                factor *= f
        return factor

    def link_blocked_until(self, t: float) -> float:
        """Earliest instant ``>= t`` the host link can issue a dispatch."""
        for s, e in self._link_out:
            if s <= t < e:
                t = e
        return t

    # ------------------------------------------------------------------
    def capacity_reduced(self, t: float) -> bool:
        """Whether any card is down at ``t`` (degradation-ladder gate)."""
        return len(self.healthy_cards(t)) < self.n_cards

    def first_fault_s(self) -> float:
        """Instant the first fault begins (inf for an empty plan)."""
        if self.plan.is_empty:
            return math.inf
        return self.plan.events[0].at_s

    def last_fault_end_s(self) -> float:
        """Instant the last fault window ends (0 for an empty plan; may be inf)."""
        end = 0.0
        for event in self.plan.events:
            if hasattr(event, "down_until_s"):
                end = max(end, event.down_until_s)
            else:
                end = max(end, event.until_s)
        return end

    def apply_downtime(self, resources) -> None:
        """Register every card outage on the matching ``Resource``.

        ``resources`` is the per-card :class:`~repro.sim.Resource` list;
        reservation starts are then pushed past outages automatically.
        """
        for card, windows in enumerate(self._down):
            for s, e in windows:
                resources[card].add_downtime(s, e)
