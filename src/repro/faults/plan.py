"""Fault plans: declarative, seeded failure schedules for a run.

A :class:`FaultPlan` is the single source of truth for *what goes wrong
and when* during a simulated run.  It is a frozen, validated composition
of injectable events on the shared :class:`~repro.sim.Simulation` clock:

* :class:`CardCrash` — a card stops serving at an instant, either
  permanently or until a repair completes;
* :class:`CardSlowdown` — a straggler window: the card's service times
  inflate by a multiplicative factor;
* :class:`LinkDegradation` — host-link dispatch times stretch by a
  factor over a window;
* :class:`LinkOutage` — the host thread cannot issue dispatches at all
  during a window.

Correlated multi-card failures are just several :class:`CardCrash`
events sharing an instant (:func:`correlated_crash` builds them).

Because the plan is pure data and the retry/hedge jitter stream is
seeded from :attr:`FaultPlan.seed`, a run under a given plan is
bit-reproducible: same seed + same plan ⇒ identical fault reports.

The ``--faults`` CLI flag accepts the compact spec grammar parsed by
:meth:`FaultPlan.from_spec`::

    crash:card=1,at=0.15,repair=0.1
    slow:card=2,at=0.1,for=0.2,factor=4
    link:at=0.1,for=0.05,factor=2.5
    linkout:at=0.1,for=0.02
    correlated:cards=0+1,at=0.15,repair=0.1

joined by ``;`` for composite plans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "CardCrash",
    "CardSlowdown",
    "LinkDegradation",
    "LinkOutage",
    "FaultPlan",
    "correlated_crash",
]


@dataclass(frozen=True)
class CardCrash:
    """A card stops serving at ``at_s``.

    Attributes
    ----------
    card:
        Which card crashes.
    at_s:
        Crash instant on the simulation clock.
    repair_s:
        Repair time; the card is back at ``at_s + repair_s``.  ``None``
        means the crash is permanent.
    """

    card: int
    at_s: float
    repair_s: float | None = None

    def __post_init__(self) -> None:
        if self.card < 0:
            raise ValidationError(f"card must be >= 0, got {self.card}")
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise ValidationError(f"at_s must be finite and >= 0, got {self.at_s}")
        if self.repair_s is not None and self.repair_s <= 0:
            raise ValidationError(
                f"repair_s must be > 0 (or None for permanent), got {self.repair_s}"
            )

    @property
    def down_until_s(self) -> float:
        """End of the outage window (``inf`` for a permanent crash)."""
        return math.inf if self.repair_s is None else self.at_s + self.repair_s

    def spec(self) -> str:
        """The compact-spec rendering of this event."""
        out = f"crash:card={self.card},at={self.at_s:g}"
        if self.repair_s is not None:
            out += f",repair={self.repair_s:g}"
        return out


@dataclass(frozen=True)
class CardSlowdown:
    """A straggler window: service times on ``card`` inflate by ``factor``.

    Attributes
    ----------
    card:
        Which card straggles.
    at_s / duration_s:
        Window ``[at_s, at_s + duration_s)``.
    factor:
        Multiplicative service-time inflation (``> 1``).
    """

    card: int
    at_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if self.card < 0:
            raise ValidationError(f"card must be >= 0, got {self.card}")
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise ValidationError(f"at_s must be finite and >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValidationError(f"duration_s must be > 0, got {self.duration_s}")
        if not self.factor > 1.0 or not math.isfinite(self.factor):
            raise ValidationError(
                f"slowdown factor must be finite and > 1, got {self.factor}"
            )

    @property
    def until_s(self) -> float:
        """End of the straggler window."""
        return self.at_s + self.duration_s

    def spec(self) -> str:
        """The compact-spec rendering of this event."""
        return (
            f"slow:card={self.card},at={self.at_s:g},"
            f"for={self.duration_s:g},factor={self.factor:g}"
        )


@dataclass(frozen=True)
class LinkDegradation:
    """Host-link dispatch times stretch by ``factor`` over a window."""

    at_s: float
    duration_s: float
    factor: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise ValidationError(f"at_s must be finite and >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValidationError(f"duration_s must be > 0, got {self.duration_s}")
        if not self.factor > 1.0 or not math.isfinite(self.factor):
            raise ValidationError(
                f"link factor must be finite and > 1, got {self.factor}"
            )

    @property
    def until_s(self) -> float:
        """End of the degradation window."""
        return self.at_s + self.duration_s

    def spec(self) -> str:
        """The compact-spec rendering of this event."""
        return (
            f"link:at={self.at_s:g},for={self.duration_s:g},"
            f"factor={self.factor:g}"
        )


@dataclass(frozen=True)
class LinkOutage:
    """The host thread cannot issue dispatches during a window."""

    at_s: float
    duration_s: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.at_s) or self.at_s < 0:
            raise ValidationError(f"at_s must be finite and >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValidationError(f"duration_s must be > 0, got {self.duration_s}")

    @property
    def until_s(self) -> float:
        """End of the outage window."""
        return self.at_s + self.duration_s

    def spec(self) -> str:
        """The compact-spec rendering of this event."""
        return f"linkout:at={self.at_s:g},for={self.duration_s:g}"


def correlated_crash(
    cards, at_s: float, repair_s: float | None = None
) -> tuple[CardCrash, ...]:
    """Crash several cards at the same instant (a correlated failure).

    Parameters
    ----------
    cards:
        Card indices that fail together (e.g. one host's PCIe root).
    at_s / repair_s:
        Shared crash instant and (optional) shared repair time.
    """
    cards = tuple(cards)
    if not cards:
        raise ValidationError("a correlated crash needs at least one card")
    return tuple(CardCrash(card=c, at_s=at_s, repair_s=repair_s) for c in cards)


#: Event types a plan may carry (the union the injectors switch on).
FaultEvent = CardCrash | CardSlowdown | LinkDegradation | LinkOutage


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, ordered schedule of fault events for one run.

    Attributes
    ----------
    events:
        The fault events, stored sorted by ``(at_s, spec)`` so two plans
        with the same events compare equal regardless of input order.
    seed:
        Seed of the retry/hedge jitter stream consumed while the plan is
        live.  Same seed + same events ⇒ bit-identical runs.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for event in self.events:
            if not isinstance(
                event, (CardCrash, CardSlowdown, LinkDegradation, LinkOutage)
            ):
                raise ValidationError(
                    f"unknown fault event type {type(event).__name__!r}"
                )
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.at_s, e.spec()))
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing (the conformance baseline)."""
        return not self.events

    @property
    def crashes(self) -> tuple[CardCrash, ...]:
        """Card-crash events, in time order."""
        return tuple(e for e in self.events if isinstance(e, CardCrash))

    @property
    def slowdowns(self) -> tuple[CardSlowdown, ...]:
        """Straggler windows, in time order."""
        return tuple(e for e in self.events if isinstance(e, CardSlowdown))

    @property
    def link_degradations(self) -> tuple[LinkDegradation, ...]:
        """Host-link degradation windows, in time order."""
        return tuple(e for e in self.events if isinstance(e, LinkDegradation))

    @property
    def link_outages(self) -> tuple[LinkOutage, ...]:
        """Host-link outage windows, in time order."""
        return tuple(e for e in self.events if isinstance(e, LinkOutage))

    def max_card(self) -> int:
        """Largest card index any event references (-1 when none do)."""
        cards = [
            e.card for e in self.events if isinstance(e, (CardCrash, CardSlowdown))
        ]
        return max(cards) if cards else -1

    def validate_cards(self, n_cards: int) -> None:
        """Reject events referencing cards beyond the cluster."""
        if self.max_card() >= n_cards:
            raise ValidationError(
                f"fault plan references card {self.max_card()} but the "
                f"cluster has {n_cards} card(s)"
            )

    def spec(self) -> str:
        """Compact-spec rendering (parses back via :meth:`from_spec`)."""
        return ";".join(e.spec() for e in self.events)

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str, *, seed: int = 0) -> "FaultPlan":
        """Parse the compact ``--faults`` grammar into a plan.

        ``spec`` is ``;``-joined events, each ``kind:key=value,...``:

        ``crash:card=C,at=T[,repair=R]``
            Card ``C`` crashes at ``T`` (permanently without ``repair``).
        ``slow:card=C,at=T,for=D,factor=F``
            Card ``C`` straggles for ``D`` seconds with service x ``F``.
        ``link:at=T,for=D,factor=F``
            Host-link dispatch times stretch by ``F`` for ``D`` seconds.
        ``linkout:at=T,for=D``
            The host link is down entirely for ``D`` seconds.
        ``correlated:cards=C1+C2+...,at=T[,repair=R]``
            All listed cards crash together at ``T``.

        An empty (or all-whitespace) spec yields the empty plan.
        """
        events: list[FaultEvent] = []
        for part in (p.strip() for p in spec.split(";")):
            if not part:
                continue
            if ":" not in part:
                raise ValidationError(
                    f"bad fault spec {part!r}: expected 'kind:key=value,...'"
                )
            kind, _, body = part.partition(":")
            kind = kind.strip()
            kv: dict[str, str] = {}
            for item in body.split(","):
                if "=" not in item:
                    raise ValidationError(
                        f"bad fault spec item {item!r} in {part!r}: "
                        "expected 'key=value'"
                    )
                key, _, value = item.partition("=")
                kv[key.strip()] = value.strip()
            events.extend(cls._parse_event(kind, kv, part))
        return cls(events=tuple(events), seed=seed)

    @staticmethod
    def _parse_event(kind: str, kv: dict[str, str], part: str):
        def need(*keys):
            missing = [k for k in keys if k not in kv]
            if missing:
                raise ValidationError(
                    f"fault spec {part!r} is missing {missing}"
                )
            extra = set(kv) - set(keys) - {"repair"}
            if kind not in ("crash", "correlated"):
                extra = set(kv) - set(keys)
            if extra:
                raise ValidationError(
                    f"fault spec {part!r} has unknown keys {sorted(extra)}"
                )

        def num(key):
            try:
                return float(kv[key])
            except ValueError:
                raise ValidationError(
                    f"fault spec {part!r}: {key}={kv[key]!r} is not a number"
                ) from None

        if kind == "crash":
            need("card", "at")
            return [
                CardCrash(
                    card=int(num("card")),
                    at_s=num("at"),
                    repair_s=num("repair") if "repair" in kv else None,
                )
            ]
        if kind == "slow":
            need("card", "at", "for", "factor")
            return [
                CardSlowdown(
                    card=int(num("card")),
                    at_s=num("at"),
                    duration_s=num("for"),
                    factor=num("factor"),
                )
            ]
        if kind == "link":
            need("at", "for", "factor")
            return [
                LinkDegradation(
                    at_s=num("at"), duration_s=num("for"), factor=num("factor")
                )
            ]
        if kind == "linkout":
            need("at", "for")
            return [LinkOutage(at_s=num("at"), duration_s=num("for"))]
        if kind == "correlated":
            need("cards", "at")
            try:
                cards = tuple(int(c) for c in kv["cards"].split("+") if c)
            except ValueError:
                raise ValidationError(
                    f"fault spec {part!r}: cards={kv['cards']!r} must be "
                    "'+'-joined integers"
                ) from None
            return list(
                correlated_crash(
                    cards,
                    num("at"),
                    num("repair") if "repair" in kv else None,
                )
            )
        raise ValidationError(
            f"unknown fault kind {kind!r} in {part!r}; choose from "
            "['correlated', 'crash', 'link', 'linkout', 'slow']"
        )
