"""Fault reports: what the failure did, and how fast we recovered.

A :class:`FaultReport` is the resilience summary attached to a faulted
run.  It slices the run into three phases on the simulated clock —
*before* the first fault begins, *during* the fault envelope (first
fault start to last fault-window end), and *after* — and reports
goodput (completed requests per second) and p99 latency per phase, plus:

* **recovery time** — how long after the last fault window ends the
  rolling goodput returns to within 5% of the pre-fault rate (the
  acceptance criterion the chaos harness pins);
* **duplicate-work ratio** — wasted simulated busy-seconds (windows cut
  short by crashes, losing hedges) over useful busy-seconds, the price
  paid for the retries and hedges;
* the raw resilience counters (retries, hedges and hedge wins, breaker
  trips, failed requests, degraded sheds).

Everything is pure arithmetic over (completion instant, latency) pairs
and counters the serving layer accumulated, so the report is exactly as
reproducible as the run: same seed + same plan ⇒ identical JSON.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

from repro.faults.health import ClusterHealth
from repro.faults.plan import FaultPlan

__all__ = ["FaultCounters", "PhaseStats", "FaultReport", "build_fault_report"]

#: Rolling-window goodput must reach this fraction of the pre-fault rate
#: for the run to count as recovered.
RECOVERY_FRACTION = 0.95


@dataclass
class FaultCounters:
    """Mutable resilience counters the dispatcher increments in-run."""

    n_retries: int = 0
    n_hedges: int = 0
    n_hedge_wins: int = 0
    n_breaker_trips: int = 0
    n_breaker_probes: int = 0
    n_failed_dispatches: int = 0
    n_failed_requests: int = 0
    n_shed_degraded: int = 0
    n_repartitions: int = 0
    useful_work_s: float = 0.0
    wasted_work_s: float = 0.0

    @property
    def duplicate_work_ratio(self) -> float:
        """Wasted fraction of all busy-seconds (0 when nothing ran)."""
        total = self.useful_work_s + self.wasted_work_s
        if total <= 0:
            return 0.0
        return self.wasted_work_s / total


@dataclass(frozen=True)
class PhaseStats:
    """Goodput and tail latency over one phase of the run."""

    name: str
    start_s: float
    end_s: float
    n_completed: int
    goodput_rps: float
    p99_latency_ms: float

    def to_dict(self) -> dict:
        """JSON-ready mapping (inf end collapses to None)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "end_s": None if math.isinf(self.end_s) else self.end_s,
            "n_completed": self.n_completed,
            "goodput_rps": self.goodput_rps,
            "p99_latency_ms": self.p99_latency_ms,
        }


def _p99_ms(latencies: list[float]) -> float:
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = max(0, math.ceil(0.99 * len(ordered)) - 1)
    return ordered[rank] * 1e3


def _phase(name: str, start_s: float, end_s: float,
           completions: list[tuple[float, float]],
           *, closed: bool = False) -> PhaseStats:
    # Phases are half-open [start, end) except the run's final phase,
    # which closes at the span end — the last completion *defines* the
    # span, so a half-open tail would always drop it.
    inside = [
        (d, lat) for d, lat in completions
        if start_s <= d and (d <= end_s if closed else d < end_s)
    ]
    span = (end_s if not math.isinf(end_s) else
            (max((d for d, _ in completions), default=start_s))) - start_s
    goodput = len(inside) / span if span > 0 else 0.0
    return PhaseStats(
        name=name,
        start_s=start_s,
        end_s=end_s,
        n_completed=len(inside),
        goodput_rps=goodput,
        p99_latency_ms=_p99_ms([lat for _, lat in inside]),
    )


@dataclass(frozen=True)
class FaultReport:
    """Resilience summary of one faulted run."""

    spec: str
    seed: int
    phases: tuple[PhaseStats, ...]
    recovery_time_s: float | None
    counters: FaultCounters = field(compare=False)

    def to_dict(self) -> dict:
        """JSON-ready mapping, key order fixed for golden comparison."""
        c = self.counters
        return {
            "spec": self.spec,
            "seed": self.seed,
            "phases": [p.to_dict() for p in self.phases],
            "recovery_time_s": self.recovery_time_s,
            "n_retries": c.n_retries,
            "n_hedges": c.n_hedges,
            "n_hedge_wins": c.n_hedge_wins,
            "n_breaker_trips": c.n_breaker_trips,
            "n_breaker_probes": c.n_breaker_probes,
            "n_failed_dispatches": c.n_failed_dispatches,
            "n_failed_requests": c.n_failed_requests,
            "n_shed_degraded": c.n_shed_degraded,
            "n_repartitions": c.n_repartitions,
            "useful_work_s": c.useful_work_s,
            "wasted_work_s": c.wasted_work_s,
            "duplicate_work_ratio": c.duplicate_work_ratio,
        }


def _recovery_time(
    completions: list[tuple[float, float]],
    fault_end_s: float,
    target_rps: float,
    window_s: float,
) -> float | None:
    """Seconds after ``fault_end_s`` until rolling goodput recovers.

    Slides a ``window_s`` window anchored at each post-fault completion;
    the run has recovered at the earliest anchor whose window holds at
    least ``RECOVERY_FRACTION * target_rps`` completions per second.
    Returns ``0.0`` when the rate never dipped, ``None`` when it never
    recovers inside the run.
    """
    if target_rps <= 0 or math.isinf(fault_end_s):
        return None
    done = sorted(d for d, _ in completions)
    needed = RECOVERY_FRACTION * target_rps * window_s
    anchors = [fault_end_s] + [d for d in done if d >= fault_end_s]
    for anchor in anchors:
        lo = bisect.bisect_left(done, anchor)
        hi = bisect.bisect_right(done, anchor + window_s)
        if hi - lo >= needed:
            return anchor - fault_end_s
    return None


def build_fault_report(
    plan: FaultPlan,
    health: ClusterHealth,
    completions: list[tuple[float, float]],
    counters: FaultCounters,
    *,
    span_s: float,
    recovery_window_s: float | None = None,
) -> FaultReport:
    """Assemble the report from run artefacts.

    Parameters
    ----------
    plan / health:
        The fault schedule and its projection on the cluster.
    completions:
        ``(completion_instant_s, latency_s)`` per completed request.
    counters:
        The dispatcher's accumulated resilience counters.
    span_s:
        Total simulated span of the run (phase boundaries are clamped
        to it).
    recovery_window_s:
        Rolling-goodput window; defaults to a quarter of the fault
        envelope (min 10 ms) so short faults still resolve.
    """
    fault_start = min(health.first_fault_s(), span_s)
    fault_end = health.last_fault_end_s()
    fault_end = span_s if math.isinf(fault_end) else min(fault_end, span_s)
    fault_end = max(fault_end, fault_start)

    phases = (
        _phase("before", 0.0, fault_start, completions),
        _phase(
            "during", fault_start, fault_end, completions,
            closed=fault_end >= span_s,
        ),
        _phase(
            "after", fault_end, max(span_s, fault_end), completions,
            closed=fault_end < span_s,
        ),
    )
    before = phases[0]
    if recovery_window_s is None:
        envelope = fault_end - fault_start
        recovery_window_s = max(envelope / 4.0, 0.010)
    recovery = _recovery_time(
        completions, fault_end, before.goodput_rps, recovery_window_s
    )
    return FaultReport(
        spec=plan.spec(),
        seed=plan.seed,
        phases=phases,
        recovery_time_s=recovery,
        counters=counters,
    )
