"""Retry and hedging policies: seeded, capped, deterministic.

:class:`RetryPolicy` implements capped exponential backoff with full
jitter: attempt ``k`` (0-based) backs off up to ``base * mult**k``
seconds, capped at ``cap``, with the actual delay drawn uniformly from
``[0, bound]`` using a generator seeded from the fault plan.  Draws are
consumed in deterministic event order — the simulation fires retries in
``(time, priority, seq)`` order — so the same seed reproduces the same
delays, run after run.

:class:`HedgePolicy` decides when to issue a duplicate dispatch of the
slowest straggling shard: if a shard's projected completion exceeds the
batch's median shard completion by more than ``threshold`` (a ratio),
one hedge is sent to the fastest healthy alternative card and the first
finisher wins.  Hedges cost duplicate simulated work, which the fault
report surfaces as the duplicate-work ratio.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["RetryPolicy", "HedgePolicy"]


class RetryPolicy:
    """Capped exponential backoff with full seeded jitter.

    Parameters
    ----------
    max_attempts:
        Total dispatch attempts per unit of work (first try included).
    base_s:
        Backoff bound for the first retry.
    multiplier:
        Exponential growth per further attempt.
    cap_s:
        Upper bound on any single backoff.
    seed:
        Jitter stream seed (take it from ``FaultPlan.seed``).
    """

    def __init__(
        self,
        *,
        max_attempts: int = 4,
        base_s: float = 0.002,
        multiplier: float = 2.0,
        cap_s: float = 0.05,
        seed: int = 0,
    ) -> None:
        if max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if base_s <= 0:
            raise ValidationError(f"base_s must be > 0, got {base_s}")
        if multiplier < 1.0:
            raise ValidationError(
                f"multiplier must be >= 1, got {multiplier}"
            )
        if cap_s < base_s:
            raise ValidationError(
                f"cap_s must be >= base_s, got cap={cap_s} base={base_s}"
            )
        self.max_attempts = max_attempts
        self.base_s = base_s
        self.multiplier = multiplier
        self.cap_s = cap_s
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self.n_draws = 0

    def exhausted(self, attempt: int) -> bool:
        """Whether attempt number ``attempt`` (0-based) is past the budget."""
        return attempt >= self.max_attempts

    def backoff_bound_s(self, attempt: int) -> float:
        """The deterministic cap for the given retry (attempt >= 1)."""
        if attempt < 1:
            raise ValidationError(
                f"backoff applies from attempt 1, got {attempt}"
            )
        return min(self.cap_s, self.base_s * self.multiplier ** (attempt - 1))

    def backoff_s(self, attempt: int) -> float:
        """Draw the jittered delay before retry ``attempt`` (1-based).

        Full jitter: uniform on ``[0, bound]``.  Each call consumes one
        draw from the seeded stream; calling in deterministic order is
        what makes the whole run reproducible.
        """
        bound = self.backoff_bound_s(attempt)
        self.n_draws += 1
        return float(self._rng.uniform(0.0, bound))


class HedgePolicy:
    """When and where to duplicate the slowest straggling shard.

    Parameters
    ----------
    enabled:
        Hedging is opt-in (``--hedge`` on the CLI).
    threshold:
        Ratio of a shard's projected completion over the median shard
        completion above which a hedge fires (e.g. ``2.0`` = hedge a
        shard projected to take twice the median).
    max_hedges_per_batch:
        Duplicate-dispatch budget per micro-batch (keeps duplicate work
        bounded).
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        threshold: float = 2.0,
        max_hedges_per_batch: int = 1,
    ) -> None:
        if threshold <= 1.0:
            raise ValidationError(
                f"hedge threshold must be > 1, got {threshold}"
            )
        if max_hedges_per_batch < 0:
            raise ValidationError(
                f"max_hedges_per_batch must be >= 0, got {max_hedges_per_batch}"
            )
        self.enabled = enabled
        self.threshold = threshold
        self.max_hedges_per_batch = max_hedges_per_batch

    def should_hedge(self, shard_done_s: float, median_done_s: float,
                     formed_s: float) -> bool:
        """Whether a shard projected to finish at ``shard_done_s`` hedges.

        Compares *remaining* spans from batch formation so an early
        batch with tiny absolute times behaves like a late one.
        """
        if not self.enabled:
            return False
        span = shard_done_s - formed_s
        median_span = median_done_s - formed_s
        if median_span <= 0:
            return span > 0
        return span / median_span > self.threshold
