"""FPGA platform models: device, memory interfaces, clocking, power, fitting.

The paper's experimental platform is a Xilinx Alveo U280 PCIe accelerator
card (Section II.B).  This subpackage models the platform properties the
evaluation depends on:

``device``
    The U280 resource inventory (1.3 M LUTs, 4.5 MB BRAM, 30 MB URAM,
    9024 DSP slices, HBM2 + DDR) and a generic device descriptor.
``clock``
    Kernel clock domains and cycle/second conversion.
``hbm``
    HBM2 access model with the 512-bit packing best practice the paper
    applies to external data accesses.
``pcie``
    Host transfer model — paper results *include* PCIe overhead, so the
    engines add it to every run.
``power``
    Card power as a function of active engine count (Table II).
``floorplan``
    Resource-driven engine-count fitting ("being able to fit five onto the
    Alveo U280").
"""

from repro.fpga.device import ALVEO_U280, FPGADevice
from repro.fpga.clock import ClockDomain
from repro.fpga.hbm import HBMModel
from repro.fpga.pcie import PCIeModel
from repro.fpga.power import FPGAPowerModel
from repro.fpga.floorplan import Floorplan, max_engines

__all__ = [
    "FPGADevice",
    "ALVEO_U280",
    "ClockDomain",
    "HBMModel",
    "PCIeModel",
    "FPGAPowerModel",
    "Floorplan",
    "max_engines",
]
