"""Clock domains: cycle/second conversions used throughout the simulator."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["ClockDomain"]


@dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock domain.

    Parameters
    ----------
    frequency_hz:
        Clock frequency in Hz (e.g. ``300e6`` for the U280 kernel clock).
    name:
        Optional label for reports.
    """

    frequency_hz: float
    name: str = "kernel"

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0.0:
            raise ValidationError(
                f"frequency_hz must be > 0, got {self.frequency_hz}"
            )

    @property
    def period_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1e9 / self.frequency_hz

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        if cycles < 0.0:
            raise ValidationError(f"cycles must be >= 0, got {cycles}")
        return cycles / self.frequency_hz

    def cycles(self, seconds: float) -> float:
        """Convert seconds to (fractional) cycles."""
        if seconds < 0.0:
            raise ValidationError(f"seconds must be >= 0, got {seconds}")
        return seconds * self.frequency_hz

    def rate_per_second(self, items: float, cycles: float) -> float:
        """Throughput in items/second for ``items`` completed in ``cycles``."""
        if cycles <= 0.0:
            raise ValidationError(f"cycles must be > 0, got {cycles}")
        return items * self.frequency_hz / cycles
