"""FPGA device descriptors.

:data:`ALVEO_U280` matches the paper's description of the card: "an FPGA
with 1.3 million LUTs, 4.5MB of BRAM, 30MB of UltraRAM (URAM), and 9024 DSP
slices.  This PCIe card also contains 8GB of High Bandwidth Memory (HBM2)
and 32GB of DRAM on the board" (Section II.B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.hls.resources import BRAM36_BYTES, URAM_BYTES, ResourceUsage

__all__ = ["FPGADevice", "ALVEO_U280", "ALVEO_U50", "ALVEO_U250", "DEVICE_CATALOG"]


@dataclass(frozen=True)
class FPGADevice:
    """Static description of an FPGA accelerator card.

    Parameters
    ----------
    name:
        Marketing name.
    resources:
        Fabric resource budget.
    slr_count:
        Super-logic-region count (dies on the interposer); a single engine
        should not straddle SLRs, which quantises floorplanning.
    hbm_bytes / dram_bytes:
        On-card memory sizes.
    default_clock_hz:
        Typical achieved kernel clock for HLS designs on this card.
    routable_ceiling:
        Utilisation fraction beyond which timing closure realistically
        fails; caps how many engines fit.
    """

    name: str
    resources: ResourceUsage
    slr_count: int
    hbm_bytes: int
    dram_bytes: int
    default_clock_hz: float
    routable_ceiling: float = 0.9

    def __post_init__(self) -> None:
        if self.slr_count < 1:
            raise ValidationError(f"slr_count must be >= 1, got {self.slr_count}")
        if self.default_clock_hz <= 0:
            raise ValidationError("default_clock_hz must be > 0")
        if not 0.0 < self.routable_ceiling <= 1.0:
            raise ValidationError(
                f"routable_ceiling must be in (0, 1], got {self.routable_ceiling}"
            )

    @property
    def bram_bytes(self) -> int:
        """Total BRAM capacity in bytes."""
        return self.resources.bram36 * BRAM36_BYTES

    @property
    def uram_bytes(self) -> int:
        """Total URAM capacity in bytes."""
        return self.resources.uram * URAM_BYTES

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        r = self.resources
        return "\n".join(
            [
                f"{self.name}",
                f"  LUT {r.lut:,} / FF {r.ff:,} / DSP {r.dsp:,}",
                f"  BRAM {self.bram_bytes / 2**20:.1f} MiB "
                f"({r.bram36} x RAMB36)",
                f"  URAM {self.uram_bytes / 2**20:.1f} MiB ({r.uram} blocks)",
                f"  HBM {self.hbm_bytes / 2**30:.0f} GiB, "
                f"DRAM {self.dram_bytes / 2**30:.0f} GiB",
                f"  {self.slr_count} SLRs, default clock "
                f"{self.default_clock_hz / 1e6:.0f} MHz",
            ]
        )


#: The paper's card.  BRAM: 4.5 MB ~= 1008 RAMB36 tiles; URAM: 30 MB ~= 853
#: usable blocks of 288 Kbit (the silicon has 960; the paper quotes the
#: usable 30 MB).  FF count is twice the LUT count as on UltraScale+.
ALVEO_U280 = FPGADevice(
    name="Xilinx Alveo U280",
    resources=ResourceUsage(
        lut=1_304_000,
        ff=2_607_000,
        bram36=1008,
        uram=960,
        dsp=9024,
    ),
    slr_count=3,
    hbm_bytes=8 * 2**30,
    dram_bytes=32 * 2**30,
    default_clock_hz=300e6,
    routable_ceiling=0.9,
)

#: Smaller HBM card (portability study): single-slr-class budget, HBM only.
ALVEO_U50 = FPGADevice(
    name="Xilinx Alveo U50",
    resources=ResourceUsage(
        lut=872_000,
        ff=1_743_000,
        bram36=1344,
        uram=640,
        dsp=5952,
    ),
    slr_count=2,
    hbm_bytes=8 * 2**30,
    dram_bytes=0,
    default_clock_hz=300e6,
    routable_ceiling=0.9,
)

#: Largest DDR card of the family (portability study): no HBM — rate
#: tables still fit URAM, but option streaming rides DDR4.
ALVEO_U250 = FPGADevice(
    name="Xilinx Alveo U250",
    resources=ResourceUsage(
        lut=1_728_000,
        ff=3_456_000,
        bram36=2688,
        uram=1280,
        dsp=12_288,
    ),
    slr_count=4,
    hbm_bytes=0,
    dram_bytes=64 * 2**30,
    default_clock_hz=300e6,
    routable_ceiling=0.9,
)

#: All catalogued cards, for portability sweeps.
DEVICE_CATALOG: tuple[FPGADevice, ...] = (ALVEO_U50, ALVEO_U250, ALVEO_U280)
