"""Engine-count fitting on a device ("we were able to fit five", Section IV).

The fit is resource-driven: ``n`` engine instances fit when the summed
resource vector stays below the device budget derated by the routable
ceiling on every component.  For the paper's vectorised engine the binding
resource is DSP slices (each replica of the hazard/interpolation cluster
carries its own double-precision datapath), which is what stops a sixth
engine fitting on the U280.

:class:`Floorplan` additionally assigns engines round-robin to SLRs, since a
kernel straddling super-logic regions rarely closes timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ResourceError, ValidationError
from repro.fpga.device import FPGADevice
from repro.hls.resources import ResourceUsage

__all__ = ["Floorplan", "max_engines"]


def max_engines(
    device: FPGADevice,
    engine_resources: ResourceUsage,
    *,
    shell_resources: ResourceUsage | None = None,
) -> int:
    """Largest engine count fitting under the device's routable ceiling.

    Parameters
    ----------
    device:
        Target card.
    engine_resources:
        Resource vector of one engine instance.
    shell_resources:
        Static shell/platform overhead reserved before engines are placed
        (XDMA, HBM controllers...).  Defaults to a representative U280
        shell footprint.
    """
    shell = shell_resources if shell_resources is not None else _DEFAULT_SHELL
    if engine_resources == ResourceUsage():
        raise ValidationError("engine resources are zero; nothing to place")
    n = 0
    while True:
        total = shell + engine_resources.scale(n + 1)
        if not total.fits_within(device.resources, ceiling=device.routable_ceiling):
            return n
        n += 1


#: Representative static shell footprint for a U280 XDMA platform.
_DEFAULT_SHELL = ResourceUsage(lut=120_000, ff=160_000, bram36=200, uram=0, dsp=12)


@dataclass
class Floorplan:
    """A concrete placement of ``n_engines`` onto a device.

    Construction validates the fit and assigns each engine to an SLR
    round-robin; :meth:`describe` renders the placement and utilisation.
    """

    device: FPGADevice
    engine_resources: ResourceUsage
    n_engines: int
    shell_resources: ResourceUsage = field(default_factory=lambda: _DEFAULT_SHELL)

    def __post_init__(self) -> None:
        if self.n_engines < 1:
            raise ValidationError(f"n_engines must be >= 1, got {self.n_engines}")
        total = self.total_resources
        total.require_fit(
            self.device.resources,
            ceiling=self.device.routable_ceiling,
            what=f"{self.n_engines}-engine design on {self.device.name}",
        )

    @property
    def total_resources(self) -> ResourceUsage:
        """Shell plus all engine instances."""
        return self.shell_resources + self.engine_resources.scale(self.n_engines)

    @property
    def slr_assignment(self) -> list[int]:
        """SLR index per engine (round-robin)."""
        return [i % self.device.slr_count for i in range(self.n_engines)]

    def utilisation(self) -> dict[str, float]:
        """Device utilisation fractions of the placed design."""
        return self.total_resources.utilisation(self.device.resources)

    def headroom_engines(self) -> int:
        """How many more engines would still fit."""
        return (
            max_engines(
                self.device,
                self.engine_resources,
                shell_resources=self.shell_resources,
            )
            - self.n_engines
        )

    def describe(self) -> str:
        """Multi-line placement report."""
        util = self.utilisation()
        lines = [
            f"{self.n_engines} engine(s) on {self.device.name} "
            f"(ceiling {self.device.routable_ceiling:.0%})",
            f"  SLR assignment: {self.slr_assignment}",
        ]
        for key, frac in util.items():
            lines.append(f"  {key:<8} {frac:>7.1%}")
        lines.append(f"  headroom: {self.headroom_engines()} more engine(s)")
        return "\n".join(lines)


def require_fit_or_explain(
    device: FPGADevice, engine_resources: ResourceUsage, n_engines: int
) -> Floorplan:
    """Build a floorplan or raise a :class:`ResourceError` with guidance."""
    try:
        return Floorplan(
            device=device, engine_resources=engine_resources, n_engines=n_engines
        )
    except ResourceError as exc:
        limit = max_engines(device, engine_resources)
        raise ResourceError(
            f"{exc}; at most {limit} engine(s) of this configuration fit on "
            f"{device.name}"
        ) from exc
