"""HBM2 external-memory access model.

The engines keep their input/output buffers in the U280's HBM2 and follow
the Vitis best practice the paper cites: "external data accesses are packed
into widths of 512 bits" (Section III, citing the Vitis performance guide).
A 512-bit access moves eight doubles per beat, so a well-formed burst of
``n`` doubles costs roughly ``ceil(n / 8)`` cycles plus a fixed channel
latency, derated by a bus efficiency factor.

The model also exposes the aggregate bandwidth ceiling used by the
multi-engine contention analysis: engines share the HBM subsystem, and at
five engines the shared-interface pressure is one source of the observed
sub-linear scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

from repro.errors import ValidationError

__all__ = ["HBMModel"]

#: Bytes moved per beat with 512-bit packing.
BYTES_PER_BEAT_512 = 64


@dataclass(frozen=True)
class HBMModel:
    """Timing model of an HBM2 pseudo-channel group.

    Parameters
    ----------
    access_latency_cycles:
        Fixed cycles from request to first beat (channel + AXI latency).
    bus_efficiency:
        Fraction of peak beats actually sustained (refresh, bank conflicts).
    width_bits:
        Access width; the engines use 512 per the cited best practice.
    channels:
        Pseudo-channels available to the design (U280 exposes 32).
    peak_bytes_per_sec_per_channel:
        Peak per-channel bandwidth (HBM2 on the U280: ~14.4 GB/s/PC, 460
        GB/s aggregate).
    """

    access_latency_cycles: float = 120.0
    bus_efficiency: float = 0.85
    width_bits: int = 512
    channels: int = 32
    peak_bytes_per_sec_per_channel: float = 14.4e9

    def __post_init__(self) -> None:
        if self.access_latency_cycles < 0:
            raise ValidationError("access_latency_cycles must be >= 0")
        if not 0.0 < self.bus_efficiency <= 1.0:
            raise ValidationError(
                f"bus_efficiency must be in (0, 1], got {self.bus_efficiency}"
            )
        if self.width_bits % 8 != 0 or self.width_bits <= 0:
            raise ValidationError(f"width_bits must be a positive multiple of 8")
        if self.channels < 1:
            raise ValidationError(f"channels must be >= 1, got {self.channels}")

    @property
    def bytes_per_beat(self) -> int:
        """Bytes transferred per clock beat at the configured width."""
        return self.width_bits // 8

    def burst_cycles(self, n_bytes: int) -> float:
        """Cycles to stream ``n_bytes`` as one contiguous burst."""
        if n_bytes < 0:
            raise ValidationError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        beats = ceil(n_bytes / self.bytes_per_beat)
        return self.access_latency_cycles + beats / self.bus_efficiency

    def doubles_burst_cycles(self, n_doubles: int) -> float:
        """Cycles to stream ``n_doubles`` 8-byte values (packed)."""
        return self.burst_cycles(n_doubles * 8)

    def unpacked_burst_cycles(self, n_doubles: int) -> float:
        """Cycles when *not* packed: one beat per double.

        This is the anti-pattern the best-practice note exists to avoid;
        the ablation benchmark contrasts it with the packed layout.
        """
        if n_doubles < 0:
            raise ValidationError(f"n_doubles must be >= 0, got {n_doubles}")
        if n_doubles == 0:
            return 0.0
        return self.access_latency_cycles + n_doubles / self.bus_efficiency

    def aggregate_bandwidth_bytes_per_sec(self) -> float:
        """Card-level HBM bandwidth ceiling shared by all engines."""
        return self.channels * self.peak_bytes_per_sec_per_channel * self.bus_efficiency
