"""Shared-interconnect co-simulation for multi-engine deployments.

The multi-engine system applies a calibrated contention coefficient
(``PaperScenario.multi_engine_contention``) to reproduce Table II's
sub-linear five-engine scaling.  This module asks the mechanistic question
behind that constant: *how much of the slowdown can the on-card shared DMA
path actually produce?*

It co-simulates the option/result DMA traffic of ``n`` engines through one
shared AXI/HBM arbiter: each engine issues one descriptor per option at its
natural processing cadence; the arbiter serves round-robin with a fixed
per-descriptor service time.  If the arbiter saturates, engines queue and
the traffic makespan stretches beyond the compute makespan.

The finding (see ``benchmarks/test_ablation_interconnect.py``): at the
paper's operating point the DMA path is a few-percent effect at most — the
calibrated coefficient therefore mostly reflects host-side serialisation
(driver queues, XRT scheduling), which the paper's testbed would exhibit
but a card-only model cannot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataflow.engine import Simulator
from repro.dataflow.process import Delay, Kernel, Read, Write
from repro.dataflow.stream import Stream
from repro.errors import ValidationError
from repro.workloads.scenarios import PaperScenario

__all__ = ["DMATrafficModel", "TrafficReport", "cosim_dma_traffic"]


@dataclass(frozen=True)
class DMATrafficModel:
    """Timing of one DMA descriptor through the shared arbiter.

    Parameters
    ----------
    service_cycles:
        Arbiter occupancy per descriptor: AXI address phase, HBM access
        latency amortised over outstanding transactions, and the data beats
        of one option record plus one result (both under 64 bytes, i.e. one
        512-bit beat each).
    """

    service_cycles: float = 140.0

    def __post_init__(self) -> None:
        if self.service_cycles <= 0:
            raise ValidationError("service_cycles must be > 0")


@dataclass(frozen=True)
class TrafficReport:
    """Outcome of a DMA co-simulation.

    Attributes
    ----------
    n_engines:
        Engines sharing the arbiter.
    compute_cycles:
        Per-engine compute makespan (requests are issued at this cadence).
    traffic_cycles:
        Completion time of the full DMA token network.
    arbiter_busy_cycles:
        Cycles the arbiter spent serving descriptors.
    """

    n_engines: int
    compute_cycles: float
    traffic_cycles: float
    arbiter_busy_cycles: float

    @property
    def slowdown(self) -> float:
        """Traffic-induced stretch over the compute-only makespan."""
        if self.compute_cycles <= 0:
            return 1.0
        return max(1.0, self.traffic_cycles / self.compute_cycles)

    @property
    def arbiter_utilisation(self) -> float:
        """Busy fraction of the shared arbiter."""
        if self.traffic_cycles <= 0:
            return 0.0
        return min(1.0, self.arbiter_busy_cycles / self.traffic_cycles)


def _traffic_gen(
    req: Stream, n_requests: int, cadence: float
) -> Kernel:
    """One engine's DMA client: a descriptor per option at its cadence."""
    for i in range(n_requests):
        yield Write(req, i)
        yield Delay(cadence)


def _arbiter(
    reqs: tuple[Stream, ...],
    rsps: tuple[Stream, ...],
    counts: list[int],
    service: float,
) -> Kernel:
    """Round-robin arbiter over per-engine request queues.

    Serves engines cyclically, skipping exhausted ones; each grant occupies
    the arbiter for ``service`` cycles.  (A blocking round-robin over
    non-exhausted queues is exactly how a work-conserving AXI interconnect
    with per-master FIFOs behaves under saturation; under light load it
    waits on the next master in turn, which is conservative.)
    """
    remaining = list(counts)
    while any(r > 0 for r in remaining):
        for e, req in enumerate(reqs):
            if remaining[e] <= 0:
                continue
            token = yield Read(req)
            yield Delay(service)
            yield Write(rsps[e], token)
            remaining[e] -= 1


def _completion(rsp: Stream, n: int) -> Kernel:
    """Drain one engine's responses."""
    for _ in range(n):
        yield Read(rsp)


def cosim_dma_traffic(
    scenario: PaperScenario,
    n_engines: int,
    *,
    compute_cycles_per_option: float,
    options_per_engine: int,
    model: DMATrafficModel | None = None,
) -> TrafficReport:
    """Co-simulate ``n_engines`` worth of DMA descriptors through one arbiter.

    Parameters
    ----------
    scenario:
        Provides stream-depth defaults.
    n_engines:
        Engines sharing the interconnect.
    compute_cycles_per_option:
        Each engine's natural per-option cadence (its bottleneck stage
        cost) — descriptors are issued at this rate.
    options_per_engine:
        Chunk size per engine.
    model:
        Arbiter timing (defaults to :class:`DMATrafficModel`).
    """
    if n_engines < 1:
        raise ValidationError(f"n_engines must be >= 1, got {n_engines}")
    if options_per_engine < 1:
        raise ValidationError("options_per_engine must be >= 1")
    if compute_cycles_per_option <= 0:
        raise ValidationError("compute_cycles_per_option must be > 0")
    m = model if model is not None else DMATrafficModel()

    sim = Simulator(f"dma_cosim[{n_engines}]")
    reqs = tuple(
        sim.stream(f"req[{e}]", depth=scenario.stream_depth)
        for e in range(n_engines)
    )
    rsps = tuple(
        sim.stream(f"rsp[{e}]", depth=scenario.stream_depth)
        for e in range(n_engines)
    )
    counts = [options_per_engine] * n_engines
    for e in range(n_engines):
        sim.process(
            f"traffic[{e}]",
            _traffic_gen(reqs[e], options_per_engine, compute_cycles_per_option),
        )
        sim.process(f"complete[{e}]", _completion(rsps[e], options_per_engine))
    sim.process("arbiter", _arbiter(reqs, rsps, counts, m.service_cycles))
    result = sim.run()

    compute = options_per_engine * compute_cycles_per_option
    return TrafficReport(
        n_engines=n_engines,
        compute_cycles=compute,
        traffic_cycles=result.makespan_cycles,
        arbiter_busy_cycles=result.process_busy["arbiter"],
    )
