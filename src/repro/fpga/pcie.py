"""PCIe host-transfer model.

"The overhead of data transfer via PCIe is included for all FPGA results,
which nevertheless represents a small part of the overall execution time"
(paper Section II.B).  The engines therefore add, to every batch: the
one-off download of the two 1024-entry rate curves, the download of the
option vector, and the upload of the spread results.

The model is the standard latency + size/bandwidth affine model for a PCIe
Gen3 x16 link (the U280's host interface), with an effective bandwidth well
below the 15.75 GB/s wire rate to account for DMA descriptor and driver
overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["PCIeModel"]


@dataclass(frozen=True)
class PCIeModel:
    """Affine PCIe transfer-time model.

    Parameters
    ----------
    latency_s:
        Fixed per-transfer software + DMA setup latency.
    bandwidth_bytes_per_sec:
        Effective sustained bandwidth.
    """

    latency_s: float = 10e-6
    bandwidth_bytes_per_sec: float = 12e9

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ValidationError(f"latency_s must be >= 0, got {self.latency_s}")
        if self.bandwidth_bytes_per_sec <= 0:
            raise ValidationError("bandwidth_bytes_per_sec must be > 0")

    def transfer_seconds(self, n_bytes: int) -> float:
        """Seconds to move ``n_bytes`` in one DMA transfer."""
        if n_bytes < 0:
            raise ValidationError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0.0
        return self.latency_s + n_bytes / self.bandwidth_bytes_per_sec

    def batch_seconds(
        self,
        n_options: int,
        n_rates: int,
        *,
        option_bytes: int = 24,
        result_bytes: int = 8,
        rate_entry_bytes: int = 16,
    ) -> float:
        """Total PCIe time for one CDS batch.

        Three transfers: rate curves down (two curves of ``n_rates``
        entries, two doubles each), options down (maturity, frequency,
        recovery — 24 bytes), spreads up (one double per option).
        """
        if n_options < 0 or n_rates < 0:
            raise ValidationError("n_options and n_rates must be >= 0")
        curves = self.transfer_seconds(2 * n_rates * rate_entry_bytes)
        options_down = self.transfer_seconds(n_options * option_bytes)
        results_up = self.transfer_seconds(n_options * result_bytes)
        return curves + options_down + results_up
