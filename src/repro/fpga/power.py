"""FPGA card power model.

Table II of the paper reports near-flat card power as engines are added:
35.86 W with one engine, 35.79 W with two, 37.38 W with five — "the
additional power overhead of adding extra FPGA engines is fairly minimal".
The affine model below (static card power plus a small per-engine dynamic
increment) is fitted by least squares to those three points:

``P(n) = 35.24 + 0.415 * n``  (watts)

which reproduces the measurements to within the run-to-run noise the paper
itself exhibits (power at two engines is *below* power at one in Table II).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["FPGAPowerModel"]


@dataclass(frozen=True)
class FPGAPowerModel:
    """Affine card power in the number of active engines.

    Parameters
    ----------
    static_watts:
        Card power with the shell loaded and clocks running but no engine
        active: HBM refresh, transceivers, shell logic, fans.
    per_engine_watts:
        Dynamic increment per active CDS engine.
    """

    static_watts: float = 35.24
    per_engine_watts: float = 0.415

    def __post_init__(self) -> None:
        if self.static_watts < 0 or self.per_engine_watts < 0:
            raise ValidationError("power components must be >= 0")

    def watts(self, n_engines: int) -> float:
        """Card power draw with ``n_engines`` active."""
        if n_engines < 0:
            raise ValidationError(f"n_engines must be >= 0, got {n_engines}")
        return self.static_watts + self.per_engine_watts * n_engines

    def energy_joules(self, n_engines: int, seconds: float) -> float:
        """Energy for a run of ``seconds`` with ``n_engines`` active."""
        if seconds < 0:
            raise ValidationError(f"seconds must be >= 0, got {seconds}")
        return self.watts(n_engines) * seconds

    def efficiency(self, options_per_second: float, n_engines: int) -> float:
        """Power efficiency in options/second/Watt (Table II's last column)."""
        if options_per_second < 0:
            raise ValidationError("options_per_second must be >= 0")
        return options_per_second / self.watts(n_engines)
