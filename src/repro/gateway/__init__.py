"""Multi-tenant gateway over the quote-serving tier.

:mod:`repro.gateway` puts a front door in front of N
:class:`~repro.serving.engine.QuoteServer` replicas sharing one
simulated clock:

* :mod:`~repro.gateway.routing` — a consistent-hash ring mapping
  market-state/contract keys to servers, with minimal key movement on
  drain;
* :mod:`~repro.gateway.tenancy` — per-tenant SLA profiles (priority
  tier, token-bucket admission quota, deadline class) enforced before
  any server's bounded queue;
* :mod:`~repro.gateway.cache` — a market-state-keyed quote cache with
  single-flight dedup and tick-driven invalidation, pinned bit-identical
  to uncached repricing;
* :mod:`~repro.gateway.engine` — :class:`Gateway`, orchestrating
  route → admit → cache-lookup → dispatch and aggregating a
  :class:`~repro.gateway.metrics.GatewayResult`;
* :mod:`~repro.gateway.workload` — multi-tenant Zipf request streams
  and market-tick streams.
"""

from repro.gateway.cache import (
    DEFAULT_HIT_LATENCY_S,
    CacheEntry,
    CacheStats,
    QuoteCache,
    cache_key,
)
from repro.gateway.engine import Gateway
from repro.gateway.metrics import GatewayResult, TenantStats, per_tenant_stats
from repro.gateway.routing import DEFAULT_REPLICAS, HashRing, route_key
from repro.gateway.tenancy import (
    DEFAULT_TENANTS,
    PASSTHROUGH_TENANT,
    TenantBook,
    TenantProfile,
    TokenBucket,
)
from repro.gateway.workload import make_tenant_stream, make_tick_stream

__all__ = [
    "Gateway",
    "GatewayResult",
    "TenantStats",
    "per_tenant_stats",
    "HashRing",
    "route_key",
    "DEFAULT_REPLICAS",
    "TenantProfile",
    "TokenBucket",
    "TenantBook",
    "DEFAULT_TENANTS",
    "PASSTHROUGH_TENANT",
    "QuoteCache",
    "CacheStats",
    "CacheEntry",
    "cache_key",
    "DEFAULT_HIT_LATENCY_S",
    "make_tenant_stream",
    "make_tick_stream",
]
