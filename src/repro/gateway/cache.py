"""Market-state-keyed quote cache with single-flight dedup.

The headline economics of the gateway: quotes are deterministic
functions of their (market row, contract) key — the kernel's spread
surface depends only on the rows priced, never on which request asked —
so identical requests across tenants can share one kernel row.  The
cache exploits that two ways:

* **single-flight** — the first request for a key (the *leader*) is
  dispatched; concurrent requests for the same key while the leader is
  in flight (*joiners*) attach to the leader's entry and receive the
  leader's value at the leader's completion instant, never costing a
  second kernel row;
* **hits** — requests arriving after the leader completed get the
  cached value at a fixed small lookup latency.

Both reply paths are **bit-identical** to an uncached reprice — the
property suite pins it — because the serving layer already pins batched
values equal to individual pricing, and the cache only ever replays a
value the kernel produced for exactly that key.

Invalidation is tick-driven: the market tape publishes row updates (a
seeded tick stream), and a tick on row *r* drops every cached entry
keyed on *r*.  A pending (in-flight) entry that gets invalidated stops
accepting joiners — its existing joiners still resolve from the leader
— and the next request for the key becomes a fresh leader.

Only ``quote`` requests are cached: revals and VaR refreshes are
book-level aggregates with per-tenant row sets, the wrong shape for a
shared key.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.serving.request import PricingRequest

__all__ = ["CacheStats", "QuoteCache", "CacheEntry", "DEFAULT_HIT_LATENCY_S"]

#: Simulated latency of answering from the cache: one gateway-local
#: lookup, no host dispatch and no card window.
DEFAULT_HIT_LATENCY_S = 20e-6


@dataclass
class CacheStats:
    """Tallies of one replay's cache traffic.

    ``lookups`` counts cacheable (quote) requests that consulted the
    cache; every one is exactly a hit, a join, or a miss.
    """

    lookups: int = 0
    hits: int = 0
    joins: int = 0
    misses: int = 0
    insertions: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        """Served-from-cache fraction of cacheable lookups."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def dedup_rate(self) -> float:
        """Fraction of cacheable lookups that cost no kernel row."""
        return (self.hits + self.joins) / self.lookups if self.lookups else 0.0


@dataclass
class CacheEntry:
    """One key's cache line: pending (leader in flight) or ready."""

    key: tuple[int, int]
    leader_id: int
    ready: bool = False
    live: bool = True  # still reachable under its key (not invalidated)
    value: float = 0.0
    ready_s: float = 0.0
    formed_s: float = 0.0
    batch_id: int = -1
    cards: tuple[int, ...] = ()
    waiters: list[PricingRequest] = field(default_factory=list)


def cache_key(request: PricingRequest) -> tuple[int, int] | None:
    """The market-state cache key of a request (``None`` = uncacheable)."""
    if request.kind != "quote":
        return None
    return (request.rows[0], request.option_index)


class QuoteCache:
    """Single-flight quote cache keyed on (market row, contract).

    Parameters
    ----------
    hit_latency_s:
        Simulated gateway-local latency of a cache hit (>= 0).
    """

    def __init__(self, *, hit_latency_s: float = DEFAULT_HIT_LATENCY_S) -> None:
        if hit_latency_s < 0:
            raise ValidationError(
                f"hit_latency_s must be >= 0, got {hit_latency_s}"
            )
        self.hit_latency_s = hit_latency_s
        self.stats = CacheStats()
        self._entries: dict[tuple[int, int], CacheEntry] = {}
        self._leaders: dict[int, CacheEntry] = {}
        self._by_row: dict[int, set[tuple[int, int]]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def get(self, key: tuple[int, int]) -> CacheEntry | None:
        """The live entry under ``key``, if any (no stats side effects)."""
        return self._entries.get(key)

    def begin(self, key: tuple[int, int], leader: PricingRequest) -> CacheEntry:
        """Open a pending entry with ``leader`` as its single flight."""
        if key in self._entries:
            raise ValidationError(f"cache key {key} already has a live entry")
        entry = CacheEntry(key=key, leader_id=leader.request_id)
        self._entries[key] = entry
        self._leaders[leader.request_id] = entry
        self._by_row.setdefault(key[0], set()).add(key)
        self.stats.insertions += 1
        return entry

    def leader_entry(self, request_id: int) -> CacheEntry | None:
        """The entry a request leads, if it leads one."""
        return self._leaders.get(request_id)

    def fulfil(
        self,
        request_id: int,
        *,
        value: float,
        ready_s: float,
        formed_s: float,
        batch_id: int,
        cards: tuple[int, ...],
    ) -> CacheEntry | None:
        """Mark a leader's entry ready with the kernel's answer.

        Returns the entry (its ``waiters`` are the caller's to resolve)
        or ``None`` when the request leads nothing.
        """
        entry = self._leaders.pop(request_id, None)
        if entry is None:
            return None
        entry.ready = True
        entry.value = value
        entry.ready_s = ready_s
        entry.formed_s = formed_s
        entry.batch_id = batch_id
        entry.cards = cards
        return entry

    def abandon(self, request_id: int) -> CacheEntry | None:
        """Drop a leader's entry (the leader was shed or failed).

        The entry leaves the key map so the next identical request
        becomes a fresh leader; its joiners are returned for the caller
        to terminate alongside the leader.
        """
        entry = self._leaders.pop(request_id, None)
        if entry is None:
            return None
        self._drop(entry)
        return entry

    def _drop(self, entry: CacheEntry) -> None:
        if entry.live:
            entry.live = False
            self._entries.pop(entry.key, None)
            keys = self._by_row.get(entry.key[0])
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._by_row[entry.key[0]]

    def invalidate_row(self, row: int) -> int:
        """Drop every entry keyed on ``row`` (a market tick landed on it).

        Pending entries are unlinked but their leaders stay tracked, so
        in-flight work still resolves its joiners.  Returns how many
        entries were dropped.
        """
        keys = self._by_row.get(row)
        if not keys:
            return 0
        dropped = 0
        for key in list(keys):
            self._drop(self._entries[key])
            dropped += 1
        self.stats.invalidations += dropped
        return dropped
