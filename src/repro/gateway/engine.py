"""The multi-tenant gateway: route → admit → cache-lookup → dispatch.

:class:`Gateway` fronts N :class:`~repro.serving.engine.QuoteServer`
replicas on **one** shared :class:`~repro.sim.Simulation` clock — the
"millions of users" front door.  Each arriving request passes four
stages inside its arrival event:

1. **admit** — the tenant's token bucket is charged; a dry bucket sheds
   the request with the typed :attr:`~repro.serving.request.ShedReason.
   QUOTA` reason before it can touch any server queue;
2. **cache** — quotes consult the market-state-keyed
   :class:`~repro.gateway.cache.QuoteCache`: a ready entry answers at
   cache-hit latency, an in-flight entry absorbs the request as a
   joiner (single-flight dedup), a miss makes it the key's leader;
3. **route** — the consistent-hash ring picks the owning server, so
   identical keys always share a server (and a micro-batch row);
4. **dispatch** — the server lane runs the *exact*
   :meth:`~repro.serving.engine.QuoteServer.serve` event-loop sequence
   (fire linger timers, drain the in-flight window, reap expired work,
   bounded-queue admission, offer to the coalescer), with every lane's
   timing rig sharing the gateway's clock.

With one server, one unlimited tenant and the cache off, the gateway
adds no behaviour: its lane result is pinned **equal** to
``QuoteServer.serve`` on the same trace, and cached/deduped values are
pinned bit-identical to cache-off replies — both by the property suite.

Fault plans compose: a plan applied to one lane routes that lane's
dispatch through the failure-aware layer (retries, breakers, the
degradation ladder) while the other lanes run clean — the
"crash-1of4 behind the gateway" chaos cell.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.api import PricingBackend
from repro.api.cost import ClusterTimingRig
from repro.cluster.batching import BatchQueue
from repro.cluster.interconnect import HostLinkModel
from repro.errors import ValidationError
from repro.risk.engine import Portfolio
from repro.risk.tensor import ScenarioTensor
from repro.serving.coalescer import MicroBatch, MicroBatchCoalescer
from repro.serving.engine import QuoteServer
from repro.serving.metrics import CardLoad, LatencyStats, ServingResult
from repro.serving.request import (
    FailRecord,
    PricingRequest,
    PricingResponse,
    ShedReason,
    ShedRecord,
)
from repro.sim import CompletionTracker, Simulation
from repro.telemetry import NULL_TELEMETRY, MetricsRegistry, Telemetry
from repro.workloads.scenarios import PaperScenario

from repro.gateway.cache import DEFAULT_HIT_LATENCY_S, QuoteCache, cache_key
from repro.gateway.metrics import GatewayResult, per_tenant_stats
from repro.gateway.routing import DEFAULT_REPLICAS, HashRing, route_key
from repro.gateway.tenancy import DEFAULT_TENANTS, TenantBook, TenantProfile

if TYPE_CHECKING:  # fault types are optional at runtime (lazy import)
    from repro.faults import FaultPlan, HedgePolicy, RetryPolicy

__all__ = ["Gateway"]


class _Lane:
    """One server's per-replay surfaces behind the gateway."""

    def __init__(
        self, index: int, server: QuoteServer, sim: Simulation
    ) -> None:
        self.index = index
        self.server = server
        self.rig = ClusterTimingRig(
            server.cost_model,
            server.link,
            server.n_cards,
            sim=sim,
            telemetry=server.telemetry,
        )
        self.coalescer = MicroBatchCoalescer(server.queue)
        self.in_flight = CompletionTracker()
        self.metrics = MetricsRegistry()
        self.n_batches = self.metrics.counter(
            "serving_batches_total", "micro-batches dispatched"
        )
        self.batch_requests = self.metrics.counter(
            "serving_batch_requests_total", "requests carried by batches"
        )
        self.batch_rows = self.metrics.counter(
            "serving_batch_rows_total", "deduplicated market rows batched"
        )
        self.shed_queue = self.metrics.counter(
            "serving_requests_shed_queue_total", "arrivals shed on backpressure"
        )
        self.trace: list[PricingRequest] = []
        self.responses: list[PricingResponse] = []
        self.queue_sheds: list[ShedRecord] = []
        self.dispatcher = None  # FaultedDispatcher in fault mode
        # Scan cursors for the gateway's cache-resolution sweep.
        self.seen_responses = 0
        self.seen_sheds = 0
        self.seen_fails = 0

    @property
    def all_responses(self) -> list[PricingResponse]:
        """The lane's responses so far (fault or fault-free path)."""
        return (
            self.dispatcher.responses if self.dispatcher is not None
            else self.responses
        )

    @property
    def n_outstanding(self) -> int:
        """Admitted-but-incomplete requests on this lane."""
        extra = self.dispatcher.n_outstanding if self.dispatcher else 0
        return self.coalescer.n_pending + len(self.in_flight) + extra

    def run(self, batches: list[MicroBatch]) -> None:
        """Dispatch formed batches through the lane's server."""
        for batch in batches:
            if self.dispatcher is not None:
                self.dispatcher.run_batch(batch)
            else:
                done = self.server._run_batch(batch, self.rig, self.metrics)
                self.responses.extend(done)
                for resp in done:
                    self.in_flight.push(resp.completion_s)
            self.n_batches.inc()
            self.batch_requests.inc(batch.n_requests)
            self.batch_rows.inc(len(batch.rows))

    def tick(self, now: float) -> None:
        """The per-arrival housekeeping of ``QuoteServer.serve``."""
        self.run(self.coalescer.advance(now))
        self.in_flight.drain(now)
        self.coalescer.reap(now)


class Gateway:
    """Multi-tenant front door over N quote-server replicas.

    Parameters
    ----------
    book / tape:
        The shared book and market tape every replica serves.
    scenario / n_cards / n_engines / scheduler / link / queue /
    queue_depth / chunk_size / backend:
        Per-replica server configuration, forwarded verbatim to each
        :class:`~repro.serving.engine.QuoteServer` (pass backend
        *names*, not instances, when ``n_servers > 1`` — every replica
        binds its own backend).
    n_servers:
        Replica count behind the ring.
    tenants:
        The tenant set (default: the three-tier
        :data:`~repro.gateway.tenancy.DEFAULT_TENANTS` mix).
    cache:
        Whether the quote cache (and single-flight dedup) is on.
    cache_hit_latency_s:
        Simulated latency of a cache hit.
    ring_replicas:
        Virtual points per server on the consistent-hash ring.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle shared by
        the gateway and every replica; ``gateway_*`` counters and spans
        land next to the servers' ``serving_*`` ones.
    """

    def __init__(
        self,
        book: Portfolio,
        tape: ScenarioTensor,
        *,
        scenario: PaperScenario | None = None,
        n_servers: int = 2,
        n_cards: int = 4,
        n_engines: int = 5,
        scheduler: str = "least-loaded",
        link: HostLinkModel | None = None,
        queue: BatchQueue | None = None,
        queue_depth: int = 4096,
        chunk_size: int | None = None,
        backend: str | PricingBackend = "vectorized",
        tenants: tuple[TenantProfile, ...] = DEFAULT_TENANTS,
        cache: bool = True,
        cache_hit_latency_s: float = DEFAULT_HIT_LATENCY_S,
        ring_replicas: int = DEFAULT_REPLICAS,
        telemetry: Telemetry | None = None,
    ) -> None:
        if n_servers < 1:
            raise ValidationError(f"n_servers must be >= 1, got {n_servers}")
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.tenants = tuple(tenants)
        TenantBook(self.tenants)  # validate eagerly
        self.cache_enabled = bool(cache)
        self.cache_hit_latency_s = cache_hit_latency_s
        self.queue_depth = queue_depth
        self.servers = tuple(
            QuoteServer(
                book,
                tape,
                scenario=scenario,
                n_cards=n_cards,
                n_engines=n_engines,
                scheduler=scheduler,
                link=link,
                queue=queue,
                queue_depth=queue_depth,
                chunk_size=chunk_size,
                backend=backend,
                telemetry=telemetry,
            )
            for _ in range(n_servers)
        )
        self.ring = HashRing(range(n_servers), replicas=ring_replicas)

    @property
    def n_servers(self) -> int:
        """Replicas behind the ring (drained ones included)."""
        return len(self.servers)

    @property
    def tape(self) -> ScenarioTensor:
        """The shared market tape."""
        return self.servers[0].tape

    def drain(self, server_index: int) -> None:
        """Take one replica out of rotation; only its keys move."""
        self.ring.drain(server_index)

    # ------------------------------------------------------------------
    def serve(
        self,
        requests,
        *,
        ticks=None,
        faults: "FaultPlan | None" = None,
        fault_server: int = 0,
        hedge: "HedgePolicy | None" = None,
        retry: "RetryPolicy | None" = None,
        monitor=None,
    ) -> GatewayResult:
        """Replay a multi-tenant trace through the gateway tier.

        Parameters
        ----------
        requests:
            The offered load; sorted internally by arrival time.
            Requests without a tenant label bill to the first profile.
        ticks:
            Optional ``(time_s, row)`` market ticks; each drops every
            cached quote keyed on its row (ignored with the cache off).
        faults:
            Optional :class:`~repro.faults.FaultPlan` applied to the
            ``fault_server`` lane, which then dispatches through the
            failure-aware layer while the other lanes run clean.
        fault_server:
            Which lane the plan hits.
        hedge / retry:
            Fault-mode policies for the faulted lane.
        monitor:
            Optional :class:`~repro.monitor.Monitor`; attached to the
            shared clock with a cluster-wide ``cards_up`` probe and
            finalized against the aggregate result.

        Returns
        -------
        GatewayResult
            Aggregate, per-tenant and per-server accounting plus the
            cache economics.
        """
        if not requests:
            raise ValidationError("request trace must be non-empty")
        trace = sorted(requests, key=lambda r: (r.arrival_s, r.request_id))
        book = TenantBook(self.tenants)
        for req in trace:
            self.servers[0]._check_request(req)
            book.profile(req.tenant)  # unknown tenants fail fast
        faulted = faults is not None and not faults.is_empty
        if faulted and not 0 <= fault_server < self.n_servers:
            raise ValidationError(
                f"fault_server must index a server, got {fault_server}"
            )

        sim = Simulation()
        lanes = [
            _Lane(i, server, sim) for i, server in enumerate(self.servers)
        ]
        if faulted:
            from repro.serving.faulted import FaultedDispatcher

            lane = lanes[fault_server]
            lane.dispatcher = FaultedDispatcher(
                lane.server, lane.rig, faults, retry=retry, hedge=hedge,
                metrics=lane.metrics, in_flight=lane.in_flight,
            )
        cache = (
            QuoteCache(hit_latency_s=self.cache_hit_latency_s)
            if self.cache_enabled
            else None
        )
        recorder = self.telemetry.recorder

        # Gateway-level tallies and outcome streams.
        gw = MetricsRegistry()
        hits_total = gw.counter(
            "gateway_cache_hits_total", "quotes answered from the cache"
        )
        joins_total = gw.counter(
            "gateway_cache_joins_total", "quotes coalesced onto a leader"
        )
        misses_total = gw.counter(
            "gateway_cache_misses_total", "cacheable quotes that led a flight"
        )
        invalidations_total = gw.counter(
            "gateway_cache_invalidations_total", "cache entries dropped by ticks"
        )
        cache_responses: list[PricingResponse] = []
        quota_sheds: list[ShedRecord] = []
        waiter_sheds: list[ShedRecord] = []
        waiter_fails: list[FailRecord] = []

        if monitor is not None:
            total_cards = sum(lane.server.n_cards for lane in lanes)
            probe = None
            if faulted:
                flane = lanes[fault_server]
                clean = total_cards - flane.server.n_cards
                health = flane.dispatcher.health
                probe = lambda t: clean + float(  # noqa: E731
                    len(health.healthy_cards(t))
                )
            monitor.attach(sim, gw, n_cards=total_cards, probe=probe)

        def emit_cache_response(
            req: PricingRequest, entry, completion: float, formed: float
        ) -> None:
            cache_responses.append(
                PricingResponse(
                    request_id=req.request_id,
                    kind=req.kind,
                    value=entry.value,
                    arrival_s=req.arrival_s,
                    formed_s=formed,
                    completion_s=completion,
                    latency_s=completion - req.arrival_s,
                    met_deadline=completion <= req.deadline_s,
                    batch_id=entry.batch_id,
                    cards=entry.cards,
                    tenant=req.tenant,
                )
            )

        def resolve_outcomes() -> None:
            """Sweep new lane outcomes into cache entries and waiters."""
            for lane in lanes:
                responses = lane.all_responses
                while lane.seen_responses < len(responses):
                    resp = responses[lane.seen_responses]
                    lane.seen_responses += 1
                    entry = cache.fulfil(
                        resp.request_id,
                        value=resp.value,
                        ready_s=resp.completion_s,
                        formed_s=resp.formed_s,
                        batch_id=resp.batch_id,
                        cards=resp.cards,
                    )
                    if entry is not None:
                        for waiter in entry.waiters:
                            emit_cache_response(
                                waiter,
                                entry,
                                max(waiter.arrival_s, entry.ready_s),
                                max(waiter.arrival_s, entry.formed_s),
                            )
                        entry.waiters.clear()
                sheds = lane.coalescer.sheds
                while lane.seen_sheds < len(sheds):
                    rec = sheds[lane.seen_sheds]
                    lane.seen_sheds += 1
                    entry = cache.abandon(rec.request.request_id)
                    if entry is not None:
                        # Single-flight ties a joiner's fate to its
                        # leader: nobody repriced the key for them.
                        for waiter in entry.waiters:
                            waiter_sheds.append(
                                ShedRecord(waiter, rec.time_s, rec.reason)
                            )
                        entry.waiters.clear()
                if lane.dispatcher is not None:
                    fails = lane.dispatcher.fails
                    while lane.seen_fails < len(fails):
                        rec = fails[lane.seen_fails]
                        lane.seen_fails += 1
                        entry = cache.abandon(rec.request.request_id)
                        if entry is not None:
                            for waiter in entry.waiters:
                                waiter_fails.append(
                                    FailRecord(
                                        request=waiter,
                                        time_s=rec.time_s,
                                        attempts=rec.attempts,
                                        reason=rec.reason,
                                    )
                                )
                            entry.waiters.clear()

        def shed_at_lane(
            lane: _Lane, req: PricingRequest, now: float, reason: ShedReason
        ) -> None:
            lane.queue_sheds.append(ShedRecord(req, now, reason))
            if reason is ShedReason.BACKPRESSURE:
                lane.shed_queue.inc()
            else:
                lane.dispatcher.counters.n_shed_degraded += 1
            if recorder.enabled:
                recorder.record(
                    "shed", now, now, track="server", category="request",
                    trace_id=req.request_id, kind=req.kind,
                    args={"reason": reason.value},
                )

        def on_arrival(req: PricingRequest) -> None:
            now = req.arrival_s
            # Every lane lives on the shared clock: linger timers fire
            # and in-flight windows drain across the whole tier, not
            # just the lane this arrival routes to.
            for lane in lanes:
                lane.tick(now)
            if cache is not None:
                resolve_outcomes()
            profile = book.profile(req.tenant)
            gw.counter(
                "gateway_requests_total", "requests offered to the gateway",
                labels={"tenant": profile.name},
            ).inc()
            if not book.admit(req.tenant, now):
                quota_sheds.append(ShedRecord(req, now, ShedReason.QUOTA))
                gw.counter(
                    "gateway_shed_quota_total",
                    "requests rejected by tenant quotas",
                    labels={"tenant": profile.name},
                ).inc()
                if recorder.enabled:
                    recorder.record(
                        "shed", now, now, track="gateway", category="request",
                        trace_id=req.request_id, kind=req.kind,
                        args={"reason": "quota", "tenant": profile.name},
                    )
                return
            key = cache_key(req) if cache is not None else None
            if key is not None:
                cache.stats.lookups += 1
                entry = cache.get(key)
                if entry is not None and entry.ready and now >= entry.ready_s:
                    cache.stats.hits += 1
                    hits_total.inc()
                    emit_cache_response(
                        req, entry, now + cache.hit_latency_s, now
                    )
                    if recorder.enabled:
                        recorder.record(
                            "cache_hit", now, now + cache.hit_latency_s,
                            track="gateway", category="request",
                            trace_id=req.request_id, kind=req.kind,
                            args={"row": key[0], "option": key[1]},
                        )
                    return
                if entry is not None:
                    # In flight (or completing in the future): join the
                    # leader's single flight instead of paying a row.
                    cache.stats.joins += 1
                    joins_total.inc()
                    if entry.ready:
                        emit_cache_response(
                            req, entry, entry.ready_s,
                            max(req.arrival_s, entry.formed_s),
                        )
                    else:
                        entry.waiters.append(req)
                    if recorder.enabled:
                        recorder.record(
                            "cache_join", now, now, track="gateway",
                            category="request", trace_id=req.request_id,
                            kind=req.kind,
                            args={"row": key[0], "option": key[1]},
                        )
                    return
                cache.stats.misses += 1
                misses_total.inc()
            lane = lanes[self.ring.route_request(req)]
            gw.counter(
                "gateway_routed_total", "requests routed to servers",
                labels={"server": str(lane.index)},
            ).inc()
            boosted = (
                req
                if profile.priority_boost == 0
                else replace(req, priority=req.priority + profile.priority_boost)
            )
            lane.trace.append(boosted)
            outstanding = lane.n_outstanding
            if outstanding >= self.queue_depth:
                shed_at_lane(lane, boosted, now, ShedReason.BACKPRESSURE)
                return
            if lane.dispatcher is not None and lane.dispatcher.health.capacity_reduced(now):
                from repro.serving.faulted import DEGRADE_FRACTIONS

                frac = DEGRADE_FRACTIONS[req.kind]
                if frac < 1.0 and outstanding >= frac * self.queue_depth:
                    shed_at_lane(lane, boosted, now, ShedReason.DEGRADED)
                    return
            if key is not None:
                cache.begin(key, boosted)
            lane.run(lane.coalescer.offer(boosted))

        def on_tick(payload) -> None:
            _, row = payload
            dropped = cache.invalidate_row(row)
            if dropped:
                invalidations_total.inc(dropped)

        for req in trace:
            sim.schedule_at(
                req.arrival_s, on_arrival, payload=req, label="arrival"
            )
        if cache is not None and ticks:
            for tick in ticks:
                t, row = tick
                if row >= self.tape.n_scenarios:
                    raise ValidationError(
                        f"tick row {row} beyond the "
                        f"{self.tape.n_scenarios}-state tape"
                    )
                sim.schedule_at(t, on_tick, payload=tick, label="tick")
        sim.run()
        for lane in lanes:
            lane.run(lane.coalescer.flush())
        if faulted:
            sim.run()  # tail batches may have scheduled retries
        if cache is not None:
            resolve_outcomes()

        return self._summarise(
            trace, lanes, book, cache,
            cache_responses, quota_sheds, waiter_sheds, waiter_fails,
            gw, monitor=monitor, faults=faults if faulted else None,
        )

    # ------------------------------------------------------------------
    def _empty_lane_result(self, lane: _Lane) -> ServingResult:
        return ServingResult(
            n_offered=0, n_completed=0, n_shed_queue=0, n_shed_deadline=0,
            n_deadline_met=0, n_late=0, span_seconds=0.0, throughput_rps=0.0,
            goodput_rps=0.0, shed_rate=0.0, deadline_hit_rate=0.0,
            latency=LatencyStats.from_latencies(np.asarray([])),
            n_dispatches=0, mean_batch_requests=0.0, mean_batch_rows=0.0,
            cards=tuple(
                CardLoad(
                    card_id=c, dispatches=0, n_rows=0, n_cells=0,
                    busy_seconds=0.0, utilisation=0.0,
                )
                for c in range(lane.server.n_cards)
            ),
        )

    def _summarise(
        self,
        trace,
        lanes,
        book: TenantBook,
        cache: QuoteCache | None,
        cache_responses,
        quota_sheds,
        waiter_sheds,
        waiter_fails,
        gw: MetricsRegistry,
        *,
        monitor=None,
        faults=None,
    ) -> GatewayResult:
        recorder = self.telemetry.recorder
        server_results = []
        all_responses = list(cache_responses)
        all_sheds = quota_sheds + waiter_sheds
        all_fails = list(waiter_fails)
        for lane in lanes:
            if lane.dispatcher is not None:
                counters = lane.dispatcher.counters
                counters.n_breaker_trips = lane.dispatcher.breakers.n_trips
                counters.n_breaker_probes = lane.dispatcher.breakers.n_probes
                lane.metrics.counter(
                    "serving_retries_total", "failed dispatches re-dispatched"
                ).inc(counters.n_retries)
                lane.metrics.counter(
                    "serving_hedges_total", "duplicate straggler dispatches"
                ).inc(counters.n_hedges)
                lane.metrics.counter(
                    "serving_breaker_trips_total",
                    "circuit-breaker open transitions",
                ).inc(counters.n_breaker_trips)
                lane.metrics.counter(
                    "serving_requests_failed_total",
                    "requests failed after retries",
                ).inc(counters.n_failed_requests)
                lane.metrics.counter(
                    "serving_requests_shed_degraded_total",
                    "arrivals shed by the degradation ladder",
                ).inc(counters.n_shed_degraded)
            lane_fails = (
                sorted(lane.dispatcher.fails, key=lambda f: f.time_s)
                if lane.dispatcher is not None
                else []
            )
            lane_sheds = sorted(
                lane.queue_sheds + list(lane.coalescer.sheds),
                key=lambda s: s.time_s,
            )
            if recorder.enabled:
                for rec in lane.coalescer.sheds:
                    recorder.record(
                        "shed", rec.time_s, rec.time_s, track="server",
                        category="request", trace_id=rec.request.request_id,
                        kind=rec.request.kind, args={"reason": str(rec.reason)},
                    )
            if lane.trace:
                server_results.append(
                    lane.server._summarise(
                        lane.trace, lane.all_responses, lane_sheds,
                        lane.rig, lane.metrics,
                        n_failed=len(lane_fails), fails=lane_fails,
                    )
                )
            else:
                server_results.append(self._empty_lane_result(lane))
            all_responses.extend(lane.all_responses)
            all_sheds.extend(lane_sheds)
            all_fails.extend(lane_fails)

        all_responses.sort(key=lambda r: (r.completion_s, r.request_id))
        all_sheds.sort(key=lambda s: (s.time_s, s.request.request_id))
        all_fails.sort(key=lambda f: (f.time_s, f.request.request_id))
        n_offered = len(trace)
        n_completed = len(all_responses)
        met = sum(1 for r in all_responses if r.met_deadline)
        if all_responses:
            span = (
                max(r.completion_s for r in all_responses)
                - trace[0].arrival_s
            )
        else:
            span = 0.0
        stats = cache.stats if cache is not None else None
        cache_ids = frozenset(r.request_id for r in cache_responses)
        result = GatewayResult(
            n_offered=n_offered,
            n_completed=n_completed,
            n_shed=len(all_sheds),
            n_shed_quota=len(quota_sheds),
            n_shed_queue=sum(
                1 for s in all_sheds if s.reason is ShedReason.BACKPRESSURE
            ),
            n_shed_deadline=sum(
                1 for s in all_sheds if s.reason is ShedReason.DEADLINE
            ),
            n_cache_hits=stats.hits if stats else 0,
            n_cache_joins=stats.joins if stats else 0,
            n_cache_invalidations=stats.invalidations if stats else 0,
            cache_hit_rate=stats.hit_rate if stats else 0.0,
            cache_dedup_rate=stats.dedup_rate if stats else 0.0,
            n_deadline_met=met,
            n_late=n_completed - met,
            span_seconds=span,
            throughput_rps=n_completed / span if span > 0 else 0.0,
            goodput_rps=met / span if span > 0 else 0.0,
            shed_rate=len(all_sheds) / n_offered,
            deadline_hit_rate=met / n_completed if n_completed else 0.0,
            latency=LatencyStats.from_latencies(
                np.asarray([r.latency_s for r in all_responses])
            ),
            tenants=per_tenant_stats(
                all_responses, all_sheds, all_fails,
                profiles=book.profiles, span_s=span,
                cache_response_ids=cache_ids,
            ),
            servers=tuple(server_results),
            n_failed=len(all_fails),
            responses=tuple(all_responses),
            sheds=tuple(all_sheds),
            fails=tuple(all_fails),
        )
        self._publish(result, gw)
        if monitor is not None:
            monitor.finalize(result, plan=faults, telemetry=self.telemetry)
        return result

    def _publish(self, result: GatewayResult, gw: MetricsRegistry) -> None:
        """Fold a replay's gateway tallies into the telemetry handle."""
        if self.telemetry is NULL_TELEMETRY:
            return
        out = self.telemetry.metrics
        out.absorb(gw)
        out.gauge(
            "gateway_cache_hit_rate", "served-from-cache fraction of quotes"
        ).set(result.cache_hit_rate)
        out.gauge(
            "gateway_goodput_rps", "gateway-wide in-deadline completions per second"
        ).set(result.goodput_rps)
        out.gauge(
            "gateway_span_seconds", "first arrival to last completion"
        ).set(result.span_seconds)
        out.counter(
            "gateway_requests_completed_total", "requests answered via the gateway"
        ).inc(result.n_completed)
