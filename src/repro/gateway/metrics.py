"""Per-tenant and aggregate accounting for gateway runs.

The gateway view extends the serving layer's aggregation one level:
next to the usual latency/goodput/shed numbers it reports the cache
economics (hit, join and dedup rates) and a per-tenant breakdown — the
multi-tenant analogue of :func:`~repro.serving.metrics.per_kind_stats`,
keyed on each request's tenant label.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.serving.metrics import LatencyStats, ServingResult
from repro.serving.request import (
    FailRecord,
    PricingResponse,
    ShedReason,
    ShedRecord,
)

__all__ = ["TenantStats", "GatewayResult", "per_tenant_stats"]


@dataclass(frozen=True)
class TenantStats:
    """One tenant's share of a gateway run.

    Attributes
    ----------
    tenant / tier:
        The tenant and its SLA tier.
    n_offered / n_completed / n_shed / n_failed:
        Offered requests of this tenant and how they ended.
    n_shed_quota:
        Of the sheds, how many the tenant's own admission quota
        rejected at the gateway.
    n_cache_hits:
        Completed responses answered from the quote cache.
    n_deadline_met:
        Completed responses inside their deadline.
    goodput_rps:
        Deadline-met responses per second of the *whole run's* span, so
        per-tenant goodputs add up to the aggregate.
    deadline_hit_rate:
        Met over completed (0 when nothing completed).
    latency:
        Percentiles over this tenant's completed responses.
    """

    tenant: str
    tier: str
    n_offered: int
    n_completed: int
    n_shed: int
    n_shed_quota: int
    n_cache_hits: int
    n_deadline_met: int
    goodput_rps: float
    deadline_hit_rate: float
    latency: LatencyStats
    n_failed: int = 0


@dataclass(frozen=True)
class GatewayResult:
    """Aggregate outcome of one simulated gateway run.

    Attributes
    ----------
    n_offered / n_completed / n_failed:
        Requests offered to the gateway and their terminal counts
        (every offered request completes, is shed, or fails — the
        conservation invariant, property-tested).
    n_shed / n_shed_quota / n_shed_queue / n_shed_deadline:
        Total drops, split into gateway quota rejections, server
        backpressure and deadline expiry (other reasons — degradation,
        breaker — make up the remainder of ``n_shed``).
    n_cache_hits / n_cache_joins / n_cache_invalidations:
        Cache traffic: responses served from a ready entry, requests
        that coalesced onto an in-flight leader, and entries dropped by
        market ticks.
    cache_hit_rate / cache_dedup_rate:
        Hits, and hits+joins, over cacheable lookups (0 with the cache
        off).
    n_deadline_met / n_late:
        Completed responses inside / past their deadline.
    span_seconds:
        First arrival to last completion.
    throughput_rps / goodput_rps:
        Completed, and deadline-met, responses per second of span.
    shed_rate / deadline_hit_rate:
        Sheds over offered; met over completed.
    latency:
        Percentiles over all completed responses (cache and kernel
        paths alike).
    tenants:
        Per-tenant roll-ups in profile order.
    servers:
        Each lane's full :class:`~repro.serving.metrics.ServingResult`
        over the requests routed to it.
    responses / sheds / fails:
        The raw per-request outcomes; excluded from equality.
    """

    n_offered: int
    n_completed: int
    n_shed: int
    n_shed_quota: int
    n_shed_queue: int
    n_shed_deadline: int
    n_cache_hits: int
    n_cache_joins: int
    n_cache_invalidations: int
    cache_hit_rate: float
    cache_dedup_rate: float
    n_deadline_met: int
    n_late: int
    span_seconds: float
    throughput_rps: float
    goodput_rps: float
    shed_rate: float
    deadline_hit_rate: float
    latency: LatencyStats
    tenants: tuple[TenantStats, ...]
    servers: tuple[ServingResult, ...]
    n_failed: int = 0
    responses: tuple[PricingResponse, ...] = field(
        default=(), compare=False, repr=False
    )
    sheds: tuple[ShedRecord, ...] = field(default=(), compare=False, repr=False)
    fails: tuple[FailRecord, ...] = field(default=(), compare=False, repr=False)

    def summary(self) -> str:
        """One-line aggregate summary."""
        return (
            f"gateway served {self.n_completed}/{self.n_offered} requests "
            f"across {len(self.servers)} servers: "
            f"goodput {self.goodput_rps:,.0f} req/s, "
            f"cache hit rate {self.cache_hit_rate:.1%}, "
            f"latency {self.latency.summary()}, "
            f"shed {self.shed_rate:.1%}"
        )


def per_tenant_stats(
    responses,
    sheds,
    fails,
    *,
    profiles,
    span_s: float,
    cache_response_ids=frozenset(),
) -> tuple[TenantStats, ...]:
    """Break a gateway run down by tenant.

    Tenants appear in profile order; unlabelled traffic (``tenant is
    None``) is billed to the first profile, matching the tenant book's
    passthrough convention.

    Parameters
    ----------
    responses / sheds / fails:
        The run's raw per-request outcomes.
    profiles:
        The run's :class:`~repro.gateway.tenancy.TenantProfile` set.
    span_s:
        The run span goodput normalises by.
    cache_response_ids:
        Request ids answered from the cache (hits and joins).
    """
    profiles = tuple(profiles)
    default = profiles[0].name
    tiers = {p.name: p.tier for p in profiles}
    stats = []
    for profile in profiles:
        name = profile.name

        def owns(tenant: str | None, name=name) -> bool:
            return (tenant if tenant is not None else default) == name

        mine = [r for r in responses if owns(r.tenant)]
        my_sheds = [s for s in sheds if owns(s.request.tenant)]
        my_fails = [f for f in fails if owns(f.request.tenant)]
        met = sum(1 for r in mine if r.met_deadline)
        stats.append(
            TenantStats(
                tenant=name,
                tier=tiers[name],
                n_offered=len(mine) + len(my_sheds) + len(my_fails),
                n_completed=len(mine),
                n_shed=len(my_sheds),
                n_shed_quota=sum(
                    1 for s in my_sheds if s.reason is ShedReason.QUOTA
                ),
                n_cache_hits=sum(
                    1 for r in mine if r.request_id in cache_response_ids
                ),
                n_deadline_met=met,
                goodput_rps=met / span_s if span_s > 0 else 0.0,
                deadline_hit_rate=met / len(mine) if mine else 0.0,
                latency=LatencyStats.from_latencies(
                    np.asarray([r.latency_s for r in mine])
                ),
                n_failed=len(my_fails),
            )
        )
    return tuple(stats)
