"""Consistent-hash routing of book/contract keys onto quote servers.

The gateway shards client demand across N :class:`~repro.serving.engine.
QuoteServer` replicas by *key*, not round-robin: every request carries a
book/contract key (the quoted option, or the market row a reval/VaR
reprices first), and the ring maps each key to one server.  Keyed
routing is what makes the gateway's quote cache and the servers'
micro-batch coalescing compose — identical requests always land on the
same server, so one in-flight kernel row can answer all of them.

The ring is the classic consistent-hash construction: every server owns
``replicas`` virtual points on a 2^32 hash circle, and a key routes to
the first server point clockwise of the key's hash.  Draining a server
removes only that server's points, so only the keys it owned move —
the 1/N rebalance guarantee that motivates the structure.  Hashing uses
:mod:`hashlib` (stable across processes), never Python's salted
``hash()``.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ValidationError
from repro.serving.request import PricingRequest

__all__ = ["HashRing", "route_key"]

#: Virtual points per server on the ring; enough for a few-percent
#: load spread at single-digit server counts.
DEFAULT_REPLICAS = 64


def _hash32(token: str) -> int:
    """Stable 32-bit ring position of a token."""
    return int.from_bytes(hashlib.md5(token.encode()).digest()[:4], "big")


def route_key(request: PricingRequest) -> str:
    """The book/contract routing key of one request.

    Quotes key on the contract being quoted — all tenants asking for the
    same name share a server (and therefore a cache line and a
    micro-batch row).  Revals and VaR refreshes key on their first
    market row, spreading book-wide work across the ring.
    """
    if request.kind == "quote":
        return f"opt:{request.option_index}"
    return f"row:{request.rows[0]}"


class HashRing:
    """Consistent-hash ring over integer server ids.

    Parameters
    ----------
    nodes:
        Initial server ids (at least one).
    replicas:
        Virtual points per server (>= 1).
    """

    def __init__(self, nodes, *, replicas: int = DEFAULT_REPLICAS) -> None:
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[int] = set()
        self._points: list[tuple[int, int]] = []  # (hash, node), sorted
        nodes = list(nodes)
        if not nodes:
            raise ValidationError("a hash ring needs at least one node")
        for node in nodes:
            self.add(node)

    @property
    def nodes(self) -> tuple[int, ...]:
        """Live server ids, sorted."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def _rebuild(self) -> None:
        self._points = sorted(
            (_hash32(f"node:{node}:vn:{v}"), node)
            for node in self._nodes
            for v in range(self.replicas)
        )

    def add(self, node: int) -> None:
        """Add a server's virtual points to the ring."""
        if node in self._nodes:
            raise ValidationError(f"node {node} is already on the ring")
        self._nodes.add(node)
        self._rebuild()

    def drain(self, node: int) -> None:
        """Remove a server; only the keys it owned move elsewhere."""
        if node not in self._nodes:
            raise ValidationError(f"node {node} is not on the ring")
        if len(self._nodes) == 1:
            raise ValidationError("cannot drain the last node on the ring")
        self._nodes.remove(node)
        self._rebuild()

    def route(self, key: str) -> int:
        """The server owning ``key``: first point clockwise of its hash."""
        h = _hash32(key)
        i = bisect.bisect_right(self._points, (h, 1 << 33))
        if i == len(self._points):
            i = 0  # wrap past the top of the circle
        return self._points[i][1]

    def route_request(self, request: PricingRequest) -> int:
        """Route one request by its :func:`route_key`."""
        return self.route(route_key(request))
