"""Per-tenant profiles and admission control at the gateway edge.

A :class:`TenantProfile` is one client organisation's SLA contract:
a priority tier (added to every request's coalescer priority), an
admission quota (a classic token bucket over the simulated clock — the
sustained request rate plus a burst allowance), and a deadline class
(how much looser than the baseline this tenant's deadlines are; applied
by the workload generator).  Profiles are pure configuration; the
mutable bucket state lives in a per-replay :class:`TenantBook`, so one
gateway can serve many independent replays.

Quota rejections happen *before* a request reaches any server's bounded
queue and carry the typed :attr:`~repro.serving.request.ShedReason.
QUOTA` reason — the gateway's own shed class, distinct from server
backpressure.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = [
    "TenantProfile",
    "TokenBucket",
    "TenantBook",
    "DEFAULT_TENANTS",
    "PASSTHROUGH_TENANT",
]


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's SLA contract at the gateway.

    Attributes
    ----------
    name:
        Tenant identifier (requests and responses carry it).
    tier:
        Human-readable tier label (``gold`` / ``silver`` / ...).
    quota_rps:
        Sustained admission rate of the token bucket; ``None`` means
        unlimited (no bucket).
    burst:
        Bucket capacity in tokens; ``None`` derives 5 ms worth of the
        sustained rate (at least 1 token).
    priority_boost:
        Added to every admitted request's priority, so higher tiers win
        micro-batch slots under contention.
    deadline_scale:
        Deadline class: the workload generator stretches this tenant's
        deadlines by the factor (1.0 = the baseline class).
    share:
        Default share of the offered load in generated tenant mixes.
    """

    name: str
    tier: str = "standard"
    quota_rps: float | None = None
    burst: float | None = None
    priority_boost: int = 0
    deadline_scale: float = 1.0
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tenant name must be non-empty")
        if self.quota_rps is not None and self.quota_rps <= 0:
            raise ValidationError(
                f"quota_rps must be > 0 (or None), got {self.quota_rps}"
            )
        if self.burst is not None and self.burst <= 0:
            raise ValidationError(f"burst must be > 0 (or None), got {self.burst}")
        if self.priority_boost < 0:
            raise ValidationError(
                f"priority_boost must be >= 0, got {self.priority_boost}"
            )
        if not math.isfinite(self.deadline_scale) or self.deadline_scale <= 0:
            raise ValidationError(
                f"deadline_scale must be > 0, got {self.deadline_scale}"
            )
        if not math.isfinite(self.share) or self.share <= 0:
            raise ValidationError(f"share must be > 0, got {self.share}")

    @property
    def bucket_capacity(self) -> float | None:
        """Effective burst allowance (``None`` when unlimited)."""
        if self.quota_rps is None:
            return None
        if self.burst is not None:
            return self.burst
        return max(1.0, 0.005 * self.quota_rps)


class TokenBucket:
    """Deterministic token bucket on the simulated clock.

    Starts full; refills continuously at ``rate`` tokens per simulated
    second up to ``capacity``; :meth:`try_take` spends one token per
    admitted request.
    """

    def __init__(self, rate: float, capacity: float) -> None:
        if rate <= 0 or capacity <= 0:
            raise ValidationError(
                f"rate and capacity must be > 0, got {rate}/{capacity}"
            )
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self._last_s = 0.0

    def try_take(self, now_s: float) -> bool:
        """Admit (and spend a token) or reject at ``now_s``."""
        if now_s > self._last_s:
            self.tokens = min(
                self.capacity, self.tokens + (now_s - self._last_s) * self.rate
            )
            self._last_s = now_s
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class TenantBook:
    """One replay's tenant state: profiles plus live bucket levels.

    Parameters
    ----------
    profiles:
        The tenant set (non-empty, unique names).  Requests arriving
        with an unknown (or ``None``) tenant are billed to the first
        profile — the single-tenant passthrough convention.
    """

    def __init__(self, profiles) -> None:
        profiles = tuple(profiles)
        if not profiles:
            raise ValidationError("a tenant book needs at least one profile")
        names = [p.name for p in profiles]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate tenant names in {names}")
        self.profiles = profiles
        self._by_name = {p.name: p for p in profiles}
        self._buckets = {
            p.name: TokenBucket(p.quota_rps, p.bucket_capacity)
            for p in profiles
            if p.quota_rps is not None
        }

    @property
    def names(self) -> tuple[str, ...]:
        """Tenant names in declaration order."""
        return tuple(p.name for p in self.profiles)

    def profile(self, tenant: str | None) -> TenantProfile:
        """The named tenant's profile (default: the first profile)."""
        if tenant is None:
            return self.profiles[0]
        try:
            return self._by_name[tenant]
        except KeyError:
            raise ValidationError(
                f"unknown tenant {tenant!r}; choose from {sorted(self._by_name)}"
            ) from None

    def admit(self, tenant: str | None, now_s: float) -> bool:
        """Charge the tenant's token bucket (unlimited tenants always pass)."""
        bucket = self._buckets.get(self.profile(tenant).name)
        return True if bucket is None else bucket.try_take(now_s)


#: The single-tenant passthrough profile: unlimited quota, no boost,
#: baseline deadlines — a gateway configured with only this tenant adds
#: no admission behaviour on top of the servers.
PASSTHROUGH_TENANT = TenantProfile(name="default", tier="standard")

#: A representative three-tier tenant mix for reports and benchmarks:
#: a latency-critical gold desk, a standard silver flow, and a bulk
#: bronze tier with a hard admission quota.
DEFAULT_TENANTS: tuple[TenantProfile, ...] = (
    TenantProfile(
        name="gold", tier="gold", priority_boost=2, deadline_scale=1.0,
        share=0.5,
    ),
    TenantProfile(
        name="silver", tier="silver", priority_boost=1, deadline_scale=1.5,
        share=0.3,
    ),
    TenantProfile(
        name="bronze", tier="bronze", quota_rps=8_000.0, priority_boost=0,
        deadline_scale=2.0, share=0.2,
    ),
)
