"""Gateway workload construction: multi-tenant Zipf streams and ticks.

Two generators on top of :mod:`repro.workloads.traffic`:

* :func:`make_tenant_stream` — the multi-tenant analogue of
  :func:`~repro.serving.workload.make_request_stream`.  One merged
  arrival stream is shared by the tenant mix
  (:func:`~repro.workloads.traffic.multi_tenant_arrivals`), and quote
  payloads sample their market row and contract from **Zipf** popularity
  (:func:`~repro.workloads.traffic.zipf_weights`) instead of uniformly —
  a few on-the-run names soak up most of the flow, which is exactly what
  makes the gateway's quote cache pay.  Deadlines stretch by each
  tenant's deadline class.
* :func:`make_tick_stream` — a seeded stream of market-tape ticks
  ``(time, row)`` driving the cache's tick invalidation.

Both are deterministic in their seed.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.serving.request import PricingRequest
from repro.serving.workload import KIND_PRIORITY
from repro.workloads.traffic import (
    multi_tenant_arrivals,
    poisson_arrivals,
    zipf_weights,
)

from repro.gateway.tenancy import DEFAULT_TENANTS, TenantProfile

__all__ = ["make_tenant_stream", "make_tick_stream"]

#: Seed offset decorrelating the tick stream from the request stream.
TICK_SEED_OFFSET = 7919


def make_tenant_stream(
    n_requests: int,
    *,
    rate_hz: float,
    n_states: int,
    n_positions: int,
    tenants: tuple[TenantProfile, ...] = DEFAULT_TENANTS,
    traffic: str = "poisson",
    mix: tuple[float, float, float] = (0.94, 0.05, 0.01),
    row_exponent: float = 1.2,
    option_exponent: float = 1.2,
    var_rows: int = 8,
    quote_deadline_s: tuple[float, float] = (5e-3, 2e-2),
    reval_deadline_s: tuple[float, float] = (2e-2, 5e-2),
    var_deadline_s: tuple[float, float] = (5e-2, 2e-1),
    seed: int = 17,
) -> list[PricingRequest]:
    """A seeded multi-tenant request trace with Zipf-popular quotes.

    Parameters
    ----------
    n_requests / rate_hz:
        Aggregate trace length and offered rate across tenants.
    n_states / n_positions:
        Market-tape length and book size.
    tenants:
        Tenant profiles; arrival shares come from each profile's
        ``share`` and deadlines stretch by its ``deadline_scale``.
    traffic:
        Arrival-process registry key for the merged stream.
    mix:
        ``(quote, reval, var)`` probabilities; must sum to 1.  The
        default is quote-heavier than the single-server stream — the
        gateway fronts retail quote flow.
    row_exponent / option_exponent:
        Zipf skew of the quote market-row and contract popularity
        (0 = uniform).  Reval/var rows stay uniform — book-level risk
        sweeps the whole tape.
    var_rows:
        Market states per VaR refresh (capped at the tape length).
    quote_deadline_s / reval_deadline_s / var_deadline_s:
        Baseline per-kind ``(lo, hi)`` relative-deadline ranges, before
        the tenant's deadline class scales them.
    seed:
        Deterministic seed for arrivals, labels and payloads.

    Returns
    -------
    list[PricingRequest]
        Tenant-tagged requests in arrival order, ids ``0 ..
        n_requests - 1``.
    """
    if n_requests < 1:
        raise ValidationError(f"n_requests must be >= 1, got {n_requests}")
    if n_states < 1 or n_positions < 1:
        raise ValidationError("n_states and n_positions must be >= 1")
    tenants = tuple(tenants)
    if not tenants:
        raise ValidationError("tenants must be non-empty")
    probs = np.asarray(mix, dtype=np.float64)
    if probs.shape != (3,) or np.any(probs < 0) or not np.isclose(probs.sum(), 1.0):
        raise ValidationError(
            f"mix must be three non-negative probabilities summing to 1, got {mix}"
        )
    if var_rows < 1:
        raise ValidationError(f"var_rows must be >= 1, got {var_rows}")
    for name, (lo, hi) in (
        ("quote_deadline_s", quote_deadline_s),
        ("reval_deadline_s", reval_deadline_s),
        ("var_deadline_s", var_deadline_s),
    ):
        if not 0.0 < lo <= hi:
            raise ValidationError(f"{name} must satisfy 0 < lo <= hi, got {(lo, hi)}")

    times, tenant_idx = multi_tenant_arrivals(
        n_requests, rate_hz, [p.share for p in tenants], traffic=traffic,
        seed=seed,
    )
    gen = np.random.default_rng(seed + 1)
    kinds = gen.choice(("quote", "reval", "var"), size=n_requests, p=probs)
    row_p = zipf_weights(n_states, row_exponent)
    option_p = zipf_weights(n_positions, option_exponent)
    deadline_range = {
        "quote": quote_deadline_s,
        "reval": reval_deadline_s,
        "var": var_deadline_s,
    }
    k_var = min(var_rows, n_states)
    requests: list[PricingRequest] = []
    for i, (t, kind, ti) in enumerate(zip(times, kinds, tenant_idx)):
        tenant = tenants[int(ti)]
        lo, hi = deadline_range[kind]
        deadline = float(t + tenant.deadline_scale * gen.uniform(lo, hi))
        option_index = None
        if kind == "quote":
            rows = (int(gen.choice(n_states, p=row_p)),)
            option_index = int(gen.choice(n_positions, p=option_p))
        elif kind == "reval":
            rows = (int(gen.integers(n_states)),)
        else:  # var
            rows = tuple(
                int(r) for r in np.sort(gen.choice(n_states, k_var, replace=False))
            )
        requests.append(
            PricingRequest(
                request_id=i,
                kind=str(kind),
                arrival_s=float(t),
                deadline_s=deadline,
                rows=rows,
                option_index=option_index,
                priority=KIND_PRIORITY[str(kind)],
                tenant=tenant.name,
            )
        )
    return requests


def make_tick_stream(
    n_ticks: int,
    *,
    rate_hz: float,
    n_states: int,
    row_exponent: float = 0.0,
    seed: int = 17,
) -> list[tuple[float, int]]:
    """A seeded stream of market ticks invalidating tape rows.

    Each tick ``(time, row)`` models a market update landing on one tape
    row; the gateway drops that row's cached quotes when it fires.  Tick
    times are Poisson; rows default to uniform (``row_exponent=0``) —
    raise the exponent to concentrate churn on the popular rows.

    Parameters
    ----------
    n_ticks:
        Tick count (0 allowed: no invalidation pressure).
    rate_hz:
        Mean tick rate.
    n_states:
        Tape length rows are drawn from.
    row_exponent:
        Zipf skew of which rows tick.
    seed:
        Deterministic seed (offset from the request stream's).

    Returns
    -------
    list[tuple[float, int]]
        Ticks in time order.
    """
    if n_ticks < 0:
        raise ValidationError(f"n_ticks must be >= 0, got {n_ticks}")
    if n_states < 1:
        raise ValidationError(f"n_states must be >= 1, got {n_states}")
    if n_ticks == 0:
        return []
    times = poisson_arrivals(n_ticks, rate_hz, seed=seed + TICK_SEED_OFFSET)
    gen = np.random.default_rng(seed + TICK_SEED_OFFSET + 1)
    rows = gen.choice(n_states, size=n_ticks, p=zipf_weights(n_states, row_exponent))
    return [(float(t), int(r)) for t, r in zip(times, rows)]
