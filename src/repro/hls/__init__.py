"""Models of Vitis HLS constructs.

The paper's optimisations are phrased entirely in HLS vocabulary: pipeline
initiation intervals, ``DATAFLOW`` regions, loop unrolling, stream depths,
and operator latencies (the seven-cycle double-precision add that forces
II=7 on a naive accumulation).  This subpackage provides software models of
those constructs:

``ops``
    Latency/resource table for double-precision floating-point operators.
``pragmas``
    Descriptors for ``PIPELINE`` / ``UNROLL`` / ``DATAFLOW`` /
    ``ARRAY_PARTITION`` / ``STREAM`` pragmas.
``accumulator``
    Functional + timing models of the naive (II=7) and interleaved
    (Listing 1, II=1) accumulation loops.
``interpolation``
    The linear-interpolation unit that evaluates rate tables.
``resources``
    FPGA resource vectors and aggregation.
``report``
    Synthesis-style text reports for a composed design.
"""

from repro.hls.ops import OP_TABLE, OpSpec, op
from repro.hls.pragmas import (
    ArrayPartition,
    DataflowPragma,
    Pipeline,
    StreamPragma,
    Unroll,
)
from repro.hls.accumulator import (
    AccumulatorModel,
    interleaved_accumulate,
    naive_accumulate,
)
from repro.hls.interpolation import InterpolatorModel
from repro.hls.resources import ResourceUsage
from repro.hls.report import synthesis_report

__all__ = [
    "OpSpec",
    "OP_TABLE",
    "op",
    "Pipeline",
    "Unroll",
    "DataflowPragma",
    "ArrayPartition",
    "StreamPragma",
    "AccumulatorModel",
    "naive_accumulate",
    "interleaved_accumulate",
    "InterpolatorModel",
    "ResourceUsage",
    "synthesis_report",
]
