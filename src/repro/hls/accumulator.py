"""Accumulation-loop models: the heart of paper Listing 1.

A pipelined loop computing ``sum += values[i]`` carries its dependency
through the double-precision adder.  With a 7-cycle adder the next iteration
cannot start until the previous add retires, so the achieved initiation
interval is 7 — the loop produces one accumulated value every seven cycles
(paper Section III).

Listing 1 removes the dependency by interleaving: the accumulator is
replicated into ``lanes = 7`` independent partial sums updated cyclically;
the outer loop has II=7 but completes seven *independent* adds per
iteration, averaging one add per cycle.  A short tail loop reduces the seven
partials (and handles a length not divisible by seven, which the paper
omits from the listing "for brevity" but includes in the engine code — as do
we).

Both variants are provided as (a) a *functional* computation whose result
the tests compare against ``math.fsum``, and (b) a *timing* model in cycles
consumed by the dataflow engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.hls.ops import DADD_LATENCY
from repro.hls.pragmas import ArrayPartition, Pipeline, Unroll

__all__ = ["naive_accumulate", "interleaved_accumulate", "AccumulatorModel"]


def naive_accumulate(values: Sequence[float]) -> tuple[float, float]:
    """Sequential accumulation with a loop-carried dependency.

    Returns
    -------
    (total, cycles):
        ``total`` is the left-to-right sum; ``cycles`` models the pipelined
        loop at II=7: ``latency + (n - 1) * 7`` (0 cycles for an empty
        input).
    """
    arr = np.asarray(values, dtype=np.float64)
    total = 0.0
    for v in arr:
        total += float(v)
    n = arr.size
    cycles = 0.0 if n == 0 else float(DADD_LATENCY + (n - 1) * DADD_LATENCY)
    return total, cycles


def interleaved_accumulate(
    values: Sequence[float], lanes: int = DADD_LATENCY
) -> tuple[float, float]:
    """Listing-1 accumulation: ``lanes`` interleaved partial sums at II=1.

    The functional result sums element ``i`` into partial ``i % lanes`` and
    then reduces the partials left-to-right — the exact floating-point
    association of the hardware, which differs from the naive sum by
    rounding only (the property tests bound the difference against
    ``math.fsum``).

    Returns
    -------
    (total, cycles):
        ``cycles`` models the II=1 main loop over ``ceil(n / lanes)`` chunks
        (each chunk of ``lanes`` adds completes in ``lanes`` cycles, i.e.
        one add per cycle on average) plus the II=7 tail reduction over the
        ``lanes`` partials and the fill latency.
    """
    if lanes < 1:
        raise ValidationError(f"lanes must be >= 1, got {lanes}")
    arr = np.asarray(values, dtype=np.float64)
    n = arr.size
    partials = [0.0] * lanes
    for i in range(n):
        partials[i % lanes] += float(arr[i])
    total = 0.0
    for p in partials:
        total += p
    if n == 0:
        return total, 0.0
    import math

    chunks = math.ceil(n / lanes)
    main = DADD_LATENCY + (chunks - 1) * lanes + (lanes - 1)
    tail = DADD_LATENCY * lanes
    return total, float(main + tail)


@dataclass(frozen=True)
class AccumulatorModel:
    """Timing-only accumulator descriptor used by the engine stages.

    Parameters
    ----------
    interleaved:
        ``False`` models the original Xilinx loop (II = adder latency),
        ``True`` models Listing 1 (II = 1 plus a fixed tail).
    lanes:
        Partial-sum count for the interleaved variant (paper uses 7, the
        adder latency, which is the minimum that breaks the dependency).
    add_latency:
        Adder pipeline latency in cycles: 7 for double precision (the
        paper's engines), 4 for the single-precision reduced-precision
        study.
    """

    interleaved: bool
    lanes: int = DADD_LATENCY
    add_latency: int = DADD_LATENCY

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ValidationError(f"lanes must be >= 1, got {self.lanes}")
        if self.add_latency < 1:
            raise ValidationError(f"add_latency must be >= 1, got {self.add_latency}")

    @property
    def ii(self) -> float:
        """Achieved initiation interval per element."""
        return 1.0 if self.interleaved else float(self.add_latency)

    def cycles(self, n: int) -> float:
        """Cycles to accumulate ``n`` elements (timing model only)."""
        if n < 0:
            raise ValidationError(f"n must be >= 0, got {n}")
        if n == 0:
            return 0.0
        if not self.interleaved:
            return float(self.add_latency + (n - 1) * self.add_latency)
        import math

        chunks = math.ceil(n / self.lanes)
        main = self.add_latency + (chunks - 1) * self.lanes + (self.lanes - 1)
        tail = self.add_latency * self.lanes
        return float(main + tail)

    def compute(self, values: Sequence[float]) -> tuple[float, float]:
        """Functional value plus cycles, dispatching on the variant."""
        if self.interleaved:
            return interleaved_accumulate(values, self.lanes)
        return naive_accumulate(values)

    def pragmas(self) -> list:
        """The HLS pragmas this variant corresponds to (for reports)."""
        if not self.interleaved:
            return [Pipeline(ii=self.add_latency)]
        return [
            Pipeline(ii=self.lanes),
            Unroll(),
            ArrayPartition(variable="values", kind="complete"),
        ]

    def describe(self) -> str:
        """One-line description for reports."""
        if self.interleaved:
            return (
                f"Listing-1 interleaved accumulator ({self.lanes} partial sums, "
                f"achieved II=1 per element)"
            )
        return (
            f"naive accumulator (loop-carried add dependency, "
            f"II={self.add_latency})"
        )
