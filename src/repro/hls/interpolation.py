"""The linear-interpolation unit evaluating rate tables.

The engine's payment and payoff calculations interpolate the interest-rate
term structure at every time point ("interpolation sub-steps that operate
for each time point", paper Fig. 2 caption).  In the HLS implementation the
rate table lives in on-chip memory and the locate step is a **fixed-bound
linear scan** over the whole table: HLS cannot pipeline a data-dependent
early exit without variable latency, so the production implementation scans
all ``H`` entries at II=1 and selects the bracketing pair with predicated
logic.  At 1024 entries this scan — not the arithmetic — is what makes the
interpolation stage one of the two "many cycles to produce a result for a
single time point" stages the paper replicates in its vectorisation step.

The *hazard* accumulation, by contrast, is an early-exit accumulation whose
cost is the number of entries at or before the evaluation time (see
:meth:`repro.core.curves.HazardCurve.accumulation_length`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.curves import Curve
from repro.errors import ValidationError
from repro.hls.ops import op

__all__ = ["InterpolatorModel"]


@dataclass(frozen=True)
class InterpolatorModel:
    """Timing + functional model of one table-interpolation unit.

    Parameters
    ----------
    table_length:
        Number of table entries scanned per evaluation.
    scan_ii:
        Cycles per scanned entry (II of the scan loop).
    fixed_bound:
        ``True`` (default, matches HLS practice) scans the full table every
        evaluation; ``False`` models an early-exit scan whose cost is the
        locate index (used by the CPU cost model and ablations).
    """

    table_length: int
    scan_ii: float = 1.0
    fixed_bound: bool = True

    def __post_init__(self) -> None:
        if self.table_length < 1:
            raise ValidationError(
                f"table_length must be >= 1, got {self.table_length}"
            )
        if self.scan_ii <= 0.0:
            raise ValidationError(f"scan_ii must be > 0, got {self.scan_ii}")

    @property
    def arithmetic_latency(self) -> float:
        """Latency of the interpolation arithmetic after the scan.

        One subtract per axis, a divide for the slope and a multiply-add:
        ``(t - t0) / (t1 - t0) * (v1 - v0) + v0``.
        """
        return float(
            op("dsub").latency * 2
            + op("ddiv").latency
            + op("dmul").latency
            + op("dadd").latency
        )

    def evaluation_cycles(self, locate_index: int) -> float:
        """Cycles for one table evaluation.

        ``locate_index`` is the bracketing position (only used for the
        early-exit variant).
        """
        if locate_index < 0:
            raise ValidationError(f"locate_index must be >= 0, got {locate_index}")
        entries = self.table_length if self.fixed_bound else min(
            max(locate_index, 1), self.table_length
        )
        return entries * self.scan_ii + self.arithmetic_latency

    def evaluate(self, curve: Curve, t: float) -> tuple[float, float]:
        """Interpolate ``curve`` at ``t``: returns ``(value, cycles)``."""
        value = float(curve.interpolate(t))
        cycles = self.evaluation_cycles(curve.locate(t))
        return value, cycles
