"""Double-precision operator latency and resource table.

The figures approximate Vitis HLS 2020.2 characterisation of
double-precision floating-point cores on UltraScale+ at a 300 MHz kernel
clock.  The single load-bearing number for the paper is the **seven-cycle
double-precision add**: an accumulation ``sum += x[i]`` carries its
dependency through that adder, forcing the pipelined loop's initiation
interval to 7 (Section III, "the accumulation, a double precision add,
requires seven cycles to complete").

All other entries shape the fill latencies and resource totals of the
simulated engines; they are documented approximations, not vendor data
(the vendor tables are not redistributable), and the tests only rely on
their relative magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["OpSpec", "OP_TABLE", "op", "DADD_LATENCY", "SADD_LATENCY"]


@dataclass(frozen=True)
class OpSpec:
    """Latency and resource cost of one hardware operator instance.

    Parameters
    ----------
    name:
        Operator mnemonic (``dadd``, ``dmul``, ...).
    latency:
        Pipeline latency in cycles at the reference 300 MHz clock.
    ii:
        Initiation interval of the operator core itself (1 for all fully
        pipelined FP cores).
    dsp / lut / ff:
        Resource cost of one instance.
    """

    name: str
    latency: int
    ii: int
    dsp: int
    lut: int
    ff: int

    def __post_init__(self) -> None:
        if self.latency < 0 or self.ii < 1:
            raise ValidationError(f"bad timing for op {self.name!r}")
        if min(self.dsp, self.lut, self.ff) < 0:
            raise ValidationError(f"negative resource for op {self.name!r}")


#: Reference latency of the double-precision adder — the source of the II=7
#: accumulation bottleneck the paper fixes with Listing 1.
DADD_LATENCY = 7

#: Latency of the single-precision adder — the paper's "further work"
#: direction ("further exploration around reduced precision") halves the
#: accumulation dependency length.
SADD_LATENCY = 4

#: Approximate UltraScale+ operator characterisation at 300 MHz.
#: ``d*`` = double precision, ``s*`` = single precision (the reduced-
#: precision study of :mod:`repro.core.precision` uses the latter).
OP_TABLE: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        OpSpec("dadd", latency=DADD_LATENCY, ii=1, dsp=3, lut=700, ff=1100),
        OpSpec("dsub", latency=DADD_LATENCY, ii=1, dsp=3, lut=700, ff=1100),
        OpSpec("dmul", latency=6, ii=1, dsp=11, lut=300, ff=600),
        OpSpec("ddiv", latency=29, ii=1, dsp=0, lut=3200, ff=5800),
        OpSpec("dexp", latency=30, ii=1, dsp=26, lut=7000, ff=9000),
        OpSpec("dlog", latency=27, ii=1, dsp=19, lut=6100, ff=8200),
        OpSpec("dsqrt", latency=28, ii=1, dsp=0, lut=3000, ff=5500),
        OpSpec("dcmp", latency=2, ii=1, dsp=0, lut=150, ff=200),
        OpSpec("i2d", latency=5, ii=1, dsp=0, lut=250, ff=400),
        OpSpec("d2i", latency=5, ii=1, dsp=0, lut=250, ff=400),
        OpSpec("dmux", latency=1, ii=1, dsp=0, lut=80, ff=80),
        OpSpec("sadd", latency=SADD_LATENCY, ii=1, dsp=2, lut=380, ff=600),
        OpSpec("ssub", latency=SADD_LATENCY, ii=1, dsp=2, lut=380, ff=600),
        OpSpec("smul", latency=4, ii=1, dsp=3, lut=150, ff=300),
        OpSpec("sdiv", latency=16, ii=1, dsp=0, lut=800, ff=1600),
        OpSpec("sexp", latency=17, ii=1, dsp=7, lut=1800, ff=2500),
        OpSpec("scmp", latency=1, ii=1, dsp=0, lut=80, ff=100),
    ]
}


def op(name: str) -> OpSpec:
    """Look up an operator by mnemonic.

    Raises
    ------
    ValidationError
        If the mnemonic is unknown (lists the known ones).
    """
    try:
        return OP_TABLE[name]
    except KeyError:
        known = ", ".join(sorted(OP_TABLE))
        raise ValidationError(f"unknown operator {name!r}; known: {known}") from None
