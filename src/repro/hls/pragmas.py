"""HLS pragma descriptors.

These dataclasses describe the synthesis directives applied to each kernel
of the simulated engines.  They do not *execute* anything — they carry the
parameters that the timing and resource models consume, and they render back
to the ``#pragma HLS ...`` source form for the synthesis-style reports
(:mod:`repro.hls.report`), so a reader can map every simulated stage to the
HLS code the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["Pipeline", "Unroll", "DataflowPragma", "ArrayPartition", "StreamPragma"]


@dataclass(frozen=True)
class Pipeline:
    """``#pragma HLS PIPELINE II=<ii>``.

    The initiation interval the scheduler *requests*; the achieved II may be
    larger when a loop-carried dependency (such as the accumulation through
    a 7-cycle double add) prevents the request being met.
    """

    ii: int = 1

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValidationError(f"PIPELINE II must be >= 1, got {self.ii}")

    def render(self) -> str:
        """Source form of the pragma."""
        return f"#pragma HLS PIPELINE II={self.ii}"


@dataclass(frozen=True)
class Unroll:
    """``#pragma HLS UNROLL [factor=<k>]`` (full unroll when factor is None).

    Listing 1's inner loop over the seven partial sums is fully unrolled.
    """

    factor: int | None = None

    def __post_init__(self) -> None:
        if self.factor is not None and self.factor < 2:
            raise ValidationError(
                f"UNROLL factor must be >= 2 or None (full), got {self.factor}"
            )

    def render(self) -> str:
        """Source form of the pragma."""
        if self.factor is None:
            return "#pragma HLS UNROLL"
        return f"#pragma HLS UNROLL factor={self.factor}"


@dataclass(frozen=True)
class DataflowPragma:
    """``#pragma HLS DATAFLOW`` — functions in scope run concurrently,
    connected by streams.  ``disable_start_propagation`` mirrors the Vitis
    option used for free-running regions."""

    disable_start_propagation: bool = False

    def render(self) -> str:
        """Source form of the pragma."""
        if self.disable_start_propagation:
            return "#pragma HLS DATAFLOW disable_start_propagation"
        return "#pragma HLS DATAFLOW"


@dataclass(frozen=True)
class ArrayPartition:
    """``#pragma HLS ARRAY_PARTITION variable=<v> <kind> [factor=<k>]``.

    Listing 1 relies on the seven-element partial-sum array being fully
    partitioned into registers so all seven adds proceed independently.
    """

    variable: str
    kind: str = "complete"
    factor: int | None = None

    _KINDS = ("complete", "cyclic", "block")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValidationError(
                f"ARRAY_PARTITION kind must be one of {self._KINDS}, got {self.kind!r}"
            )
        if self.kind == "complete" and self.factor is not None:
            raise ValidationError("complete partition takes no factor")
        if self.kind != "complete" and (self.factor is None or self.factor < 2):
            raise ValidationError(f"{self.kind} partition needs factor >= 2")

    def render(self) -> str:
        """Source form of the pragma."""
        base = f"#pragma HLS ARRAY_PARTITION variable={self.variable} {self.kind}"
        if self.factor is not None:
            base += f" factor={self.factor}"
        return base


@dataclass(frozen=True)
class StreamPragma:
    """``#pragma HLS STREAM variable=<v> depth=<d>`` — FIFO sizing."""

    variable: str
    depth: int = 2

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValidationError(f"STREAM depth must be >= 1, got {self.depth}")

    def render(self) -> str:
        """Source form of the pragma."""
        return f"#pragma HLS STREAM variable={self.variable} depth={self.depth}"
