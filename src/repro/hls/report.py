"""Synthesis-style text reports.

Vitis HLS emits a post-synthesis report with per-function latency/II and a
resource utilisation table; engineers (and the paper's authors) read these
to find the II=7 culprit.  :func:`synthesis_report` produces the same style
of report for a composed simulated design, so examples and docs can show
*why* each engine variant performs as it does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hls.resources import ResourceUsage

__all__ = ["StageReport", "synthesis_report"]


@dataclass(frozen=True)
class StageReport:
    """Report row for one dataflow stage.

    Parameters
    ----------
    name:
        Stage / function name.
    ii:
        Achieved initiation interval (per work unit).
    latency:
        Iteration latency in cycles.
    trip_count:
        Representative trip count (e.g. table length or time points).
    resources:
        Stage resource vector.
    pragmas:
        Rendered pragma strings attached to the stage.
    """

    name: str
    ii: float
    latency: float
    trip_count: int
    resources: ResourceUsage
    pragmas: tuple[str, ...] = ()


def synthesis_report(
    design_name: str,
    stages: list[StageReport],
    budget: ResourceUsage | None = None,
    *,
    clock_mhz: float = 300.0,
) -> str:
    """Render a Vitis-HLS-style report for ``stages``.

    Parameters
    ----------
    design_name:
        Title line of the report.
    stages:
        Per-stage rows.
    budget:
        Optional device budget; when given, a utilisation section with
        percentages is appended.
    clock_mhz:
        Kernel clock for the header.
    """
    lines = [
        "=" * 72,
        f"== Synthesis-style report: {design_name}",
        f"== Target clock: {clock_mhz:.0f} MHz "
        f"(period {1000.0 / clock_mhz:.2f} ns)",
        "=" * 72,
        "",
        f"{'stage':<28} {'II':>6} {'latency':>9} {'trips':>7}  resources",
        "-" * 72,
    ]
    total = ResourceUsage()
    for s in stages:
        lines.append(
            f"{s.name:<28} {s.ii:>6.1f} {s.latency:>9.0f} {s.trip_count:>7d}  "
            f"{s.resources.describe()}"
        )
        for p in s.pragmas:
            lines.append(f"{'':<28}   {p}")
        total = total + s.resources
    lines.append("-" * 72)
    lines.append(f"{'TOTAL':<28} {'':>6} {'':>9} {'':>7}  {total.describe()}")
    if budget is not None:
        lines.append("")
        lines.append("Utilisation vs device budget:")
        for key, frac in total.utilisation(budget).items():
            bar = "#" * min(40, int(frac * 40))
            lines.append(f"  {key:<8} {frac:>7.1%}  |{bar:<40}|")
    return "\n".join(lines)
