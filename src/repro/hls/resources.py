"""FPGA resource vectors.

A :class:`ResourceUsage` is the five-component resource cost of a design
piece (LUTs, flip-flops, BRAM36 blocks, URAM blocks, DSP slices).  Vectors
add and scale so an engine's cost composes from its stages and a card's
budget from the device descriptor; :meth:`ResourceUsage.fits_within`
implements the fit check behind "being able to fit five onto the Alveo
U280" (paper Section IV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ResourceError, ValidationError

__all__ = ["ResourceUsage"]

#: Capacity of one block RAM tile in bytes (RAMB36: 36 Kbit).
BRAM36_BYTES = 36 * 1024 // 8

#: Capacity of one UltraRAM block in bytes (288 Kbit).
URAM_BYTES = 288 * 1024 // 8


@dataclass(frozen=True)
class ResourceUsage:
    """A non-negative resource vector.

    Attributes
    ----------
    lut / ff:
        Logic cells and flip-flops.
    bram36:
        36 Kbit block-RAM tiles.
    uram:
        288 Kbit UltraRAM blocks (where the engines keep the interest and
        hazard rate constant data).
    dsp:
        DSP48 slices.
    """

    lut: int = 0
    ff: int = 0
    bram36: int = 0
    uram: int = 0
    dsp: int = 0

    def __post_init__(self) -> None:
        for field_name in ("lut", "ff", "bram36", "uram", "dsp"):
            v = getattr(self, field_name)
            if v < 0:
                raise ValidationError(f"{field_name} must be >= 0, got {v}")

    # ------------------------------------------------------------------
    def __add__(self, other: "ResourceUsage") -> "ResourceUsage":
        if not isinstance(other, ResourceUsage):
            return NotImplemented
        return ResourceUsage(
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
            bram36=self.bram36 + other.bram36,
            uram=self.uram + other.uram,
            dsp=self.dsp + other.dsp,
        )

    def scale(self, k: int) -> "ResourceUsage":
        """Resource cost of ``k`` instances."""
        if k < 0:
            raise ValidationError(f"scale factor must be >= 0, got {k}")
        return ResourceUsage(
            lut=self.lut * k,
            ff=self.ff * k,
            bram36=self.bram36 * k,
            uram=self.uram * k,
            dsp=self.dsp * k,
        )

    # ------------------------------------------------------------------
    def utilisation(self, budget: "ResourceUsage") -> dict[str, float]:
        """Per-component fraction of ``budget`` consumed (0 budget -> 0)."""
        out = {}
        for field_name in ("lut", "ff", "bram36", "uram", "dsp"):
            cap = getattr(budget, field_name)
            used = getattr(self, field_name)
            out[field_name] = (used / cap) if cap > 0 else (0.0 if used == 0 else float("inf"))
        return out

    def fits_within(
        self, budget: "ResourceUsage", *, ceiling: float = 1.0
    ) -> bool:
        """Whether this usage fits in ``budget`` derated by ``ceiling``.

        ``ceiling`` models the routable-utilisation limit: a design using
        more than ~80-90% of any resource class generally fails timing
        closure, which is what caps the engine count on the U280.
        """
        if not 0.0 < ceiling <= 1.0:
            raise ValidationError(f"ceiling must be in (0, 1], got {ceiling}")
        return all(frac <= ceiling for frac in self.utilisation(budget).values())

    def require_fit(
        self, budget: "ResourceUsage", *, ceiling: float = 1.0, what: str = "design"
    ) -> None:
        """Raise :class:`ResourceError` with a breakdown if the fit fails."""
        util = self.utilisation(budget)
        over = {k: v for k, v in util.items() if v > ceiling}
        if over:
            detail = ", ".join(f"{k}={v:.1%}" for k, v in over.items())
            raise ResourceError(
                f"{what} exceeds the {ceiling:.0%} utilisation ceiling: {detail}"
            )

    # ------------------------------------------------------------------
    @staticmethod
    def for_table_bytes(n_bytes: int, *, in_uram: bool = True) -> "ResourceUsage":
        """Memory blocks needed to store ``n_bytes`` of constant table data."""
        if n_bytes < 0:
            raise ValidationError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return ResourceUsage()
        if in_uram:
            blocks = -(-n_bytes // URAM_BYTES)
            return ResourceUsage(uram=blocks)
        blocks = -(-n_bytes // BRAM36_BYTES)
        return ResourceUsage(bram36=blocks)

    def describe(self) -> str:
        """Compact single-line rendering."""
        return (
            f"LUT={self.lut} FF={self.ff} BRAM36={self.bram36} "
            f"URAM={self.uram} DSP={self.dsp}"
        )
