"""Initiation-interval derivation by modulo-scheduling analysis.

Everywhere else in this package the accumulation loop's II=7 is taken from
the paper; this module *derives* it the way the HLS scheduler does.  For a
pipelined loop, the achieved initiation interval is

``II = max(RecMII, ResMII)``

* **RecMII** (recurrence-constrained minimum II): for every dependence
  cycle ``C`` in the loop body's data-flow graph,
  ``ceil(total_latency(C) / total_distance(C))`` — a dependency carried
  ``distance`` iterations away allows that many iterations to overlap.
* **ResMII** (resource-constrained minimum II): for every operator class,
  ``ceil(uses / available_units)``.

The paper's two accumulators fall straight out:

* naive ``sum += x[i]``: a self-cycle through the 7-cycle double adder with
  distance 1 → ``RecMII = ceil(7/1) = 7``;
* Listing 1 ``values[i%7] += x[i]``: the same adder cycle but the
  dependence distance is 7 (each partial sum is touched every 7th
  iteration) → ``RecMII = ceil(7/7) = 1``.

The dependence graph is a :class:`networkx.DiGraph` whose nodes are
operations (with an ``op`` attribute naming an entry of
:data:`repro.hls.ops.OP_TABLE`) and whose edges carry a ``distance``
attribute (0 = same iteration, k = carried k iterations).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.errors import ValidationError
from repro.hls.ops import op

__all__ = ["LoopDependenceGraph", "ScheduleAnalysis", "analyse_loop"]


class LoopDependenceGraph:
    """Builder for a loop body's data-dependence graph.

    Example — the naive accumulation::

        g = LoopDependenceGraph()
        g.operation("load", "dmux")
        g.operation("acc", "dadd")
        g.depends("load", "acc")                    # same iteration
        g.depends("acc", "acc", distance=1)         # loop-carried
    """

    def __init__(self) -> None:
        self._g = nx.DiGraph()

    def operation(self, name: str, op_name: str) -> "LoopDependenceGraph":
        """Add an operation node using operator ``op_name``'s latency."""
        if name in self._g:
            raise ValidationError(f"duplicate operation {name!r}")
        spec = op(op_name)  # validates the mnemonic
        self._g.add_node(name, op=op_name, latency=spec.latency)
        return self

    def depends(
        self, src: str, dst: str, *, distance: int = 0
    ) -> "LoopDependenceGraph":
        """Add a dependence edge: ``dst`` consumes ``src``'s result
        ``distance`` iterations later (0 = same iteration)."""
        for n in (src, dst):
            if n not in self._g:
                raise ValidationError(f"unknown operation {n!r}")
        if distance < 0:
            raise ValidationError(f"distance must be >= 0, got {distance}")
        if distance == 0 and src == dst:
            raise ValidationError(
                "a zero-distance self-dependence is unschedulable"
            )
        self._g.add_edge(src, dst, distance=distance)
        return self

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying dependence graph."""
        return self._g

    def validate(self) -> None:
        """Reject graphs with zero-distance cycles (combinational loops)."""
        zero = nx.DiGraph(
            (u, v) for u, v, d in self._g.edges(data="distance") if d == 0
        )
        if zero.number_of_edges() and not nx.is_directed_acyclic_graph(zero):
            raise ValidationError(
                "zero-distance dependence cycle: the loop body is not "
                "schedulable in any II"
            )


@dataclass(frozen=True)
class ScheduleAnalysis:
    """Result of the II analysis.

    Attributes
    ----------
    rec_mii:
        Recurrence-constrained minimum II.
    res_mii:
        Resource-constrained minimum II.
    achieved_ii:
        ``max(rec_mii, res_mii)`` — what HLS reports for the loop.
    critical_cycle:
        The dependence cycle realising ``rec_mii`` (operation names), or
        ``()`` when the body is acyclic.
    body_latency:
        Longest zero-distance path latency (iteration latency lower bound).
    """

    rec_mii: int
    res_mii: int
    achieved_ii: int
    critical_cycle: tuple[str, ...]
    body_latency: float

    def describe(self) -> str:
        """One-line HLS-report-style summary."""
        culprit = (
            f" (cycle: {' -> '.join(self.critical_cycle)})"
            if self.critical_cycle
            else ""
        )
        return (
            f"achieved II={self.achieved_ii} "
            f"[RecMII={self.rec_mii}{culprit}, ResMII={self.res_mii}]"
        )


def analyse_loop(
    g: LoopDependenceGraph,
    *,
    unit_budget: dict[str, int] | None = None,
) -> ScheduleAnalysis:
    """Derive the achieved II of a pipelined loop.

    Parameters
    ----------
    g:
        The loop body's dependence graph.
    unit_budget:
        Operator-class instance counts (``{"dadd": 1, ...}``); operations
        whose class is absent are assumed fully parallel (HLS instantiates
        one core per operation unless told to share).
    """
    g.validate()
    graph = g.graph
    if graph.number_of_nodes() == 0:
        raise ValidationError("empty loop body")

    # RecMII: max over simple cycles of ceil(latency sum / distance sum).
    rec_mii = 1
    critical: tuple[str, ...] = ()
    for cycle in nx.simple_cycles(graph):
        nodes = list(cycle)
        lat = sum(graph.nodes[n]["latency"] for n in nodes)
        dist = 0
        for i, n in enumerate(nodes):
            nxt = nodes[(i + 1) % len(nodes)]
            dist += graph.edges[n, nxt]["distance"]
        if dist == 0:  # pragma: no cover - validate() rejects these
            raise ValidationError(f"zero-distance cycle {nodes}")
        mii = math.ceil(lat / dist)
        if mii > rec_mii:
            rec_mii = mii
            critical = tuple(nodes)

    # ResMII: ceil(uses / units) per shared operator class.
    res_mii = 1
    if unit_budget:
        uses: dict[str, int] = {}
        for _, data in graph.nodes(data=True):
            uses[data["op"]] = uses.get(data["op"], 0) + 1
        for op_name, units in unit_budget.items():
            if units < 1:
                raise ValidationError(f"unit budget for {op_name!r} must be >= 1")
            n_uses = uses.get(op_name, 0)
            if n_uses:
                res_mii = max(res_mii, math.ceil(n_uses / units))

    # Body latency: longest zero-distance path (weights on nodes).
    zero = nx.DiGraph()
    zero.add_nodes_from(graph.nodes(data=True))
    zero.add_edges_from(
        (u, v) for u, v, d in graph.edges(data="distance") if d == 0
    )
    body_latency = 0.0
    for n in nx.topological_sort(zero):
        preds = [zero.nodes[p]["_finish"] for p in zero.predecessors(n)]
        finish = (max(preds) if preds else 0.0) + zero.nodes[n]["latency"]
        zero.nodes[n]["_finish"] = finish
        body_latency = max(body_latency, finish)

    return ScheduleAnalysis(
        rec_mii=rec_mii,
        res_mii=res_mii,
        achieved_ii=max(rec_mii, res_mii),
        critical_cycle=critical,
        body_latency=body_latency,
    )


# ----------------------------------------------------------------------
# The paper's two loops, prebuilt
# ----------------------------------------------------------------------
def naive_accumulation_loop() -> LoopDependenceGraph:
    """``sum += hazard[i] * width[i]`` — the Xilinx library's loop."""
    g = LoopDependenceGraph()
    g.operation("load", "dmux")
    g.operation("mul", "dmul")
    g.operation("acc", "dadd")
    g.depends("load", "mul")
    g.depends("mul", "acc")
    g.depends("acc", "acc", distance=1)  # the II=7 culprit
    return g


def listing1_accumulation_loop(lanes: int = 7) -> LoopDependenceGraph:
    """``values[i % lanes] += ...`` — paper Listing 1.

    The partial-sum array turns the self-dependence distance into
    ``lanes``: each element is next touched ``lanes`` iterations later.
    """
    if lanes < 1:
        raise ValidationError(f"lanes must be >= 1, got {lanes}")
    g = LoopDependenceGraph()
    g.operation("load", "dmux")
    g.operation("mul", "dmul")
    g.operation("acc", "dadd")
    g.depends("load", "mul")
    g.depends("mul", "acc")
    g.depends("acc", "acc", distance=lanes)
    return g
