"""Serialisation of market data, workloads and results.

Production pricing systems exchange curves and trades as files; this module
provides stable JSON and CSV round-trips for every value type a user feeds
into or receives from the engines:

* curves (:class:`~repro.core.curves.YieldCurve` /
  :class:`~repro.core.curves.HazardCurve`) as JSON or two-column CSV;
* option portfolios as JSON or CSV;
* engine results as JSON (spreads plus the performance record).

All writers are deterministic (sorted keys, fixed column order) so outputs
diff cleanly under version control.
"""

from __future__ import annotations

import csv
import io as _stdio
import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.curves import Curve, HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.engines.base import EngineResult
from repro.errors import ValidationError

__all__ = [
    "curve_to_json",
    "curve_from_json",
    "curve_to_csv",
    "curve_from_csv",
    "portfolio_to_json",
    "portfolio_from_json",
    "portfolio_to_csv",
    "portfolio_from_csv",
    "result_to_json",
    "save",
    "load_curve",
    "load_portfolio",
]

_CURVE_KINDS = {"yield": YieldCurve, "hazard": HazardCurve, "generic": Curve}


def _kind_of(curve: Curve) -> str:
    if isinstance(curve, YieldCurve):
        return "yield"
    if isinstance(curve, HazardCurve):
        return "hazard"
    return "generic"


# ----------------------------------------------------------------------
# Curves
# ----------------------------------------------------------------------
def curve_to_json(curve: Curve) -> str:
    """Serialise a curve to a JSON document (kind + knots)."""
    doc = {
        "kind": _kind_of(curve),
        "times": [float(t) for t in curve.times],
        "values": [float(v) for v in curve.values],
    }
    return json.dumps(doc, sort_keys=True, indent=2)


def curve_from_json(text: str) -> Curve:
    """Rebuild a curve from :func:`curve_to_json` output."""
    doc = json.loads(text)
    try:
        cls = _CURVE_KINDS[doc["kind"]]
        return cls(doc["times"], doc["values"])
    except KeyError as exc:
        raise ValidationError(f"malformed curve document: missing {exc}") from exc


def curve_to_csv(curve: Curve) -> str:
    """Two-column CSV: ``time,value`` with a header row."""
    buf = _stdio.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["time", "value"])
    for t, v in zip(curve.times, curve.values):
        writer.writerow([repr(float(t)), repr(float(v))])
    return buf.getvalue()


def curve_from_csv(text: str, *, kind: str = "generic") -> Curve:
    """Rebuild a curve from two-column CSV (``kind``: yield/hazard/generic)."""
    if kind not in _CURVE_KINDS:
        raise ValidationError(
            f"kind must be one of {sorted(_CURVE_KINDS)}, got {kind!r}"
        )
    reader = csv.reader(_stdio.StringIO(text))
    rows = [r for r in reader if r]
    if not rows or rows[0] != ["time", "value"]:
        raise ValidationError("curve CSV must start with a 'time,value' header")
    times = [float(r[0]) for r in rows[1:]]
    values = [float(r[1]) for r in rows[1:]]
    return _CURVE_KINDS[kind](times, values)


# ----------------------------------------------------------------------
# Portfolios
# ----------------------------------------------------------------------
def portfolio_to_json(options: list[CDSOption]) -> str:
    """Serialise a portfolio to JSON."""
    doc = [
        {
            "maturity": o.maturity,
            "frequency": o.frequency,
            "recovery_rate": o.recovery_rate,
        }
        for o in options
    ]
    return json.dumps(doc, sort_keys=True, indent=2)


def portfolio_from_json(text: str) -> list[CDSOption]:
    """Rebuild a portfolio from :func:`portfolio_to_json` output."""
    doc = json.loads(text)
    try:
        return [
            CDSOption(
                maturity=entry["maturity"],
                frequency=entry["frequency"],
                recovery_rate=entry["recovery_rate"],
            )
            for entry in doc
        ]
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed portfolio document: {exc}") from exc


def portfolio_to_csv(options: list[CDSOption]) -> str:
    """CSV with columns ``maturity,frequency,recovery_rate``."""
    buf = _stdio.StringIO()
    writer = csv.writer(buf, lineterminator="\n")
    writer.writerow(["maturity", "frequency", "recovery_rate"])
    for o in options:
        writer.writerow([repr(o.maturity), o.frequency, repr(o.recovery_rate)])
    return buf.getvalue()


def portfolio_from_csv(text: str) -> list[CDSOption]:
    """Rebuild a portfolio from :func:`portfolio_to_csv` output."""
    reader = csv.reader(_stdio.StringIO(text))
    rows = [r for r in reader if r]
    if not rows or rows[0] != ["maturity", "frequency", "recovery_rate"]:
        raise ValidationError(
            "portfolio CSV must start with a "
            "'maturity,frequency,recovery_rate' header"
        )
    return [
        CDSOption(maturity=float(m), frequency=int(f), recovery_rate=float(r))
        for m, f, r in rows[1:]
    ]


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
def result_to_json(result: EngineResult) -> str:
    """Serialise an engine run (spreads + performance record) to JSON."""
    doc: dict[str, Any] = {
        "engine": result.engine,
        "spreads_bps": [float(s) for s in result.spreads_bps],
        "kernel_cycles": result.kernel_cycles,
        "pcie_seconds": result.pcie_seconds,
        "seconds": result.seconds,
        "options_per_second": result.options_per_second,
        "invocations": result.invocations,
        "n_engines": result.n_engines,
        "resources": {
            "lut": result.resources.lut,
            "ff": result.resources.ff,
            "bram36": result.resources.bram36,
            "uram": result.resources.uram,
            "dsp": result.resources.dsp,
        },
    }
    return json.dumps(doc, sort_keys=True, indent=2)


# ----------------------------------------------------------------------
# File helpers
# ----------------------------------------------------------------------
def save(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` (creating parent directories)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(text)
    return p


def load_curve(path: str | Path, *, kind: str | None = None) -> Curve:
    """Load a curve from a ``.json`` or ``.csv`` file (by extension)."""
    p = Path(path)
    text = p.read_text()
    if p.suffix == ".json":
        return curve_from_json(text)
    if p.suffix == ".csv":
        return curve_from_csv(text, kind=kind if kind is not None else "generic")
    raise ValidationError(f"unsupported curve file extension: {p.suffix!r}")


def load_portfolio(path: str | Path) -> list[CDSOption]:
    """Load a portfolio from a ``.json`` or ``.csv`` file (by extension)."""
    p = Path(path)
    text = p.read_text()
    if p.suffix == ".json":
        return portfolio_from_json(text)
    if p.suffix == ".csv":
        return portfolio_from_csv(text)
    raise ValidationError(f"unsupported portfolio file extension: {p.suffix!r}")
