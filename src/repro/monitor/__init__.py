"""repro.monitor — SLOs, burn-rate alerts and detection on the sim clock.

The judgment layer over :mod:`repro.telemetry` and :mod:`repro.faults`:
a :class:`~repro.monitor.sampler.MetricsSampler` turns the live metrics
registry into :class:`~repro.monitor.series.TimeSeries` on a fixed
simulated cadence, the SLO engine (:mod:`repro.monitor.slo`) judges the
replay against declarative objectives with Google-SRE-style
multi-window multi-burn-rate alert rules, detection scoring
(:mod:`repro.monitor.detect`) reconciles fired alerts against injected
fault plans (time-to-detect, false positives/negatives), the dashboard
(:mod:`repro.monitor.dashboard`) renders it all as one self-contained
HTML file, and the perf watchdog (:mod:`repro.monitor.regress`) gates
CI on the committed ``BENCH_*.json`` baselines.

Monitoring is opt-in, exactly like telemetry: ``serve(...,
monitor=None)`` costs nothing and every report stays byte-identical;
pass a :class:`Monitor` to capture a :class:`MonitorResult`.
"""

from repro.monitor.dashboard import render_dashboard, write_dashboard
from repro.monitor.regress import (
    CheckResult,
    Tolerance,
    bench_check,
    compare_snapshots,
    render_check_results,
)
from repro.monitor.core import (
    DEFAULT_OBJECTIVES,
    Monitor,
    MonitorConfig,
    MonitorResult,
    monitor_result_dict,
    render_monitor_result,
    tenant_objectives,
    write_monitor_result,
)
from repro.monitor.detect import DetectionReport, FaultInterval, score_detection
from repro.monitor.sampler import MetricsSampler
from repro.monitor.series import Point, TimeSeries, quantile
from repro.monitor.slo import (
    DEFAULT_RULES,
    Alert,
    BurnRateRule,
    Objective,
    SLOStatus,
    evaluate_objective,
)

__all__ = [
    "Alert",
    "BurnRateRule",
    "CheckResult",
    "DEFAULT_OBJECTIVES",
    "DEFAULT_RULES",
    "DetectionReport",
    "FaultInterval",
    "MetricsSampler",
    "Monitor",
    "MonitorConfig",
    "MonitorResult",
    "Objective",
    "Point",
    "SLOStatus",
    "TimeSeries",
    "Tolerance",
    "bench_check",
    "compare_snapshots",
    "evaluate_objective",
    "monitor_result_dict",
    "quantile",
    "render_check_results",
    "render_dashboard",
    "render_monitor_result",
    "score_detection",
    "tenant_objectives",
    "write_dashboard",
    "write_monitor_result",
]
