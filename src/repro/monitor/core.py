"""The monitor: sampler + SLO engine + detection over one replay.

:class:`Monitor` is the handle the serving engine accepts (``serve(...,
monitor=...)``), mirroring the telemetry discipline: ``None`` costs
nothing and every report stays byte-identical, a live monitor rides the
replay's trace hooks and leaves a :class:`MonitorResult` behind.

Lifecycle::

    monitor = Monitor()                      # default config
    server.serve(requests, monitor=monitor)  # attach + finalize inside
    monitor.result.alerts                    # fired alerts
    monitor.result.detection                 # vs the fault plan, if any

:meth:`Monitor.attach` hooks a :class:`~repro.monitor.sampler.
MetricsSampler` onto the replay's simulation (registry counters plus a
``cards_up`` availability probe); :meth:`Monitor.finalize` flushes the
sampler, derives per-kind event series from the raw result, evaluates
every configured :class:`~repro.monitor.slo.Objective`, scores
detection against the fault plan, and — when a recording telemetry
handle is present — emits each alert as a span on the ``alerts`` track
and counts it in the session registry (``monitor_alerts_total``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ValidationError
from repro.monitor.detect import DetectionReport, fault_intervals, score_detection
from repro.monitor.sampler import MetricsSampler
from repro.monitor.series import TimeSeries
from repro.monitor.slo import (
    DEFAULT_RULES,
    Alert,
    BurnRateRule,
    Objective,
    SLOStatus,
    evaluate_objective,
)

__all__ = [
    "MonitorConfig",
    "Monitor",
    "MonitorResult",
    "DEFAULT_OBJECTIVES",
    "monitor_result_dict",
    "tenant_objectives",
    "write_monitor_result",
    "render_monitor_result",
]

#: Schema stamp carried in monitor JSON exports.
MONITOR_SCHEMA_VERSION = 1

#: Default objectives for the serving workloads, calibrated against the
#: seed-7 chaos matrix: the baseline cell must never breach any of them
#: (zero false positives is a committed-golden property), while a card
#: crash breaches availability within one short window.  Latency and
#: deadline budgets are therefore set from the baseline's worst
#: windowed behaviour (p99 spikes to ~12 ms, one 25 ms window misses
#: ~7.5% of deadlines), not from aspirational production numbers.
DEFAULT_OBJECTIVES: tuple[Objective, ...] = (
    Objective(name="card-availability", sli="availability", target=0.95),
    Objective(
        name="quote-latency",
        sli="latency",
        kind="quote",
        threshold_s=15e-3,
        target=0.99,
    ),
    Objective(name="deadline-hit", sli="deadline", target=0.90),
    Objective(name="shed-rate", sli="shed", target=0.95),
)

#: Registry counters the sampler tracks by default (bare names; every
#: labelled variant becomes its own series).
DEFAULT_SAMPLED_METRICS: tuple[str, ...] = (
    "serving_batches_total",
    "serving_batch_requests_total",
    "serving_requests_shed_queue_total",
    "serving_card_rows_total",
)


def tenant_objectives(
    tenants: tuple[str, ...],
    *,
    availability_target: float = 0.95,
    latency_threshold_s: float = 15e-3,
    latency_target: float = 0.99,
    deadline_target: float = 0.90,
) -> tuple[Objective, ...]:
    """Per-tenant SLOs for a monitored gateway replay.

    One cluster-wide availability objective plus a quote-latency and a
    deadline objective *per tenant* — how a multi-tenant desk actually
    contracts: the gold desk's budget must not be judged on bronze's
    traffic.  Tenant-scoped statuses carry a ``tenant`` key in their
    JSON dumps; unscoped single-tenant monitoring is unaffected.

    Parameters
    ----------
    tenants:
        Tenant names, in reporting order.
    availability_target / latency_threshold_s / latency_target /
    deadline_target:
        The shared targets, defaulting to the serving-layer calibration
        of :data:`DEFAULT_OBJECTIVES`.
    """
    if not tenants:
        raise ValidationError("tenant_objectives needs >= 1 tenant name")
    objectives = [
        Objective(
            name="card-availability",
            sli="availability",
            target=availability_target,
        ),
    ]
    for tenant in tenants:
        objectives.append(
            Objective(
                name=f"{tenant}-quote-latency",
                sli="latency",
                kind="quote",
                threshold_s=latency_threshold_s,
                target=latency_target,
                tenant=tenant,
            )
        )
        objectives.append(
            Objective(
                name=f"{tenant}-deadline-hit",
                sli="deadline",
                target=deadline_target,
                tenant=tenant,
            )
        )
    return tuple(objectives)

#: Key of the availability probe series.
CARDS_UP_SERIES = "cards_up"


@dataclass(frozen=True)
class MonitorConfig:
    """Monitoring policy for one replay.

    Attributes
    ----------
    sample_period_s:
        Sampler grid spacing on the simulated clock.
    tick_s:
        SLO evaluation cadence (alerts fire/clear on ticks).
    objectives / rules:
        The SLOs and the multi-window burn-rate rules they share.
    detection_grace_s:
        Post-interval slack when attributing alerts to fault windows
        (defaults to the slowest rule's long window plus one tick — the
        pipeline's worst-case inherent lag).
    sampled_metrics:
        Bare registry metric names the sampler tracks.
    """

    sample_period_s: float = 5e-3
    tick_s: float = 5e-3
    objectives: tuple[Objective, ...] = DEFAULT_OBJECTIVES
    rules: tuple[BurnRateRule, ...] = DEFAULT_RULES
    detection_grace_s: float | None = None
    sampled_metrics: tuple[str, ...] = DEFAULT_SAMPLED_METRICS

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValidationError(
                f"sample_period_s must be > 0, got {self.sample_period_s}"
            )
        if self.tick_s <= 0:
            raise ValidationError(f"tick_s must be > 0, got {self.tick_s}")
        if not self.objectives:
            raise ValidationError("monitor needs >= 1 objective")

    @property
    def grace_s(self) -> float:
        """Effective detection grace (explicit or derived from rules)."""
        if self.detection_grace_s is not None:
            return self.detection_grace_s
        return max(rule.long_s for rule in self.rules) + self.tick_s


@dataclass(frozen=True)
class MonitorResult:
    """Everything one monitored replay produced.

    Attributes
    ----------
    config:
        The policy that produced this result.
    span_s:
        Evaluation horizon (first arrival to last completion, on the
        simulated clock).
    series:
        The series bank: sampled registry counters, the ``cards_up``
        probe, and derived per-kind event series
        (``latency:<kind>``, ``deadline_miss``, ``shed``).
    statuses:
        Per-objective budget accounting, config order.
    alerts:
        Every fired alert across objectives, in fire order.
    detection:
        Alert quality against the replay's fault plan (``None`` on an
        unfaulted replay — there is no ground truth to score against).
    """

    config: MonitorConfig
    span_s: float
    series: dict = field(compare=False, repr=False)
    statuses: tuple[SLOStatus, ...]
    alerts: tuple[Alert, ...]
    detection: DetectionReport | None

    @property
    def n_alerts(self) -> int:
        """Total alerts fired."""
        return len(self.alerts)

    @property
    def breached(self) -> tuple[str, ...]:
        """Names of objectives whose whole-run target was missed."""
        return tuple(s.objective.name for s in self.statuses if not s.met)


class Monitor:
    """One replay's monitoring harness (attach → run → finalize).

    Parameters
    ----------
    config:
        Monitoring policy (default :class:`MonitorConfig`).
    """

    def __init__(self, config: MonitorConfig | None = None) -> None:
        self.config = config if config is not None else MonitorConfig()
        self.sampler: MetricsSampler | None = None
        self.result: MonitorResult | None = None
        self._n_cards = 1

    # ------------------------------------------------------------------
    def attach(
        self, sim, registry, *, n_cards: int, health=None, probe=None
    ) -> None:
        """Hook onto a replay: sample ``registry`` on ``sim``'s clock.

        Parameters
        ----------
        sim / registry:
            The replay's simulation and run-local metrics registry.
        n_cards:
            Cluster size (normalises the availability probe).
        health:
            The run's :class:`~repro.faults.ClusterHealth` when a fault
            plan is active; ``None`` means every card is always up.
        probe:
            Custom ``cards_up`` probe ``t -> float`` overriding the
            ``health`` derivation — multi-lane callers (the gateway)
            sum healthy cards across servers with their own closure.
        """
        if self.sampler is not None:
            raise ValidationError("monitor is already attached to a replay")
        self._n_cards = n_cards
        self.sampler = MetricsSampler(
            registry,
            period_s=self.config.sample_period_s,
            names=self.config.sampled_metrics,
        )
        if probe is None:
            if health is not None:
                probe = lambda t: float(len(health.healthy_cards(t)))  # noqa: E731
            else:
                probe = lambda t: float(n_cards)  # noqa: E731
        self.sampler.add_probe(CARDS_UP_SERIES, probe)
        self.sampler.attach(sim)

    # ------------------------------------------------------------------
    def finalize(self, result, *, plan=None, telemetry=None) -> MonitorResult:
        """Evaluate the replay: flush samples, run SLOs, score detection.

        Parameters
        ----------
        result:
            The replay's :class:`~repro.serving.metrics.ServingResult`.
        plan:
            The injected :class:`~repro.faults.FaultPlan` (ground truth
            for detection scoring); ``None``/empty means unfaulted.
        telemetry:
            The run's :class:`~repro.telemetry.Telemetry` handle; with a
            recording handle, alerts become spans on the ``alerts``
            track and ``monitor_alerts_total`` counters.
        """
        if self.sampler is None:
            raise ValidationError(
                "monitor was never attached; pass it to serve()"
            )
        span_s = max(
            [r.completion_s for r in result.responses]
            + [s.time_s for s in result.sheds]
            + [f.time_s for f in result.fails]
            + [0.0]
        )
        self.sampler.finish(span_s)
        series: dict[str, TimeSeries] = self.sampler.series

        # Derived event series: the dashboard's raw panels.
        kinds = sorted({r.kind for r in result.responses})
        for kind in kinds:
            series[f"latency:{kind}"] = TimeSeries.from_events(
                f"latency:{kind}",
                (
                    (r.completion_s, r.latency_s)
                    for r in result.responses
                    if r.kind == kind
                ),
            )
        series["deadline_miss"] = TimeSeries.from_events(
            "deadline_miss",
            (
                (r.completion_s, 0.0 if r.met_deadline else 1.0)
                for r in result.responses
            ),
        )
        series["shed"] = TimeSeries.from_events(
            "shed", ((s.time_s, 1.0) for s in result.sheds)
        )

        availability = series.get(CARDS_UP_SERIES)
        statuses = tuple(
            evaluate_objective(
                objective,
                result,
                rules=self.config.rules,
                tick_s=self.config.tick_s,
                span_s=span_s,
                availability=availability,
                n_cards=self._n_cards,
            )
            for objective in self.config.objectives
        )
        alerts = tuple(
            sorted(
                (a for s in statuses for a in s.alerts),
                key=lambda a: (a.fired_s, a.objective),
            )
        )
        detection = None
        if plan is not None and not plan.is_empty:
            detection = score_detection(
                alerts,
                fault_intervals(plan, span_s),
                span_s=span_s,
                grace_s=self.config.grace_s,
            )
        self._publish(alerts, span_s, telemetry)
        self.result = MonitorResult(
            config=self.config,
            span_s=span_s,
            series=series,
            statuses=statuses,
            alerts=alerts,
            detection=detection,
        )
        return self.result

    def _publish(self, alerts, span_s: float, telemetry) -> None:
        """Mirror alerts into a recording telemetry handle."""
        if telemetry is None:
            return
        from repro.telemetry import NULL_TELEMETRY

        if telemetry is NULL_TELEMETRY:
            return
        recorder = telemetry.recorder
        for alert in alerts:
            end = alert.cleared_s if alert.cleared_s is not None else span_s
            if recorder.enabled:
                recorder.record(
                    f"alert:{alert.objective}",
                    alert.fired_s,
                    end,
                    track="alerts",
                    category="alert",
                    args={
                        "rule": alert.rule,
                        "peak_burn": round(alert.peak_burn, 3),
                    },
                )
            telemetry.metrics.counter(
                "monitor_alerts_total",
                "SLO burn-rate alerts fired",
                labels={"slo": alert.objective},
            ).inc()


# ----------------------------------------------------------------------
def monitor_result_dict(result: MonitorResult, *, series: bool = False) -> dict:
    """JSON-friendly dump of a monitor result.

    ``series=True`` inlines the full series bank (dashboard-sized);
    the default keeps the document golden-sized: budgets, alerts and
    detection only.
    """
    out = {
        "schema_version": MONITOR_SCHEMA_VERSION,
        "span_s": result.span_s,
        "tick_s": result.config.tick_s,
        "sample_period_s": result.config.sample_period_s,
        "slos": [s.to_dict() for s in result.statuses],
        "alerts": [a.to_dict() for a in result.alerts],
        "n_alerts": result.n_alerts,
        "breached": list(result.breached),
        "detection": (
            result.detection.to_dict() if result.detection is not None else None
        ),
    }
    if series:
        out["series"] = {
            name: s.to_dict() for name, s in sorted(result.series.items())
        }
    return out


def write_monitor_result(path, result: MonitorResult, *, series: bool = False):
    """Serialise :func:`monitor_result_dict` to ``path``; returns it."""
    path = Path(path)
    path.write_text(
        json.dumps(monitor_result_dict(result, series=series), indent=2) + "\n"
    )
    return path


def render_monitor_result(result: MonitorResult) -> str:
    """Text rendering of budgets, alerts and detection (deterministic)."""
    lines = [
        f"  monitor: {len(result.statuses)} SLO(s), "
        f"{result.n_alerts} alert(s), span {result.span_s * 1e3:.1f} ms"
    ]
    for status in result.statuses:
        mark = "ok " if status.met else "MISS"
        lines.append(
            f"    [{mark}] {status.objective.name:<18} "
            f"good {status.good_fraction:>8.3%}  "
            f"budget spent {status.budget_spent:>7.1%}  "
            f"alerts {len(status.alerts)}"
        )
    for alert in result.alerts:
        cleared = (
            f"cleared {alert.cleared_s * 1e3:.1f} ms"
            if alert.cleared_s is not None
            else "still firing"
        )
        lines.append(
            f"    alert {alert.objective}: fired {alert.fired_s * 1e3:.1f} ms, "
            f"{cleared}, peak burn {alert.peak_burn:.1f}x"
        )
    det = result.detection
    if det is not None:
        ttd = (
            f"{det.time_to_detect_s * 1e3:.1f} ms"
            if det.time_to_detect_s is not None
            else "never"
        )
        ttc = (
            f"{det.time_to_clear_s * 1e3:.1f} ms"
            if det.time_to_clear_s is not None
            else "n/a"
        )
        lines.append(
            f"    detection: {len(det.intervals)} fault interval(s), "
            f"TTD {ttd}, clear lag {ttc}, "
            f"FP {det.false_positives}, FN {det.false_negatives}"
        )
    return "\n".join(lines)
