"""The dashboard: one monitored replay as one self-contained HTML file.

Everything a post-incident review needs on a single static page — SLO
budget bars, the alert timeline against the injected fault windows, and
sparklines over the sampled series bank — with **zero external assets**:
no scripts, no fonts, no CDN, just inline CSS and inline SVG.  The file
opens from disk, attaches to CI runs as an artifact, and diffs cleanly
because the rendering is deterministic (same :class:`~repro.monitor.
core.MonitorResult` in, same bytes out).

Layout decisions worth knowing:

* Counters are plotted as **rates** (per-second increase between
  samples), gauges as levels, and event series as windowed aggregates
  (p99 for latencies, sums for sheds/misses) — raw event scatter is
  unreadable at 12k requests.
* All timelines share one x-axis (0 → span) so a fault window, the
  alert that caught it, and the goodput dip line up vertically across
  panels.
"""

from __future__ import annotations

from html import escape
from pathlib import Path

from repro.monitor.core import CARDS_UP_SERIES, MonitorResult
from repro.monitor.series import TimeSeries

__all__ = ["render_dashboard", "write_dashboard"]

#: Sparkline geometry (viewBox units; the page scales them fluidly).
_SPARK_W = 600
_SPARK_H = 80
_TIMELINE_H = 26

_CSS = """\
body { font: 14px/1.5 -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 62rem; color: #1d2733;
       background: #fbfcfe; padding: 0 1rem; }
h1 { font-size: 1.45rem; margin-bottom: 0.2rem; }
h2 { font-size: 1.05rem; margin: 1.8rem 0 0.5rem;
     border-bottom: 1px solid #dde4ec; padding-bottom: 0.25rem; }
.meta { color: #5b6a7d; margin-bottom: 1.2rem; }
.grid { display: grid; grid-template-columns: repeat(auto-fill,
        minmax(17rem, 1fr)); gap: 0.8rem; }
.panel { background: #fff; border: 1px solid #dde4ec; border-radius: 6px;
         padding: 0.7rem 0.9rem; }
.panel .name { font-weight: 600; font-size: 0.85rem; color: #32404f;
               overflow-wrap: anywhere; }
.panel .stat { color: #5b6a7d; font-size: 0.78rem; }
svg { width: 100%; height: auto; display: block; margin-top: 0.35rem; }
.slo { margin: 0.55rem 0; }
.slo .label { display: flex; justify-content: space-between;
              font-size: 0.85rem; }
.bar { height: 10px; border-radius: 5px; background: #e6ecf3;
       overflow: hidden; margin-top: 3px; }
.bar span { display: block; height: 100%; }
.ok span { background: #2e9e5b; }
.miss span { background: #d64545; }
.badge { display: inline-block; border-radius: 4px; padding: 0 0.45rem;
         font-size: 0.78rem; font-weight: 600; margin-left: 0.4rem; }
.badge.ok { background: #e2f3e9; color: #207141; }
.badge.miss { background: #fbe4e4; color: #a32f2f; }
table { border-collapse: collapse; width: 100%; font-size: 0.85rem; }
th, td { text-align: left; padding: 0.3rem 0.6rem;
         border-bottom: 1px solid #edf1f6; }
th { color: #5b6a7d; font-weight: 600; }
footer { margin-top: 2.2rem; color: #8a97a6; font-size: 0.78rem; }
"""


def _fmt_ms(t_s: float) -> str:
    return f"{t_s * 1e3:.1f} ms"


def _polyline(series: TimeSeries, span_s: float) -> str:
    """Inline-SVG sparkline of one series over the shared x-axis."""
    pts = [
        (t, v)
        for t, v in zip(series.times, series.values)
        if v == v  # drop nan gaps
    ]
    if not pts or span_s <= 0:
        return (
            f'<svg viewBox="0 0 {_SPARK_W} {_SPARK_H}" role="img">'
            f'<text x="8" y="{_SPARK_H // 2}" fill="#8a97a6" '
            f'font-size="12">no data</text></svg>'
        )
    lo = min(v for _, v in pts)
    hi = max(v for _, v in pts)
    vspan = (hi - lo) or 1.0
    pad = 4
    coords = " ".join(
        f"{pad + (t / span_s) * (_SPARK_W - 2 * pad):.1f},"
        f"{_SPARK_H - pad - ((v - lo) / vspan) * (_SPARK_H - 2 * pad):.1f}"
        for t, v in pts
    )
    return (
        f'<svg viewBox="0 0 {_SPARK_W} {_SPARK_H}" role="img" '
        f'preserveAspectRatio="none">'
        f'<polyline points="{coords}" fill="none" stroke="#3b77c2" '
        f'stroke-width="1.5"/></svg>'
    )


def _timeline(intervals, span_s: float, colour: str) -> str:
    """One-row SVG timeline: shaded ``(start, end)`` bars over the span."""
    bars = []
    for start_s, end_s in intervals:
        x = (start_s / span_s) * _SPARK_W if span_s > 0 else 0.0
        w = max(
            ((end_s - start_s) / span_s) * _SPARK_W if span_s > 0 else 0.0,
            2.0,
        )
        bars.append(
            f'<rect x="{x:.1f}" y="4" width="{w:.1f}" '
            f'height="{_TIMELINE_H - 8}" rx="3" fill="{colour}"/>'
        )
    return (
        f'<svg viewBox="0 0 {_SPARK_W} {_TIMELINE_H}" role="img" '
        f'preserveAspectRatio="none">'
        f'<line x1="0" y1="{_TIMELINE_H - 2}" x2="{_SPARK_W}" '
        f'y2="{_TIMELINE_H - 2}" stroke="#dde4ec"/>'
        + "".join(bars)
        + "</svg>"
    )


def _panel_series(result: MonitorResult) -> list[tuple[str, str, TimeSeries]]:
    """Pick and transform the series worth a panel: (title, note, series).

    Counters → rate, ``cards_up`` → level, latency events → tumbling
    p99, shed/miss events → tumbling counts.  Window width is the span
    over ~40 buckets so every replay gets a comparable resolution.
    """
    width = max(result.span_s / 40.0, result.config.sample_period_s)
    panels: list[tuple[str, str, TimeSeries]] = []
    for name in sorted(result.series):
        series = result.series[name]
        if not series:
            continue
        if name == CARDS_UP_SERIES:
            panels.append((name, "cards healthy (level)", series))
        elif series.kind == "counter":
            panels.append((name, "rate, 1/s", series.rate()))
        elif name.startswith("latency:"):
            panels.append(
                (
                    f"{name} p99",
                    f"tumbling p99, {width * 1e3:g} ms buckets",
                    series.tumbling(width, "p99", end_s=result.span_s),
                )
            )
        elif name in ("deadline_miss", "shed"):
            panels.append(
                (
                    f"{name} count",
                    f"tumbling count, {width * 1e3:g} ms buckets",
                    series.tumbling(width, "sum", end_s=result.span_s),
                )
            )
        else:
            panels.append((name, series.kind, series))
    return panels


def render_dashboard(
    result: MonitorResult,
    *,
    title: str = "repro-cds monitor",
    fault_intervals=None,
) -> str:
    """Render one monitored replay as a self-contained HTML document.

    Parameters
    ----------
    result:
        The replay's evaluation.
    title:
        Page heading (e.g. the chaos cell name).
    fault_intervals:
        Ground-truth ``(start_s, end_s)`` fault windows to overlay on
        the alert timeline; defaults to the intervals in
        ``result.detection`` when present.
    """
    span = result.span_s
    if fault_intervals is None and result.detection is not None:
        fault_intervals = [
            (iv.start_s, iv.end_s) for iv in result.detection.intervals
        ]
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{escape(title)}</h1>",
        f'<p class="meta">span {_fmt_ms(span)} (simulated) &middot; '
        f"{len(result.statuses)} SLO(s) &middot; {result.n_alerts} "
        f"alert(s) &middot; sample period "
        f"{_fmt_ms(result.config.sample_period_s)}</p>",
    ]

    # --- SLO budget bars ----------------------------------------------
    parts.append("<h2>Service-level objectives</h2>")
    for status in result.statuses:
        cls = "ok" if status.met else "miss"
        spent = min(max(status.budget_spent, 0.0), 1.0)
        parts.append(
            f'<div class="slo {cls}"><div class="label">'
            f"<span>{escape(status.objective.name)} "
            f"<small>({escape(status.objective.describe())})</small>"
            f'<span class="badge {cls}">'
            f'{"met" if status.met else "MISSED"}</span></span>'
            f"<span>good {status.good_fraction:.3%} &middot; budget spent "
            f"{status.budget_spent:.1%}</span></div>"
            f'<div class="bar"><span style="width:{spent:.1%}"></span>'
            f"</div></div>"
        )

    # --- Alert timeline -----------------------------------------------
    parts.append("<h2>Alerts and fault windows</h2>")
    if fault_intervals:
        parts.append('<div class="panel"><div class="name">injected faults'
                     "</div>")
        parts.append(_timeline(fault_intervals, span, "#e9b44c"))
        parts.append("</div>")
    if result.alerts:
        by_slo: dict[str, list[tuple[float, float]]] = {}
        for alert in result.alerts:
            end = alert.cleared_s if alert.cleared_s is not None else span
            by_slo.setdefault(alert.objective, []).append(
                (alert.fired_s, end)
            )
        for slo_name in sorted(by_slo):
            parts.append(
                f'<div class="panel"><div class="name">alerts: '
                f"{escape(slo_name)}</div>"
            )
            parts.append(_timeline(by_slo[slo_name], span, "#d64545"))
            parts.append("</div>")
        parts.append("<table><tr><th>objective</th><th>rule</th>"
                     "<th>fired</th><th>cleared</th><th>peak burn</th></tr>")
        for alert in result.alerts:
            cleared = (
                _fmt_ms(alert.cleared_s)
                if alert.cleared_s is not None
                else "still firing"
            )
            parts.append(
                f"<tr><td>{escape(alert.objective)}</td>"
                f"<td>#{alert.rule}</td>"
                f"<td>{_fmt_ms(alert.fired_s)}</td><td>{cleared}</td>"
                f"<td>{alert.peak_burn:.1f}x</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append('<p class="meta">no alerts fired.</p>')

    # --- Detection scorecard ------------------------------------------
    det = result.detection
    if det is not None:
        ttd = (
            _fmt_ms(det.time_to_detect_s)
            if det.time_to_detect_s is not None
            else "never"
        )
        ttc = (
            _fmt_ms(det.time_to_clear_s)
            if det.time_to_clear_s is not None
            else "n/a"
        )
        cls = "ok" if det.detected and not det.false_positives else "miss"
        parts.append(
            f"<h2>Detection</h2><p>{len(det.intervals)} fault interval(s)"
            f' &middot; time to detect {ttd} &middot; clear lag {ttc} '
            f"&middot; false positives {det.false_positives} &middot; "
            f"false negatives {det.false_negatives}"
            f'<span class="badge {cls}">'
            f'{"detected" if det.detected else "MISSED"}</span></p>'
        )

    # --- Series panels -------------------------------------------------
    parts.append("<h2>Series</h2>")
    parts.append('<div class="grid">')
    for name, note, series in _panel_series(result):
        finite = [v for v in series.values if v == v]
        stat = (
            f"min {min(finite):g} &middot; max {max(finite):g} &middot; "
            f"{len(series)} point(s)"
            if finite
            else "no data"
        )
        parts.append(
            f'<div class="panel"><div class="name">{escape(name)}</div>'
            f'<div class="stat">{escape(note)} &middot; {stat}</div>'
            f"{_polyline(series, span)}</div>"
        )
    parts.append("</div>")

    parts.append(
        "<footer>repro-cds &middot; all times simulated &middot; "
        "self-contained (no external assets)</footer></body></html>"
    )
    return "\n".join(parts)


def write_dashboard(path, result: MonitorResult, **kwargs) -> Path:
    """Render and write the dashboard; returns the path."""
    path = Path(path)
    path.write_text(render_dashboard(result, **kwargs))
    return path
