"""Detection scoring: fired alerts reconciled against injected faults.

The chaos harness knows the ground truth — the :class:`~repro.faults.
FaultPlan` it injected — so the monitor's alerts can be scored the way
an alerting pipeline is evaluated in production post-mortems:

* **time-to-detect** — first alert fired at or after a fault interval
  opens, minus the interval's start;
* **time-to-clear** — last clearing alert's clear instant minus the
  interval's end (how long the pager kept ringing after repair);
* **false positives** — alerts fired entirely outside every fault
  interval (plus grace);
* **false negatives** — fault intervals no alert ever covered.

Fault intervals come from the plan's event windows, merged when they
overlap and clamped to the replay span (a repair scheduled past the
last completion never manifests).  Under an empty plan every alert is a
false positive — which is exactly the property the committed chaos
golden pins for the baseline cell.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.monitor.slo import Alert

__all__ = ["FaultInterval", "DetectionReport", "score_detection"]


@dataclass(frozen=True)
class FaultInterval:
    """One merged ground-truth outage window ``[start_s, end_s]``."""

    start_s: float
    end_s: float

    def to_dict(self) -> dict:
        """JSON-friendly dump."""
        return {"start_s": self.start_s, "end_s": self.end_s}


@dataclass(frozen=True)
class DetectionReport:
    """Alert quality against a fault plan's ground truth.

    Attributes
    ----------
    intervals:
        Merged fault intervals (empty under an empty plan).
    n_alerts:
        Total alerts fired.
    time_to_detect_s:
        First detection latency over all intervals (``None`` when
        nothing was detected or there was nothing to detect).
    time_to_clear_s:
        How long after the last interval's end the final covering alert
        cleared (``None`` without a detection, 0 when it cleared before
        repair; an alert still firing at end of run reports ``None``).
    false_positives / false_negatives:
        Alert/interval counts as defined above.
    detected:
        Every interval was covered by at least one alert.
    """

    intervals: tuple[FaultInterval, ...]
    n_alerts: int
    time_to_detect_s: float | None
    time_to_clear_s: float | None
    false_positives: int
    false_negatives: int
    detected: bool

    def to_dict(self) -> dict:
        """JSON-friendly dump."""
        return {
            "intervals": [iv.to_dict() for iv in self.intervals],
            "n_alerts": self.n_alerts,
            "time_to_detect_s": self.time_to_detect_s,
            "time_to_clear_s": self.time_to_clear_s,
            "false_positives": self.false_positives,
            "false_negatives": self.false_negatives,
            "detected": self.detected,
        }


def fault_intervals(plan, span_s: float) -> tuple[FaultInterval, ...]:
    """Merged ground-truth intervals of a plan, clamped to the span."""
    if plan is None or plan.is_empty:
        return ()
    raw: list[tuple[float, float]] = []
    for event in plan.events:
        end = getattr(event, "down_until_s", None)
        if end is None:
            end = event.until_s
        start = min(event.at_s, span_s)
        end = min(end, span_s) if not math.isinf(end) else span_s
        if end > start:
            raw.append((start, end))
    if not raw:
        return ()
    raw.sort()
    merged = [list(raw[0])]
    for start, end in raw[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return tuple(FaultInterval(s, e) for s, e in merged)


def score_detection(
    alerts: tuple[Alert, ...],
    intervals: tuple[FaultInterval, ...],
    *,
    span_s: float,
    grace_s: float = 0.0,
) -> DetectionReport:
    """Score fired alerts against ground-truth fault intervals.

    An alert *covers* an interval when it fires inside
    ``[start, end + grace]`` — the grace period absorbs the detection
    pipeline's inherent lag (window lengths plus tick rounding), so an
    alert that fires just after a short fault window closes still
    counts as a detection of that fault rather than a false positive.

    Parameters
    ----------
    alerts:
        All alerts fired during the replay, across objectives.
    intervals:
        Ground truth from :func:`fault_intervals`.
    span_s:
        Replay span (used for still-firing alerts' clear accounting).
    grace_s:
        Post-interval slack during which a fire still attributes to the
        interval.
    """
    covered: dict[int, list[Alert]] = {i: [] for i in range(len(intervals))}
    false_positives = 0
    for alert in alerts:
        home = None
        for i, iv in enumerate(intervals):
            if iv.start_s <= alert.fired_s <= iv.end_s + grace_s:
                home = i
                break
        if home is None:
            false_positives += 1
        else:
            covered[home].append(alert)

    detections = [i for i in covered if covered[i]]
    false_negatives = len(intervals) - len(detections)
    ttd: float | None = None
    ttc: float | None = None
    if detections:
        first_iv = min(detections)
        first_alert = min(covered[first_iv], key=lambda a: a.fired_s)
        ttd = first_alert.fired_s - intervals[first_iv].start_s
        last_iv = max(detections)
        clears = [a.cleared_s for a in covered[last_iv]]
        if None in clears:
            ttc = None  # still firing at end of run: never cleared
        else:
            ttc = max(0.0, max(clears) - intervals[last_iv].end_s)
    return DetectionReport(
        intervals=intervals,
        n_alerts=len(alerts),
        time_to_detect_s=ttd,
        time_to_clear_s=ttc,
        false_positives=false_positives,
        false_negatives=false_negatives,
        detected=bool(intervals) and false_negatives == 0,
    )
