"""The perf watchdog: fresh benchmark snapshots versus committed BENCH files.

``BENCH_serving.json`` and ``BENCH_risk.json`` record the repo's
benchmark trajectory; until now nothing *consumed* them — a goodput
regression would sail through CI as long as the floor assertions held.
This module makes the committed files load-bearing: :func:`bench_check`
re-measures each benchmark (:func:`fresh_serving_snapshot` /
:func:`fresh_risk_snapshot`, replicating the exact parameters of the
``benchmarks/`` suite) and compares the fresh numbers against the
committed ones under per-metric :class:`Tolerance` policies.

Tolerances carry **directionality**: goodput regressing is a failure,
goodput improving is not (the committed file is a floor, not a pin);
latency works the other way; structural counts are two-sided drift
checks.  Serving metrics are *simulated* time — deterministic in the
seed — so their tolerances are tight; the risk speedup is host
wall-clock and gets a deliberately generous floor (CI machines are
noisy; the watchdog is after the 2x collapse, not the 5% wobble).

``repro-cds bench-check`` is the CLI face: exit 0 when every check
passes, 1 on any regression, which is what lets CI gate on it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ValidationError

__all__ = [
    "Tolerance",
    "CheckResult",
    "SERVING_CHECKS",
    "RISK_CHECKS",
    "GATEWAY_CHECKS",
    "compare_snapshots",
    "fresh_serving_snapshot",
    "fresh_risk_snapshot",
    "fresh_gateway_snapshot",
    "bench_check",
    "render_check_results",
]

#: Directions a metric can regress in.
DIRECTIONS = ("higher-is-better", "lower-is-better", "two-sided")


@dataclass(frozen=True)
class Tolerance:
    """Per-metric regression policy.

    Attributes
    ----------
    rel / abs:
        Allowed relative and absolute slack; a value is in tolerance
        when it is within ``committed * rel + abs`` of the committed
        value on the *bad* side (both slacks apply together).
    direction:
        ``higher-is-better`` fails only when the fresh value is too far
        *below* committed (goodput, hit rates, speedups);
        ``lower-is-better`` fails only when too far *above* (latency,
        shed rates); ``two-sided`` fails on drift either way
        (structural counts).
    """

    rel: float = 0.0
    abs: float = 0.0
    direction: str = "higher-is-better"

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValidationError(
                f"direction must be one of {DIRECTIONS}, got "
                f"{self.direction!r}"
            )
        if self.rel < 0 or self.abs < 0:
            raise ValidationError(
                f"tolerances must be >= 0, got rel={self.rel} abs={self.abs}"
            )

    def slack(self, committed: float) -> float:
        """Allowed deviation around a committed value."""
        return abs(committed) * self.rel + self.abs

    def ok(self, committed: float, fresh: float) -> bool:
        """Whether ``fresh`` is acceptable against ``committed``."""
        slack = self.slack(committed)
        if self.direction == "higher-is-better":
            return fresh >= committed - slack
        if self.direction == "lower-is-better":
            return fresh <= committed + slack
        return abs(fresh - committed) <= slack


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one metric comparison.

    ``committed``/``fresh`` are ``None`` when the metric was missing
    from the respective snapshot (always a failure — a silently dropped
    metric is itself a regression).
    """

    benchmark: str
    metric: str
    committed: float | None
    fresh: float | None
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        """JSON-friendly dump."""
        return {
            "benchmark": self.benchmark,
            "metric": self.metric,
            "committed": self.committed,
            "fresh": self.fresh,
            "ok": self.ok,
            "detail": self.detail,
        }


#: Serving checks: simulated-time metrics, deterministic in the seed,
#: so the slack only absorbs float formatting (the BENCH file rounds).
SERVING_CHECKS: dict[str, Tolerance] = {
    "coalesced.goodput_rps": Tolerance(rel=0.02, direction="higher-is-better"),
    "coalesced.p99_ms": Tolerance(rel=0.02, abs=1e-3, direction="lower-is-better"),
    "coalesced.shed_rate": Tolerance(abs=5e-3, direction="lower-is-better"),
    "coalesced.deadline_hit_rate": Tolerance(
        abs=5e-3, direction="higher-is-better"
    ),
    "batch1.goodput_rps": Tolerance(rel=0.02, direction="higher-is-better"),
    "goodput_ratio": Tolerance(rel=0.05, direction="higher-is-better"),
    "coalesced.n_dispatches": Tolerance(rel=0.05, direction="two-sided"),
    "coalesced.mean_batch_requests": Tolerance(
        rel=0.05, direction="two-sided"
    ),
}

#: Risk checks: host wall-clock, noisy across machines — the floor is
#: deliberately loose (a halved speedup fails, a slow CI runner does
#: not).
RISK_CHECKS: dict[str, Tolerance] = {
    "speedup": Tolerance(rel=0.5, direction="higher-is-better"),
}

#: Gateway checks: like serving, simulated time and deterministic in
#: the seed, so the slack only absorbs the BENCH file's rounding.  The
#: cache economics (hit rate and on/off goodput ratio) are the point of
#: the subsystem — both are floors, not pins.
GATEWAY_CHECKS: dict[str, Tolerance] = {
    "cached.goodput_rps": Tolerance(rel=0.02, direction="higher-is-better"),
    "cached.cache_hit_rate": Tolerance(
        abs=5e-3, direction="higher-is-better"
    ),
    "cached.p99_ms": Tolerance(rel=0.02, abs=1e-3, direction="lower-is-better"),
    "cached.shed_rate": Tolerance(abs=5e-3, direction="lower-is-better"),
    "uncached.goodput_rps": Tolerance(rel=0.02, direction="higher-is-better"),
    "goodput_ratio": Tolerance(rel=0.05, direction="higher-is-better"),
}


def _lookup(snapshot: dict, path: str):
    """Dotted-path lookup (``coalesced.goodput_rps``); None if missing."""
    node = snapshot
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def compare_snapshots(
    benchmark: str,
    committed: dict,
    fresh: dict,
    checks: dict[str, Tolerance],
) -> list[CheckResult]:
    """Judge a fresh snapshot against a committed one, check by check."""
    results: list[CheckResult] = []
    for metric, tol in checks.items():
        committed_v = _lookup(committed, metric)
        fresh_v = _lookup(fresh, metric)
        if committed_v is None or fresh_v is None:
            side = "committed" if committed_v is None else "fresh"
            results.append(
                CheckResult(
                    benchmark=benchmark,
                    metric=metric,
                    committed=committed_v,
                    fresh=fresh_v,
                    ok=False,
                    detail=f"metric missing from the {side} snapshot",
                )
            )
            continue
        committed_v = float(committed_v)
        fresh_v = float(fresh_v)
        ok = tol.ok(committed_v, fresh_v)
        slack = tol.slack(committed_v)
        detail = (
            f"{tol.direction}, slack {slack:g}: fresh {fresh_v:g} vs "
            f"committed {committed_v:g}"
        )
        results.append(
            CheckResult(
                benchmark=benchmark,
                metric=metric,
                committed=committed_v,
                fresh=fresh_v,
                ok=ok,
                detail=detail,
            )
        )
    return results


# ----------------------------------------------------------------------
def fresh_serving_snapshot() -> dict:
    """Re-measure the serving benchmark (same parameters, same rounding).

    Replicates ``benchmarks/test_serving_latency.py`` exactly — the
    12k-request trace at 60k req/s offered, coalesced and batch-1 —
    and returns a dict in the committed ``BENCH_serving.json`` schema
    (minus the volatile ``host_wall_seconds`` block, which no check
    reads).  Simulated time throughout: deterministic in the seed.
    """
    from repro.cluster.batching import BatchQueue
    from repro.risk.engine import make_book
    from repro.serving import (
        QuoteServer,
        make_market_tape,
        make_request_stream,
    )
    from repro.workloads.scenarios import PaperScenario

    n_requests, rate_hz = 12_000, 60_000.0
    n_positions, n_states, n_cards = 32, 256, 4
    sc = PaperScenario(n_rates=256, n_options=n_positions)
    book = make_book("heterogeneous", n_positions, seed=7)
    tape = make_market_tape(
        sc.yield_curve(), sc.hazard_curve(), n_states, seed=7
    )
    requests = make_request_stream(
        n_requests,
        rate_hz=rate_hz,
        n_states=n_states,
        n_positions=n_positions,
        seed=7,
    )

    def run(queue: BatchQueue):
        server = QuoteServer(
            book,
            tape,
            scenario=sc,
            n_cards=n_cards,
            n_engines=5,
            queue=queue,
            queue_depth=2048,
        )
        return server.serve(requests)

    def row(result) -> dict:
        return {
            "goodput_rps": round(result.goodput_rps, 1),
            "throughput_rps": round(result.throughput_rps, 1),
            "shed_rate": round(result.shed_rate, 4),
            "deadline_hit_rate": round(result.deadline_hit_rate, 4),
            "p50_ms": round(result.latency.p50_s * 1e3, 3),
            "p95_ms": round(result.latency.p95_s * 1e3, 3),
            "p99_ms": round(result.latency.p99_s * 1e3, 3),
            "n_dispatches": result.n_dispatches,
            "mean_batch_requests": round(result.mean_batch_requests, 2),
        }

    coalesced = run(BatchQueue(max_batch=256, linger_s=5e-4))
    batch1 = run(BatchQueue(max_batch=1, linger_s=0.0))
    ratio = coalesced.goodput_rps / max(batch1.goodput_rps, 1e-9)
    return {
        "benchmark": "serving_coalescing",
        "coalesced": row(coalesced),
        "batch1": row(batch1),
        "goodput_ratio": round(ratio, 2),
    }


def fresh_risk_snapshot() -> dict:
    """Re-measure the risk benchmark (looped vs batched wall-clock).

    Replicates ``benchmarks/test_scenario_batching.py``: the 1000 x 100
    grid, best-of-N wall-clock on each path.  Host time — noisy, which
    is why :data:`RISK_CHECKS` is loose.
    """
    import time

    from repro.risk import ScenarioRiskEngine, make_book, monte_carlo
    from repro.workloads.scenarios import PaperScenario

    n_scenarios, n_positions = 1000, 100
    sc = PaperScenario(n_options=n_positions)
    book = make_book("heterogeneous", n_positions, seed=7)
    engine = ScenarioRiskEngine(book, scenario=sc, n_cards=1)
    shocks = monte_carlo(
        engine.yield_curve,
        engine.hazard_curve,
        n_scenarios,
        seed=7,
        recovery_vol=0.05,
    )

    def best_of(fn, rounds: int) -> float:
        best = float("inf")
        for _ in range(rounds):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    looped_s = best_of(
        lambda: engine.revalue(shocks, with_timing=False, batch=False), 3
    )
    batched_s = best_of(
        lambda: engine.revalue(shocks, with_timing=False, batch=True), 5
    )
    return {
        "benchmark": "scenario_batching",
        "looped_seconds": round(looped_s, 6),
        "batched_seconds": round(batched_s, 6),
        "speedup": round(looped_s / batched_s, 2),
    }


def fresh_gateway_snapshot() -> dict:
    """Re-measure the gateway benchmark (same parameters, same rounding).

    Replicates ``benchmarks/test_gateway_cache.py`` exactly — the
    16k-request multi-tenant trace at 600k req/s offered through the
    two-server gateway, cache on and cache off — and returns a dict in
    the committed ``BENCH_gateway.json`` schema (minus the volatile
    ``host_wall_seconds`` block, which no check reads).  Simulated time
    throughout: deterministic in the seed.
    """
    from repro.analysis.gateway import generate_gateway_report
    from repro.workloads.scenarios import PaperScenario

    n_requests, rate_hz = 16_000, 600_000.0
    n_positions, n_states = 32, 64
    sc = PaperScenario(n_rates=256, n_options=n_positions)

    def run(cache: bool):
        return generate_gateway_report(
            sc,
            n_requests=n_requests,
            rate_hz=rate_hz,
            n_servers=2,
            n_cards=1,
            cache=cache,
            n_ticks=50,
            tick_rate_hz=2_000.0,
            queue_depth=8192,
            n_states=n_states,
            seed=7,
        ).result

    def row(result) -> dict:
        return {
            "goodput_rps": round(result.goodput_rps, 1),
            "throughput_rps": round(result.throughput_rps, 1),
            "shed_rate": round(result.shed_rate, 4),
            "deadline_hit_rate": round(result.deadline_hit_rate, 4),
            "p50_ms": round(result.latency.p50_s * 1e3, 3),
            "p95_ms": round(result.latency.p95_s * 1e3, 3),
            "p99_ms": round(result.latency.p99_s * 1e3, 3),
            "n_completed": result.n_completed,
            "n_shed": result.n_shed,
        }

    on = run(cache=True)
    off = run(cache=False)
    ratio = on.goodput_rps / max(off.goodput_rps, 1e-9)
    return {
        "benchmark": "gateway_cache",
        "cached": {
            **row(on),
            "cache_hit_rate": round(on.cache_hit_rate, 4),
            "cache_dedup_rate": round(on.cache_dedup_rate, 4),
            "n_cache_invalidations": on.n_cache_invalidations,
        },
        "uncached": row(off),
        "goodput_ratio": round(ratio, 2),
    }


# ----------------------------------------------------------------------
def bench_check(
    *,
    serving_path=None,
    risk_path=None,
    gateway_path=None,
    only: str | None = None,
    fresh: dict | None = None,
) -> tuple[int, list[CheckResult]]:
    """Run the watchdog: fresh measurements versus the committed files.

    Parameters
    ----------
    serving_path / risk_path / gateway_path:
        Committed BENCH file locations (default: repo-root names in the
        current directory).
    only:
        Restrict to one benchmark (``"serving"``, ``"risk"`` or
        ``"gateway"``).
    fresh:
        Pre-measured snapshots ``{"serving": {...}, "risk": {...},
        "gateway": {...}}``; benchmarks present here are not re-run
        (tests and scripted pipelines use this to decouple judgment
        from measurement).

    Returns
    -------
    (exit_code, results)
        ``exit_code`` is 0 iff every check passed.
    """
    if only not in (None, "serving", "risk", "gateway"):
        raise ValidationError(
            f"only must be 'serving', 'risk' or 'gateway', got {only!r}"
        )
    fresh = fresh or {}
    results: list[CheckResult] = []
    if only in (None, "serving"):
        path = Path(serving_path or "BENCH_serving.json")
        if not path.exists():
            raise ValidationError(f"committed BENCH file not found: {path}")
        committed = json.loads(path.read_text())
        measured = fresh.get("serving") or fresh_serving_snapshot()
        results.extend(
            compare_snapshots("serving", committed, measured, SERVING_CHECKS)
        )
    if only in (None, "risk"):
        path = Path(risk_path or "BENCH_risk.json")
        if not path.exists():
            raise ValidationError(f"committed BENCH file not found: {path}")
        committed = json.loads(path.read_text())
        measured = fresh.get("risk") or fresh_risk_snapshot()
        results.extend(
            compare_snapshots("risk", committed, measured, RISK_CHECKS)
        )
    if only in (None, "gateway"):
        path = Path(gateway_path or "BENCH_gateway.json")
        if not path.exists():
            raise ValidationError(f"committed BENCH file not found: {path}")
        committed = json.loads(path.read_text())
        measured = fresh.get("gateway") or fresh_gateway_snapshot()
        results.extend(
            compare_snapshots("gateway", committed, measured, GATEWAY_CHECKS)
        )
    exit_code = 0 if all(r.ok for r in results) else 1
    return exit_code, results


def render_check_results(results: list[CheckResult]) -> str:
    """Text table of the watchdog's verdicts."""
    lines = [
        f"Benchmark watchdog — {len(results)} check(s), "
        f"{sum(1 for r in results if not r.ok)} failing"
    ]
    for r in results:
        mark = "ok  " if r.ok else "FAIL"
        committed = "missing" if r.committed is None else f"{r.committed:g}"
        measured = "missing" if r.fresh is None else f"{r.fresh:g}"
        lines.append(
            f"  [{mark}] {r.benchmark}:{r.metric:<28} "
            f"committed {committed:>12}  fresh {measured:>12}"
        )
    return "\n".join(lines)
