"""The metrics sampler: registry snapshots on a simulated-time cadence.

:class:`MetricsSampler` is the bridge from the live
:class:`~repro.telemetry.MetricsRegistry` (counters incremented inside
event callbacks) to the monitor's :class:`~repro.monitor.series.
TimeSeries` bank.  It rides the :class:`~repro.sim.Simulation` trace
hook rather than scheduling its own events: hooks fire after the clock
advances to an event's instant but *before* the event's callback runs,
so when the clock first reaches or passes a grid boundary ``g``, the
registry still holds exactly the state produced by every event strictly
before ``g`` — the sampler emits the boundary sample from that state
without perturbing the event queue at all.  A monitored replay is
therefore event-for-event identical to an unmonitored one, which is
what keeps the byte-identity pin trivial to honour.

Besides registry metrics the sampler reads **probes** — callables
``t -> float`` sampled at each boundary.  The serving layer registers a
``cards_up`` probe from the run's :class:`~repro.faults.ClusterHealth`
(pure arithmetic over the fault plan), which is the availability signal
the SLO engine uses to detect a card crash from sampled data alone.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping

from repro.errors import ValidationError
from repro.monitor.series import TimeSeries
from repro.telemetry.metrics import Counter, Gauge, MetricsRegistry

__all__ = ["MetricsSampler"]


class MetricsSampler:
    """Snapshot registry metrics and probes on a fixed simulated cadence.

    Parameters
    ----------
    registry:
        The run-local registry to observe (read-only).
    period_s:
        Grid spacing; samples land at ``period_s, 2*period_s, ...``.
    names:
        Metric names to track (bare names: every labelled variant whose
        bare name matches is tracked as its own series).  ``None``
        tracks every counter and gauge present at each boundary.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        period_s: float,
        names: tuple[str, ...] | None = None,
    ) -> None:
        if period_s <= 0:
            raise ValidationError(
                f"sample period must be > 0, got {period_s}"
            )
        self.registry = registry
        self.period_s = float(period_s)
        self.names = names
        self._probes: dict[str, Callable[[float], float]] = {}
        self._series: dict[str, TimeSeries] = {}
        self._next_edge = self.period_s
        self._finished = False

    # ------------------------------------------------------------------
    def add_probe(self, name: str, probe: Callable[[float], float]) -> None:
        """Register a probe sampled at every grid boundary."""
        if name in self._probes:
            raise ValidationError(f"probe {name!r} already registered")
        self._probes[name] = probe

    def attach(self, sim) -> None:
        """Hook the sampler onto a simulation's trace stream."""
        sim.add_trace(self._on_event)

    # ------------------------------------------------------------------
    def _tracked(self) -> Mapping[str, Counter | Gauge]:
        out = {}
        for key, metric in self.registry.items():
            if isinstance(metric, (Counter, Gauge)):
                bare = key.partition("{")[0]
                if self.names is None or bare in self.names:
                    out[key] = metric
        return out

    def _emit(self, edge: float) -> None:
        for key, metric in self._tracked().items():
            series = self._series.get(key)
            if series is None:
                kind = "counter" if isinstance(metric, Counter) else "gauge"
                series = self._series[key] = TimeSeries(key, kind=kind)
            series.append(edge, metric.value)
        for name, probe in self._probes.items():
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = TimeSeries(name, kind="gauge")
            series.append(edge, float(probe(edge)))

    def _on_event(self, event) -> None:
        # The clock has advanced to event.time; the registry holds the
        # state of everything strictly before it.  Emit every boundary
        # the clock just crossed (<= so a callback *at* the boundary is
        # not yet included — the sample is "as of" the boundary).
        if self._finished:
            return
        while self._next_edge <= event.time:
            self._emit(self._next_edge)
            self._next_edge += self.period_s

    def finish(self, end_s: float) -> None:
        """Flush boundaries up to and including the end of the run.

        Called once after the event loop drains; boundaries in
        ``(last_emitted, end_s]`` sample the final registry state.
        Idempotent — a second call is a no-op.
        """
        if self._finished:
            return
        while self._next_edge <= end_s:
            self._emit(self._next_edge)
            self._next_edge += self.period_s
        self._finished = True

    # ------------------------------------------------------------------
    @property
    def series(self) -> dict[str, TimeSeries]:
        """The sampled series bank, keyed by metric key / probe name."""
        return dict(self._series)

    def get(self, name: str) -> TimeSeries | None:
        """One series by key (``None`` when never sampled)."""
        return self._series.get(name)
