"""Time series over the simulated clock: points, windows, aggregates.

A :class:`TimeSeries` is the monitor's unit of storage: a monotone
sequence of ``(t, value)`` points on the *simulated* clock, produced
either by the :class:`~repro.monitor.sampler.MetricsSampler` (registry
snapshots on a fixed cadence) or derived post-run from a serving
result's event streams (per-request latencies, sheds, failures).

Aggregation is windowed, the way a real monitoring stack reads raw
series:

* :meth:`TimeSeries.tumbling` — contiguous fixed-width buckets, one
  aggregate per bucket (the dashboard's sparkline resolution);
* :meth:`TimeSeries.sliding` — one aggregate per step over a trailing
  window (the SLO engine's burn-rate view);
* :meth:`TimeSeries.rate` — the counter-to-rate transform: per-second
  increase between consecutive samples, the Prometheus ``rate()``
  analogue for a monotone counter series.

Aggregators are plain names (``mean``/``min``/``max``/``sum``/
``count``/``last``) plus ``p<q>`` quantiles (``p50``, ``p99``, …),
computed exactly over the window — windows are bounded, so streaming
estimation is unnecessary here (the P² estimators stay in
:mod:`repro.telemetry.metrics`, where streams are unbounded).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Iterable, Sequence

from repro.errors import ValidationError

__all__ = ["Point", "TimeSeries", "quantile"]


def quantile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolation quantile of a non-empty sequence."""
    if not values:
        raise ValidationError("quantile of an empty window")
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(values)
    rank = q * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


def _aggregate(values: Sequence[float], how: str) -> float:
    if how == "count":
        return float(len(values))
    if not values:
        return math.nan
    if how == "mean":
        return sum(values) / len(values)
    if how == "min":
        return min(values)
    if how == "max":
        return max(values)
    if how == "sum":
        return sum(values)
    if how == "last":
        return values[-1]
    if how.startswith("p"):
        try:
            level = float(how[1:]) / 100.0
        except ValueError:
            raise ValidationError(f"unknown aggregator {how!r}") from None
        return quantile(values, level)
    raise ValidationError(f"unknown aggregator {how!r}")


class Point:
    """One sample: ``(t, value)`` on the simulated clock."""

    __slots__ = ("t", "value")

    def __init__(self, t: float, value: float) -> None:
        self.t = float(t)
        self.value = float(value)

    def __iter__(self):
        return iter((self.t, self.value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Point(t={self.t!r}, value={self.value!r})"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Point)
            and self.t == other.t
            and self.value == other.value
        )


class TimeSeries:
    """An append-only series of points with non-decreasing timestamps.

    Parameters
    ----------
    name:
        Series identity (metric key, probe name, or derived-series
        label).
    kind:
        ``"gauge"`` (point-in-time level), ``"counter"`` (monotone
        cumulative total) or ``"event"`` (one point per occurrence,
        value = the observation).  Purely descriptive — it records how
        the series should be read and is carried into exports.
    """

    def __init__(self, name: str, kind: str = "gauge") -> None:
        if kind not in ("gauge", "counter", "event"):
            raise ValidationError(
                f"series kind must be gauge/counter/event, got {kind!r}"
            )
        self.name = name
        self.kind = kind
        self._times: list[float] = []
        self._values: list[float] = []

    # ------------------------------------------------------------------
    def append(self, t: float, value: float) -> None:
        """Append one point; timestamps must not decrease."""
        t = float(t)
        if self._times and t < self._times[-1]:
            raise ValidationError(
                f"series {self.name!r}: time went backwards "
                f"({t} < {self._times[-1]})"
            )
        self._times.append(t)
        self._values.append(float(value))

    def extend(self, points: Iterable[tuple[float, float]]) -> None:
        """Append points in order."""
        for t, value in points:
            self.append(t, value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._times)

    def __bool__(self) -> bool:
        return bool(self._times)

    @property
    def times(self) -> tuple[float, ...]:
        """Timestamps, in order."""
        return tuple(self._times)

    @property
    def values(self) -> tuple[float, ...]:
        """Values, in order."""
        return tuple(self._values)

    @property
    def points(self) -> tuple[Point, ...]:
        """All points, in order."""
        return tuple(
            Point(t, v) for t, v in zip(self._times, self._values)
        )

    @property
    def start_s(self) -> float:
        """First timestamp (nan when empty)."""
        return self._times[0] if self._times else math.nan

    @property
    def end_s(self) -> float:
        """Last timestamp (nan when empty)."""
        return self._times[-1] if self._times else math.nan

    def value_at(self, t: float) -> float:
        """Step-function lookup: the last value at or before ``t``.

        ``nan`` before the first point — a gauge has no level until it
        is first sampled.
        """
        i = bisect_right(self._times, t)
        if i == 0:
            return math.nan
        return self._values[i - 1]

    def between(self, start_s: float, end_s: float) -> list[float]:
        """Values of points with ``start_s < t <= end_s``.

        Windows are half-open on the left so that tumbling buckets tile
        the timeline without double-counting boundary points, and so a
        trailing window anchored at ``t`` includes the sample *at* ``t``.
        """
        lo = bisect_right(self._times, start_s)
        hi = bisect_right(self._times, end_s)
        return self._values[lo:hi]

    # ------------------------------------------------------------------
    def tumbling(
        self, width_s: float, how: str = "mean", *,
        start_s: float = 0.0, end_s: float | None = None,
    ) -> "TimeSeries":
        """Aggregate into contiguous fixed-width buckets.

        Each output point sits at its bucket's *right edge* and holds
        the aggregate of the samples inside ``(edge - width, edge]``.
        Empty buckets aggregate to ``nan`` (``0`` for ``count``), so
        gaps stay visible instead of being interpolated away.
        """
        if width_s <= 0:
            raise ValidationError(f"window width must be > 0, got {width_s}")
        stop = end_s if end_s is not None else self.end_s
        out = TimeSeries(f"{self.name}[{how}/{width_s:g}s]", kind="gauge")
        if not self._times or math.isnan(stop):
            return out
        edge = start_s + width_s
        while edge - width_s < stop:
            out.append(edge, _aggregate(self.between(edge - width_s, edge), how))
            edge += width_s
        return out

    def sliding(
        self, width_s: float, step_s: float, how: str = "mean", *,
        start_s: float = 0.0, end_s: float | None = None,
    ) -> "TimeSeries":
        """Aggregate a trailing window at every step.

        Each output point at ``t`` aggregates the samples in
        ``(t - width, t]``; consecutive output points are ``step_s``
        apart, so windows overlap whenever ``step_s < width_s``.
        """
        if width_s <= 0 or step_s <= 0:
            raise ValidationError(
                f"window width and step must be > 0, got {width_s}/{step_s}"
            )
        stop = end_s if end_s is not None else self.end_s
        out = TimeSeries(
            f"{self.name}[{how}/{width_s:g}s@{step_s:g}s]", kind="gauge"
        )
        if not self._times or math.isnan(stop):
            return out
        t = start_s + step_s
        while t - step_s < stop:
            out.append(t, _aggregate(self.between(t - width_s, t), how))
            t += step_s
        return out

    def rate(self) -> "TimeSeries":
        """Per-second increase between consecutive samples of a counter.

        The output point at ``t_i`` is ``(v_i - v_{i-1}) / (t_i -
        t_{i-1})`` — the Prometheus ``rate()`` analogue at sample
        resolution.  Requires a ``counter`` series; decreases raise
        (simulated counters never reset mid-run).
        """
        if self.kind != "counter":
            raise ValidationError(
                f"rate() needs a counter series, {self.name!r} is "
                f"{self.kind!r}"
            )
        out = TimeSeries(f"rate({self.name})", kind="gauge")
        for i in range(1, len(self._times)):
            dt = self._times[i] - self._times[i - 1]
            dv = self._values[i] - self._values[i - 1]
            if dv < 0:
                raise ValidationError(
                    f"counter series {self.name!r} decreased at "
                    f"t={self._times[i]}"
                )
            if dt > 0:
                out.append(self._times[i], dv / dt)
        return out

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-friendly dump (floats stay floats; order preserved)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "t": list(self._times),
            "v": list(self._values),
        }

    @classmethod
    def from_events(
        cls, name: str, events: Iterable[tuple[float, float]]
    ) -> "TimeSeries":
        """Build an event series from ``(t, value)`` pairs (sorted here)."""
        series = cls(name, kind="event")
        for t, value in sorted(events, key=lambda p: p[0]):
            series.append(t, value)
        return series

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeSeries({self.name!r}, {self.kind}, {len(self)} point(s))"
