"""The SLO engine: objectives, error budgets, burn-rate alerts.

Declarative service-level objectives over a monitored serving replay,
evaluated entirely on the simulated clock.  An :class:`Objective` names
an SLI, a good-event target, and (for latency SLIs) a threshold:

* ``latency`` — a response is *bad* when its latency exceeds
  ``threshold_s`` (optionally restricted to one request kind);
* ``deadline`` — a response is *bad* when it missed its deadline;
* ``shed`` — every arrival is an event; sheds are the bad ones;
* ``availability`` — sampled card availability; a sample carries
  fractional bad mass ``1 - cards_up / n_cards`` (one dead card on a
  four-card cluster burns a quarter of a bad event per sample).

Alerting follows the multi-window, multi-burn-rate recipe from the
Google SRE workbook: the **burn rate** over a trailing window is the
window's bad fraction divided by the objective's error budget
(``1 - target``), and a :class:`BurnRateRule` fires only when *both* a
long and a short trailing window exceed its burn threshold — the long
window supplies significance (one bad sample cannot page), the short
window supplies reset speed (the alert clears quickly once the SLI
recovers).  Rules are evaluated at a fixed tick cadence; consecutive
breaching ticks merge into one :class:`Alert` with a fire and an
optional clear instant.

Everything here is pure arithmetic over event streams — deterministic
in the replay's seed, which is what lets the chaos harness pin
time-to-detect in a committed golden.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.monitor.series import TimeSeries

__all__ = [
    "Objective",
    "BurnRateRule",
    "Alert",
    "SLOStatus",
    "DEFAULT_RULES",
    "evaluate_objective",
]

#: Supported SLI families.
SLI_KINDS = ("latency", "deadline", "shed", "availability")


@dataclass(frozen=True)
class Objective:
    """One declarative SLO.

    Attributes
    ----------
    name:
        Identity in alerts, budgets, dashboards and goldens.
    sli:
        SLI family (one of :data:`SLI_KINDS`).
    target:
        Required good fraction in ``(0, 1)``; the error budget is
        ``1 - target``.
    kind:
        Optional request-kind filter (``"quote"``/``"reval"``/``"var"``)
        for the ``latency`` and ``deadline`` SLIs; ``None`` = all kinds.
    threshold_s:
        Latency threshold (required for the ``latency`` SLI).
    tenant:
        Optional tenant filter for the per-request SLIs (``latency`` /
        ``deadline`` / ``shed``): only events whose request carries the
        tenant label count.  ``None`` (the default, and the only value
        single-tenant serving replays produce) = all traffic, which
        keeps the historical goldens byte-identical.
    """

    name: str
    sli: str
    target: float
    kind: str | None = None
    threshold_s: float | None = None
    tenant: str | None = None

    def __post_init__(self) -> None:
        if self.sli not in SLI_KINDS:
            raise ValidationError(
                f"objective {self.name!r}: unknown SLI {self.sli!r}; "
                f"choose from {SLI_KINDS}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValidationError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.sli == "latency" and self.threshold_s is None:
            raise ValidationError(
                f"objective {self.name!r}: the latency SLI needs "
                "threshold_s"
            )

    @property
    def budget(self) -> float:
        """Allowed bad fraction (``1 - target``)."""
        return 1.0 - self.target

    def describe(self) -> str:
        """Human-readable one-liner for tables and dashboards."""
        scope = self.kind if self.kind is not None else "all"
        if self.tenant is not None:
            scope = f"{self.tenant} {scope}"
        if self.sli == "latency":
            return (
                f"{scope} latency <= {self.threshold_s * 1e3:g} ms "
                f"for {self.target:.1%} of requests"
            )
        if self.sli == "deadline":
            return f"{scope} deadline hit rate >= {self.target:.1%}"
        if self.sli == "shed":
            return f"shed rate < {self.budget:.1%} of arrivals"
        return f"card availability >= {self.target:.1%}"


@dataclass(frozen=True)
class BurnRateRule:
    """One multi-window burn-rate alert rule.

    Fires when the burn rate over *both* trailing windows meets
    ``burn``: ``bad_fraction(window) / budget >= burn``.
    """

    long_s: float
    short_s: float
    burn: float

    def __post_init__(self) -> None:
        if self.long_s <= 0 or self.short_s <= 0:
            raise ValidationError(
                f"rule windows must be > 0, got {self.long_s}/{self.short_s}"
            )
        if self.short_s > self.long_s:
            raise ValidationError(
                f"short window {self.short_s} must not exceed long window "
                f"{self.long_s}"
            )
        if self.burn <= 0:
            raise ValidationError(f"burn threshold must be > 0, got {self.burn}")


#: Default rule pair, scaled to the sub-second serving replays: a fast
#: burn (page-grade) and a slow burn (ticket-grade), the two-tier
#: structure of the SRE workbook compressed onto the simulated
#: timescale.
DEFAULT_RULES: tuple[BurnRateRule, ...] = (
    BurnRateRule(long_s=0.050, short_s=0.015, burn=4.0),
    BurnRateRule(long_s=0.150, short_s=0.050, burn=2.0),
)


@dataclass(frozen=True)
class Alert:
    """One fired alert: a contiguous breach of an objective's rules.

    Attributes
    ----------
    objective:
        The breached objective's name.
    rule:
        Index of the triggering rule in the objective's rule tuple
        (the first rule breaching at the fire tick).
    fired_s / cleared_s:
        Breach start and end instants on the simulated clock;
        ``cleared_s`` is ``None`` when still firing at end of run.
    peak_burn:
        Highest long-window burn rate seen while firing.
    """

    objective: str
    rule: int
    fired_s: float
    cleared_s: float | None
    peak_burn: float

    @property
    def duration_s(self) -> float | None:
        """Breach length (``None`` while still firing)."""
        if self.cleared_s is None:
            return None
        return self.cleared_s - self.fired_s

    def to_dict(self) -> dict:
        """JSON-friendly dump."""
        return {
            "objective": self.objective,
            "rule": self.rule,
            "fired_s": self.fired_s,
            "cleared_s": self.cleared_s,
            "peak_burn": self.peak_burn,
        }


@dataclass(frozen=True)
class SLOStatus:
    """Whole-run budget accounting for one objective.

    Attributes
    ----------
    objective:
        The objective (carried whole for rendering).
    n_events / bad_mass:
        Total events observed and their summed bad mass.
    good_fraction:
        ``1 - bad_mass / n_events`` (1.0 for an empty stream — no
        traffic burns no budget).
    budget_spent:
        Fraction of the error budget consumed over the run
        (``bad_fraction / budget``; may exceed 1).
    met:
        Whether the run as a whole honoured the target.
    alerts:
        Alerts fired for this objective, in fire order.
    """

    objective: Objective
    n_events: int
    bad_mass: float
    good_fraction: float
    budget_spent: float
    met: bool
    alerts: tuple[Alert, ...] = field(default_factory=tuple)

    def to_dict(self) -> dict:
        """JSON-friendly dump.

        The ``tenant`` key appears only for tenant-scoped objectives, so
        single-tenant monitor goldens stay byte-identical.
        """
        out = {
            "name": self.objective.name,
            "sli": self.objective.sli,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "threshold_s": self.objective.threshold_s,
            "description": self.objective.describe(),
            "n_events": self.n_events,
            "bad_mass": self.bad_mass,
            "good_fraction": self.good_fraction,
            "budget_spent": self.budget_spent,
            "met": self.met,
            "alerts": [a.to_dict() for a in self.alerts],
        }
        if self.objective.tenant is not None:
            out["tenant"] = self.objective.tenant
        return out


class _BadMassIndex:
    """Prefix-summed (t, bad) events for O(log n) window burn queries."""

    def __init__(self, events: list[tuple[float, float]]) -> None:
        events.sort(key=lambda e: e[0])
        self.times = [t for t, _ in events]
        self.prefix = [0.0]
        for _, bad in events:
            self.prefix.append(self.prefix[-1] + bad)

    def window(self, start_s: float, end_s: float) -> tuple[int, float]:
        """Event count and bad mass with ``start_s < t <= end_s``."""
        lo = bisect_right(self.times, start_s)
        hi = bisect_right(self.times, end_s)
        return hi - lo, self.prefix[hi] - self.prefix[lo]

    def burn(self, start_s: float, end_s: float, budget: float) -> float:
        """Window bad fraction over the budget (0 for an empty window)."""
        n, bad = self.window(start_s, end_s)
        if n == 0:
            return 0.0
        return (bad / n) / budget


def _objective_events(
    objective: Objective,
    result,
    availability: TimeSeries | None,
    n_cards: int,
) -> list[tuple[float, float]]:
    """The objective's ``(t, bad)`` event stream from a serving result."""

    def owns(record) -> bool:
        if objective.tenant is None:
            return True
        request = getattr(record, "request", record)
        return getattr(request, "tenant", None) == objective.tenant

    events: list[tuple[float, float]] = []
    if objective.sli == "availability":
        if availability is None:
            return []
        for t, up in zip(availability.times, availability.values):
            events.append((t, 1.0 - up / n_cards))
        return events
    if objective.sli == "shed":
        for resp in result.responses:
            if owns(resp):
                events.append((resp.completion_s, 0.0))
        for shed in result.sheds:
            if owns(shed):
                events.append((shed.time_s, 1.0))
        for fail in result.fails:
            if owns(fail):
                events.append((fail.time_s, 1.0))
        return events
    # latency / deadline: one event per response (fails count as bad —
    # a request that never completed certainly blew its objective).
    for resp in result.responses:
        if objective.kind is not None and resp.kind != objective.kind:
            continue
        if not owns(resp):
            continue
        if objective.sli == "latency":
            bad = 1.0 if resp.latency_s > objective.threshold_s else 0.0
        else:
            bad = 0.0 if resp.met_deadline else 1.0
        events.append((resp.completion_s, bad))
    for fail in result.fails:
        if objective.kind is not None and fail.request.kind != objective.kind:
            continue
        if not owns(fail):
            continue
        events.append((fail.time_s, 1.0))
    return events


def evaluate_objective(
    objective: Objective,
    result,
    *,
    rules: tuple[BurnRateRule, ...] = DEFAULT_RULES,
    tick_s: float,
    span_s: float,
    availability: TimeSeries | None = None,
    n_cards: int = 1,
) -> SLOStatus:
    """Evaluate one objective over a replay: budget, burn rates, alerts.

    Parameters
    ----------
    objective / rules:
        The SLO and its alert rules.
    result:
        The replay's :class:`~repro.serving.metrics.ServingResult`
        (raw responses/sheds/fails carry the event streams).
    tick_s:
        Evaluation cadence; alerts fire and clear on tick boundaries.
    span_s:
        End of the evaluation horizon on the simulated clock.
    availability / n_cards:
        The sampled ``cards_up`` series (for the availability SLI) and
        the cluster size it is normalised by.
    """
    if tick_s <= 0:
        raise ValidationError(f"tick_s must be > 0, got {tick_s}")
    if not rules:
        raise ValidationError(f"objective {objective.name!r} needs >= 1 rule")
    index = _BadMassIndex(
        _objective_events(objective, result, availability, n_cards)
    )
    budget = objective.budget

    alerts: list[Alert] = []
    firing: dict | None = None
    t = tick_s
    while t <= span_s + tick_s / 2:
        breach_rule = None
        peak = 0.0
        for i, rule in enumerate(rules):
            burn_long = index.burn(t - rule.long_s, t, budget)
            burn_short = index.burn(t - rule.short_s, t, budget)
            peak = max(peak, burn_long)
            if burn_long >= rule.burn and burn_short >= rule.burn:
                breach_rule = i if breach_rule is None else breach_rule
        if breach_rule is not None:
            if firing is None:
                firing = {"rule": breach_rule, "fired": t, "peak": peak}
            else:
                firing["peak"] = max(firing["peak"], peak)
        elif firing is not None:
            alerts.append(
                Alert(
                    objective=objective.name,
                    rule=firing["rule"],
                    fired_s=firing["fired"],
                    cleared_s=t,
                    peak_burn=firing["peak"],
                )
            )
            firing = None
        t += tick_s
    if firing is not None:
        alerts.append(
            Alert(
                objective=objective.name,
                rule=firing["rule"],
                fired_s=firing["fired"],
                cleared_s=None,
                peak_burn=firing["peak"],
            )
        )

    n_events, bad_mass = index.window(float("-inf"), float("inf"))
    good_fraction = 1.0 - bad_mass / n_events if n_events else 1.0
    bad_fraction = bad_mass / n_events if n_events else 0.0
    return SLOStatus(
        objective=objective,
        n_events=n_events,
        bad_mass=bad_mass,
        good_fraction=good_fraction,
        budget_spent=bad_fraction / budget,
        met=good_fraction >= objective.target,
        alerts=tuple(alerts),
    )
