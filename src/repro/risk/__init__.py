"""Portfolio scenario risk on top of the cluster: the overnight batch.

The paper motivates its FPGA CDS engines with "batch processing of
financial data on HPC machines, for instance overnight" — the workload a
risk desk runs: revalue the whole book under thousands of shocked market
states and aggregate the P&L cloud into VaR/ES, sensitivity ladders and
concentration numbers.  This package turns the PR-1 cluster into exactly
that engine, in three layers:

``scenarios``
    Shocked market states: parallel and tenor-bucketed curve shocks,
    recovery shocks, historical replay, and a seeded correlated Monte
    Carlo generator (Cholesky over tenor buckets, optional regime
    mixture).
``engine`` / ``tensor`` / ``sharding``
    :class:`~repro.risk.engine.ScenarioRiskEngine` — opens one
    :class:`~repro.api.PricingSession` over a ``cluster`` backend
    wrapping any base backend (the book is bound/packed once), lowers
    the scenario set into a dense
    :class:`~repro.risk.tensor.ScenarioTensor` and reprices the whole
    ``(scenarios x options x timepoints)`` grid with one batched kernel
    call per card shard (per-scenario looping stays available behind
    ``batch=False`` and for non-batch backends, bit-identical), shards
    the grid across simulated cluster cards (reusing the cluster
    schedulers, host-link contention and batching queue) and reports the
    run's simulated throughput and power.
``measures``
    VaR/ES at configurable confidences, bucketed CS01/IR01 ladders
    reconciling to the parallel sensitivities, and jump-to-default
    concentration.
"""

from repro.risk.engine import (
    Portfolio,
    Position,
    ScenarioRevaluation,
    ScenarioRiskEngine,
    make_book,
)
from repro.risk.measures import (
    CS01_HAZARD_BUMP,
    JTDConcentration,
    LadderEntry,
    SensitivityLadder,
    TailMeasure,
    cs01_ladder,
    expected_shortfall,
    ir01_ladder,
    jtd_concentration,
    tail_measures,
    value_at_risk,
)
from repro.risk.scenarios import (
    CALM_STRESSED_REGIMES,
    DEFAULT_TENOR_EDGES,
    Regime,
    Scenario,
    ScenarioSet,
    bucketed_shocks,
    historical_replay,
    monte_carlo,
    parallel_shocks,
    recovery_shocks,
    tenor_buckets,
)
from repro.risk.sharding import (
    CardShard,
    ClusterTiming,
    shard_scenarios,
    simulate_grid_run,
)
from repro.risk.tensor import ScenarioTensor

__all__ = [
    "Scenario",
    "ScenarioSet",
    "Regime",
    "CALM_STRESSED_REGIMES",
    "DEFAULT_TENOR_EDGES",
    "tenor_buckets",
    "parallel_shocks",
    "bucketed_shocks",
    "recovery_shocks",
    "historical_replay",
    "monte_carlo",
    "Position",
    "Portfolio",
    "make_book",
    "ScenarioRiskEngine",
    "ScenarioRevaluation",
    "ScenarioTensor",
    "CardShard",
    "ClusterTiming",
    "shard_scenarios",
    "simulate_grid_run",
    "TailMeasure",
    "tail_measures",
    "value_at_risk",
    "expected_shortfall",
    "LadderEntry",
    "SensitivityLadder",
    "cs01_ladder",
    "ir01_ladder",
    "CS01_HAZARD_BUMP",
    "jtd_concentration",
    "JTDConcentration",
]
