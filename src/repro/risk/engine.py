"""The scenario risk engine: cluster-sharded bump-and-reprice.

:class:`ScenarioRiskEngine` reprices a :class:`Portfolio` of CDS positions
under every scenario of a :class:`~repro.risk.scenarios.ScenarioSet`.  All
pricing flows through the unified API (:mod:`repro.api`): the engine opens
one :class:`~repro.api.PricingSession` over a ``cluster`` backend wrapping
the configured base backend (default ``vectorized``), which binds the book
once and shards tensor rows across the simulated cards.  The scenario set
is lowered into a dense :class:`~repro.risk.tensor.ScenarioTensor` and the
whole ``(scenarios x options x timepoints)`` grid is priced by one
negotiated session call per card shard.

Capability negotiation chooses the execution shape: when the session's
backend advertises ``supports_batch_tensor`` (and ``batch`` is on), each
card shard is one batched kernel call; otherwise — ``batch=False``, a
non-batch base backend such as ``cpu``, or hand-built scenario sets that
mix knot grids and cannot be lowered to a tensor — the engine walks the
per-scenario path, one session state call per scenario.  Both paths are
pinned **bit-identical** by the property suite, so ``batch`` and the
backend choice are purely throughput knobs.

The scenario grid is sharded across simulated cluster cards
(:mod:`repro.risk.sharding`); each card revalues its own scenario chunk,
the rows scatter back in scenario order, and the run reports the cluster's
simulated throughput and power next to the risk numbers.  Sharding never
changes the measures — only the timing roll-up.

Positions are signed: a positive notional is a protection *buyer* (the
viewpoint of :mod:`repro.core.risk`), a negative notional a protection
*seller*.  Contract spreads default to par at the base state, making base
P&L zero and every scenario P&L a pure revaluation move.
"""

from __future__ import annotations

import math
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.api import PriceRequest, PricingBackend, open_session, price_via
from repro.cluster.batching import BatchQueue
from repro.cluster.interconnect import HostLinkModel
from repro.cluster.scheduler import ClusterScheduler
from repro.core.curves import HazardCurve, YieldCurve
from repro.core.pricing import BASIS_POINTS
from repro.core.types import CDSOption
from repro.core.vector_pricing import shifted_recovery_row
from repro.errors import ValidationError
from repro.risk.scenarios import Scenario, ScenarioSet
from repro.risk.tensor import ScenarioTensor
from repro.risk.sharding import ClusterTiming, shard_scenarios, simulate_grid_run
from repro.workloads.cluster import make_cluster_portfolio
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "Position",
    "Portfolio",
    "make_book",
    "ScenarioRevaluation",
    "ScenarioRiskEngine",
]


@dataclass(frozen=True)
class Position:
    """One signed CDS position.

    Attributes
    ----------
    option:
        The contract.
    notional:
        Signed size: positive buys protection, negative sells it.
    contract_spread_bps:
        The contracted running spread; ``None`` means "par at the base
        state", resolved when an engine is built.
    """

    option: CDSOption
    notional: float = 1.0
    contract_spread_bps: float | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.notional) or self.notional == 0.0:
            raise ValidationError(
                f"notional must be finite and non-zero, got {self.notional}"
            )
        if self.contract_spread_bps is not None and (
            not math.isfinite(self.contract_spread_bps)
            or self.contract_spread_bps < 0.0
        ):
            raise ValidationError(
                f"contract_spread_bps must be >= 0, got {self.contract_spread_bps}"
            )

    @property
    def is_buyer(self) -> bool:
        """Whether the position is long protection."""
        return self.notional > 0


class Portfolio:
    """An ordered, non-empty book of positions.

    Parameters
    ----------
    positions:
        The book; order is preserved in every per-position output.
    """

    def __init__(self, positions: Sequence[Position]) -> None:
        pos = tuple(positions)
        if not pos:
            raise ValidationError("portfolio must hold at least one position")
        self.positions = pos

    @classmethod
    def from_options(
        cls,
        options: Sequence[CDSOption],
        notionals: Sequence[float] | None = None,
        contract_spreads_bps: Sequence[float | None] | None = None,
    ) -> "Portfolio":
        """Build a book from parallel option/notional/spread sequences."""
        opts = list(options)
        n = len(opts)
        if notionals is None:
            notionals = [1.0] * n
        if contract_spreads_bps is None:
            contract_spreads_bps = [None] * n
        if len(notionals) != n or len(contract_spreads_bps) != n:
            raise ValidationError(
                "options, notionals and contract_spreads_bps must have equal "
                f"lengths, got {n}, {len(notionals)}, {len(contract_spreads_bps)}"
            )
        return cls(
            [
                Position(option=o, notional=float(w), contract_spread_bps=s)
                for o, w, s in zip(opts, notionals, contract_spreads_bps)
            ]
        )

    def __len__(self) -> int:
        return len(self.positions)

    def __iter__(self) -> Iterator[Position]:
        return iter(self.positions)

    @property
    def options(self) -> list[CDSOption]:
        """The contracts, in book order."""
        return [p.option for p in self.positions]

    @property
    def notionals(self) -> np.ndarray:
        """Signed notionals as a float64 array."""
        return np.asarray([p.notional for p in self.positions], dtype=np.float64)

    @property
    def gross_notional(self) -> float:
        """Sum of absolute notionals."""
        return float(np.abs(self.notionals).sum())


def make_book(
    workload: str = "heterogeneous",
    n_positions: int = 64,
    *,
    seed: int = 23,
    buyer_fraction: float = 0.7,
) -> Portfolio:
    """A seeded signed book over a cluster-workload contract mix.

    Contracts come from the :data:`~repro.workloads.cluster.
    CLUSTER_WORKLOADS` registry; notionals are lognormal (a few large
    tickets dominate, as on a real desk) and each position buys protection
    with probability ``buyer_fraction``, otherwise sells it.

    Parameters
    ----------
    workload:
        Contract-mix registry key (``uniform``, ``skewed``,
        ``heterogeneous``).
    n_positions:
        Book size.
    seed:
        Deterministic seed for both the contract mix and the notionals.
    buyer_fraction:
        Probability a position is long protection.
    """
    if not 0.0 <= buyer_fraction <= 1.0:
        raise ValidationError(
            f"buyer_fraction must be in [0, 1], got {buyer_fraction}"
        )
    options = make_cluster_portfolio(workload, n_positions, seed=seed)
    gen = np.random.default_rng(seed + 1)
    sizes = gen.lognormal(mean=0.0, sigma=0.75, size=n_positions)
    signs = np.where(gen.random(n_positions) < buyer_fraction, 1.0, -1.0)
    return Portfolio.from_options(options, notionals=sizes * signs)


@dataclass(frozen=True)
class ScenarioRevaluation:
    """Full revaluation of one portfolio under one scenario set.

    Attributes
    ----------
    scenario_set:
        The scenarios that were repriced.
    base_pv:
        ``(n_positions,)`` unit-notional buyer PVs at the base state.
    pv:
        ``(n_scenarios, n_positions)`` unit-notional buyer PVs per
        scenario.
    pnl:
        ``(n_scenarios,)`` notional-weighted portfolio P&L against base.
    notionals:
        Signed position notionals (book order).
    timing:
        Simulated cluster roll-up for the run, or ``None`` when the run
        skipped the timing simulation.
    """

    scenario_set: ScenarioSet
    base_pv: np.ndarray
    pv: np.ndarray
    pnl: np.ndarray
    notionals: np.ndarray
    timing: ClusterTiming | None

    @property
    def n_scenarios(self) -> int:
        """Scenarios repriced."""
        return self.pv.shape[0]

    @property
    def position_pnl(self) -> np.ndarray:
        """``(n_scenarios, n_positions)`` notional-weighted P&L."""
        return (self.pv - self.base_pv[None, :]) * self.notionals[None, :]

    def worst(self) -> tuple[str, float]:
        """Label and P&L of the worst scenario."""
        i = int(np.argmin(self.pnl))
        return self.scenario_set.scenarios[i].label, float(self.pnl[i])

    def best(self) -> tuple[str, float]:
        """Label and P&L of the best scenario."""
        i = int(np.argmax(self.pnl))
        return self.scenario_set.scenarios[i].label, float(self.pnl[i])


class ScenarioRiskEngine:
    """Portfolio revaluation under scenario sets, sharded across cards.

    Parameters
    ----------
    portfolio:
        The signed book to revalue.
    yield_curve / hazard_curve:
        Base market state (default: the scenario's paper curves).
    scenario:
        Experimental configuration backing the simulated cluster timing
        (default :class:`~repro.workloads.scenarios.PaperScenario`).
    n_cards / n_engines / scheduler / link / queue:
        Cluster shape for the grid sharding; see
        :mod:`repro.risk.sharding`.
    batch:
        Default revaluation mode: ``True`` prices each card's scenario
        shard with the batched tensor kernel, ``False`` loops scenario by
        scenario.  Overridable per :meth:`revalue` call; the numbers are
        bit-identical either way.
    chunk_size:
        Default cap on scenarios per kernel invocation inside a card's
        shard (bounds peak memory); ``None`` lets the kernel pick a
        cache-sized chunk automatically.
    backend:
        Base pricing backend the engine's cluster session wraps: a
        registry name (``vectorized``, ``cpu``, ...) or a
        :class:`~repro.api.PricingBackend` instance.  Must advertise
        ``supports_legs`` (PVs are leg-derived).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle, installed
        on the engine's session (and thus on every timing rig built from
        it).  Default: the process-wide no-op handle.

    Examples
    --------
    >>> from repro.risk import make_book, monte_carlo
    >>> from repro.workloads.scenarios import PaperScenario
    >>> sc = PaperScenario(n_rates=64)
    >>> engine = ScenarioRiskEngine(make_book(n_positions=4), n_cards=2,
    ...                             scenario=sc)
    >>> shocks = monte_carlo(engine.yield_curve, engine.hazard_curve, 8, seed=1)
    >>> engine.revalue(shocks, with_timing=False).pnl.shape
    (8,)
    """

    def __init__(
        self,
        portfolio: Portfolio,
        yield_curve: YieldCurve | None = None,
        hazard_curve: HazardCurve | None = None,
        *,
        scenario: PaperScenario | None = None,
        n_cards: int = 1,
        n_engines: int = 5,
        scheduler: ClusterScheduler | str = "least-loaded",
        link: HostLinkModel | None = None,
        queue: BatchQueue | None = None,
        batch: bool = True,
        chunk_size: int | None = None,
        backend: str | PricingBackend = "vectorized",
        telemetry=None,
    ) -> None:
        if n_cards < 1:
            raise ValidationError(f"n_cards must be >= 1, got {n_cards}")
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.portfolio = portfolio
        self.scenario = scenario if scenario is not None else PaperScenario()
        self.yield_curve = (
            yield_curve if yield_curve is not None else self.scenario.yield_curve()
        )
        self.hazard_curve = (
            hazard_curve if hazard_curve is not None else self.scenario.hazard_curve()
        )
        self.n_cards = n_cards
        self.n_engines = n_engines
        self.scheduler = scheduler
        self.link = link
        self.queue = queue
        self.batch = batch
        self.chunk_size = chunk_size
        self.backend = backend

        # One session over the cluster backend wrapping the configured
        # base: the backend binds (packs) the book once and every
        # revaluation below is a negotiated session call.
        self.session = open_session(
            "cluster",
            portfolio.options,
            base=backend,
            n_cards=n_cards,
            scheduler=scheduler,
            telemetry=telemetry,
        ).require("supports_legs", reason="risk revaluation")
        self._notionals = portfolio.notionals
        self._base_recovery = np.asarray(
            [p.option.recovery_rate for p in portfolio.positions],
            dtype=np.float64,
        )
        self._spreads_bps = self._resolve_contract_spreads()
        self._unit_spread = self._spreads_bps / BASIS_POINTS
        self._base_pv = self._unit_pv(
            self.yield_curve, self.hazard_curve, recovery_shift=0.0
        )

    # ------------------------------------------------------------------
    def _resolve_contract_spreads(self) -> np.ndarray:
        """Contract spreads with ``None`` entries resolved to base par."""
        par = self.session.spreads(self.yield_curve, self.hazard_curve)
        given = np.asarray(
            [
                np.nan if p.contract_spread_bps is None else p.contract_spread_bps
                for p in self.portfolio.positions
            ],
            dtype=np.float64,
        )
        return np.where(np.isnan(given), par, given)

    def _unit_pv(
        self,
        yield_curve: YieldCurve,
        hazard_curve: HazardCurve,
        *,
        recovery_shift: float,
    ) -> np.ndarray:
        """Unit-notional buyer PVs under one market state."""
        recovery = shifted_recovery_row(self._base_recovery, recovery_shift)
        result = self.session.price_state(
            yield_curve, hazard_curve, recovery=recovery, want_legs=True
        )
        return result.legs.buyer_pv(self._unit_spread)[0]

    def quote_rows(
        self,
        tensor: ScenarioTensor,
        indices: np.ndarray | Sequence[int],
        *,
        chunk_size: int | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Par spreads *and* unit PVs for a batch of tensor rows.

        One negotiated call on the session's *base* backend prices
        ``indices``'s market states against the bound book — **one**
        batched kernel call, no card sharding — and returns both quote
        surfaces: ``(spreads_bps, unit_pv)``, each of shape
        ``(len(indices), n_positions)``.  The cluster wrapper is skipped
        deliberately: the serving layer runs its own cost-weighted card
        sharding for timing, and re-sharding the numerics here would
        only split the kernel call (rows are independent, so the numbers
        are bit-identical either way; only the host wall-clock differs).

        Parameters
        ----------
        tensor:
            The lowered market states (e.g. a live market tape).
        indices:
            Tensor rows to price, in output order.
        chunk_size:
            Scenarios per internal kernel chunk (``None`` = automatic).
        """
        idx = np.asarray(indices, dtype=np.intp)
        # The engine always opens a cluster session; an AttributeError
        # here means that invariant broke and should surface loudly.
        result = price_via(
            self.session.backend.base,
            PriceRequest.tensor_rows(
                tensor, idx, want_legs=True, chunk_size=chunk_size
            ),
        )
        return result.spreads_bps, result.legs.buyer_pv(self._unit_spread)

    def _grid_timing(
        self, assignment: list[list[int]], faults=None
    ) -> ClusterTiming:
        """Simulated cluster roll-up for a sharded scenario assignment."""
        from repro.telemetry import NULL_TELEMETRY

        policy = (
            self.scheduler
            if isinstance(self.scheduler, str)
            else self.scheduler.name
        )
        telemetry = self.session.telemetry
        return simulate_grid_run(
            assignment,
            self.portfolio.options,
            self.yield_curve,
            self.hazard_curve,
            scenario=self.scenario,
            policy=policy,
            n_engines=self.n_engines,
            link=self.link,
            queue=self.queue,
            telemetry=None if telemetry is NULL_TELEMETRY else telemetry,
            faults=faults,
        )

    def simulate_timing(self, n_scenarios: int, *, faults=None) -> ClusterTiming:
        """Simulated cluster timing for an ``n_scenarios`` grid, without
        pricing anything.

        Identical to the ``timing`` attached by :meth:`revalue` for a
        scenario set of the same size (the simulation depends only on
        the grid shape and cluster configuration, and the schedulers are
        deterministic).  Lets callers time the host-side numerics
        separately from the discrete-event simulation.

        Parameters
        ----------
        n_scenarios:
            Grid size to shard and time.
        faults:
            Optional :class:`~repro.faults.FaultPlan` injected into the
            timing replay; numerics are unaffected (nothing is priced).
        """
        return self._grid_timing(
            shard_scenarios(n_scenarios, self.n_cards, self.scheduler),
            faults=faults,
        )

    # ------------------------------------------------------------------
    @property
    def base_pv(self) -> np.ndarray:
        """Unit-notional buyer PVs at the base state (book order)."""
        return self._base_pv.copy()

    @property
    def contract_spreads_bps(self) -> np.ndarray:
        """Resolved contract spreads (par where the position left ``None``)."""
        return self._spreads_bps.copy()

    def revalue(
        self,
        scenario_set: ScenarioSet,
        *,
        with_timing: bool = True,
        batch: bool | None = None,
        chunk_size: int | None = None,
    ) -> ScenarioRevaluation:
        """Reprice the book under every scenario of ``scenario_set``.

        The scenario grid is sharded across the engine's cards; each card
        revalues its chunk and the rows scatter back in scenario order, so
        results are identical for any card count or policy.

        With ``batch`` on (the default) and a ``supports_batch_tensor``
        backend behind the session, the scenario set is lowered into a
        :class:`~repro.risk.tensor.ScenarioTensor` and priced with one
        negotiated base-backend call per card shard (via
        :meth:`quote_rows`, sub-chunked by ``chunk_size`` to bound
        memory; each shard's leg surfaces reduce to PVs before the next
        shard prices) — shard boundaries double as chunk boundaries, so
        the per-card timing simulation is untouched.  Scenario sets that
        mix knot grids, ``batch=False`` and non-batch base backends all
        fall back to the per-scenario loop automatically (capability
        negotiation).  Every path produces bit-identical numbers.

        Parameters
        ----------
        scenario_set:
            The scenarios to reprice.
        with_timing:
            When false, skip the simulated cluster timing (used by ladder
            computations, which only need the numerics).
        batch:
            Override the engine's default batch mode for this call.
        chunk_size:
            Override the engine's default kernel chunk size for this call.
        """
        n = len(scenario_set)
        use_batch = self.batch if batch is None else batch
        chunk_size = self.chunk_size if chunk_size is None else chunk_size
        # Capability negotiation: the tensor path needs both a loweable
        # scenario set and a batch-capable backend behind the session.
        tensor = (
            ScenarioTensor.try_pack(scenario_set)
            if use_batch and self.session.capabilities.supports_batch_tensor
            else None
        )
        if tensor is not None:
            # Shard plan from the session's cluster wrapper (same
            # scheduler the timing simulation replays), then one
            # negotiated base-backend call per card shard with the legs
            # reduced to PVs shard by shard — so only one shard's leg
            # surfaces are ever in flight, the pre-redesign memory
            # profile on large grids.
            assignment = self.session.backend.shard_rows(n)
            pv = np.empty((n, len(self.portfolio)), dtype=np.float64)
            for chunk in assignment:
                if not chunk:
                    continue
                idx = np.asarray(chunk, dtype=np.intp)
                pv[idx] = self.quote_rows(
                    tensor, idx, chunk_size=chunk_size
                )[1]
        else:
            assignment = shard_scenarios(n, self.n_cards, self.scheduler)
            pv = np.empty((n, len(self.portfolio)), dtype=np.float64)
            for chunk in assignment:
                for idx in chunk:
                    s: Scenario = scenario_set.scenarios[idx]
                    pv[idx] = self._unit_pv(
                        s.yield_curve,
                        s.hazard_curve,
                        recovery_shift=s.recovery_shift,
                    )
        pnl = (pv - self._base_pv[None, :]) @ self._notionals

        timing = self._grid_timing(assignment) if with_timing else None
        return ScenarioRevaluation(
            scenario_set=scenario_set,
            base_pv=self._base_pv.copy(),
            pv=pv,
            pnl=pnl,
            notionals=self._notionals.copy(),
            timing=timing,
        )
