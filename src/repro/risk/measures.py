"""Risk aggregation: P&L distributions, VaR/ES, ladders, concentration.

Everything here consumes the outputs of :class:`~repro.risk.engine.
ScenarioRiskEngine` and reduces them to the numbers a risk report prints:

* **VaR / ES** over a scenario P&L vector, at configurable confidence
  levels.  Both are order statistics of the empirical loss distribution
  (``method="higher"`` quantile, tail mean at or beyond it), so
  ``VaR <= ES`` holds by construction at every confidence level.
* **CS01 / IR01 ladders**: the portfolio P&L of one bucket bump per tenor
  bucket, next to the parallel bump's P&L.  Because PV is near-linear in
  a one-basis-point bump and the buckets tile the curve, the ladder sums
  to the parallel sensitivity to first order.
* **Jump-to-default concentration**: each position's signed JTD exposure
  and how concentrated the book's gross JTD is (largest share, top-N
  share, Herfindahl index).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.risk import ONE_BP
from repro.errors import ValidationError
from repro.risk.engine import ScenarioRiskEngine
from repro.risk.scenarios import (
    DEFAULT_TENOR_EDGES,
    bucketed_shocks,
    parallel_shocks,
    tenor_buckets,
)

__all__ = [
    "TailMeasure",
    "tail_measures",
    "value_at_risk",
    "expected_shortfall",
    "LadderEntry",
    "SensitivityLadder",
    "cs01_ladder",
    "ir01_ladder",
    "JTDConcentration",
    "jtd_concentration",
]

#: Hazard-intensity bump equivalent to 1 bp of spread at 40% recovery —
#: the same CS01 convention as :class:`repro.core.risk.RiskEngine`.
CS01_HAZARD_BUMP = ONE_BP / 0.6


def _var_index(n_losses: int, confidence: float) -> int:
    """The VaR order-statistic index into an ascending loss vector.

    The index is the one :func:`numpy.quantile`'s ``method="higher"``
    selects — ``ceil(confidence * (n - 1))`` — so the tail is defined by
    *rank*, not by value comparison against the VaR.  Rank membership
    makes ES immune to tie inflation (several scenarios landing on the
    VaR value do not each enter the tail) and exactly translation-
    equivariant alongside VaR.
    """
    if not 0.0 < confidence < 1.0:
        raise ValidationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    if n_losses == 0:
        raise ValidationError("VaR needs at least one scenario")
    return int(np.ceil(confidence * (n_losses - 1)))


def _sorted_losses(pnl: np.ndarray, confidence: float) -> tuple[np.ndarray, int]:
    """Ascending losses plus the VaR order-statistic index."""
    losses = -np.asarray(pnl, dtype=np.float64)
    idx = _var_index(losses.size, confidence)
    return np.sort(losses), idx


def value_at_risk(pnl: np.ndarray, confidence: float = 0.99) -> float:
    """Value-at-Risk of a scenario P&L vector (a positive loss number).

    The empirical ``confidence`` quantile of the loss distribution
    ``L = -pnl``, taken as an order statistic (``method="higher"``) so it
    is always one of the observed losses.

    Parameters
    ----------
    pnl:
        Per-scenario portfolio P&L.
    confidence:
        Confidence level in ``(0, 1)``, e.g. 0.99.
    """
    losses, idx = _sorted_losses(pnl, confidence)
    return float(losses[idx])


def expected_shortfall(pnl: np.ndarray, confidence: float = 0.99) -> float:
    """Expected shortfall: mean loss at or beyond the VaR order statistic.

    Defined on the same empirical distribution as :func:`value_at_risk`
    with a rank-based tail, so ``ES >= VaR`` for every P&L vector and
    confidence level.

    Parameters
    ----------
    pnl:
        Per-scenario portfolio P&L.
    confidence:
        Confidence level in ``(0, 1)``.
    """
    losses, idx = _sorted_losses(pnl, confidence)
    return float(losses[idx:].mean())


@dataclass(frozen=True)
class TailMeasure:
    """VaR and ES at one confidence level."""

    confidence: float
    var: float
    es: float


def tail_measures(
    pnl: np.ndarray, confidences: Sequence[float] = (0.95, 0.99)
) -> tuple[TailMeasure, ...]:
    """VaR/ES pairs at each confidence level, in the order given.

    The loss vector is sorted **once**; every confidence level's VaR and
    ES are then read off that single ordering (an index and a tail-slice
    mean), instead of independent order-statistic passes per level.  The
    numbers are identical to calling :func:`value_at_risk` and
    :func:`expected_shortfall` separately.
    """
    if not confidences:
        raise ValidationError("need at least one confidence level")
    losses = np.sort(-np.asarray(pnl, dtype=np.float64))
    measures = []
    for c in confidences:
        idx = _var_index(losses.size, c)
        measures.append(
            TailMeasure(
                confidence=c,
                var=float(losses[idx]),
                es=float(losses[idx:].mean()),
            )
        )
    return tuple(measures)


@dataclass(frozen=True)
class LadderEntry:
    """One bucket of a sensitivity ladder: P&L for that bucket's bump."""

    bucket_lo: float
    bucket_hi: float
    value: float


@dataclass(frozen=True)
class SensitivityLadder:
    """A bucketed sensitivity ladder next to its parallel reference.

    Attributes
    ----------
    kind:
        ``"cs01"`` or ``"ir01"``.
    bump:
        The per-bucket (and parallel) bump size, decimal.
    entries:
        One entry per tenor bucket, in tenor order.
    parallel:
        Portfolio P&L of the whole-curve bump with the same size — the
        number the bucketed entries sum to, to first order.
    """

    kind: str
    bump: float
    entries: tuple[LadderEntry, ...]
    parallel: float

    @property
    def bucket_sum(self) -> float:
        """Sum of the bucketed sensitivities."""
        return float(sum(e.value for e in self.entries))

    def render(self) -> str:
        """Small text table: one line per bucket plus the roll-up."""
        lines = [f"{self.kind.upper()} ladder (bump {self.bump / ONE_BP:g} bp):"]
        for e in self.entries:
            lines.append(
                f"  ({e.bucket_lo:>4g}, {e.bucket_hi:>4g}] yr  {e.value:>+12.6f}"
            )
        lines.append(f"  bucket sum {self.bucket_sum:>+12.6f}")
        lines.append(f"  parallel   {self.parallel:>+12.6f}")
        return "\n".join(lines)


def _ladder(
    engine: ScenarioRiskEngine,
    *,
    kind: str,
    curve: str,
    bump: float,
    edges: Sequence[float],
    batch: bool | None = None,
    chunk_size: int | None = None,
) -> SensitivityLadder:
    bucket_set = bucketed_shocks(
        engine.yield_curve, engine.hazard_curve, curve=curve, bump=bump, edges=edges
    )
    bucket_pnl = engine.revalue(
        bucket_set, with_timing=False, batch=batch, chunk_size=chunk_size
    ).pnl
    if curve == "hazard":
        parallel_set = parallel_shocks(
            engine.yield_curve,
            engine.hazard_curve,
            hazard_bumps_bps=(bump / ONE_BP,),
            rate_bumps_bps=(),
        )
    else:
        parallel_set = parallel_shocks(
            engine.yield_curve,
            engine.hazard_curve,
            hazard_bumps_bps=(),
            rate_bumps_bps=(bump / ONE_BP,),
        )
    parallel_pnl = engine.revalue(
        parallel_set, with_timing=False, batch=batch, chunk_size=chunk_size
    ).pnl
    entries = tuple(
        LadderEntry(bucket_lo=lo, bucket_hi=hi, value=float(v))
        for (lo, hi), v in zip(tenor_buckets(edges), bucket_pnl)
    )
    return SensitivityLadder(
        kind=kind,
        bump=bump,
        entries=entries,
        parallel=float(parallel_pnl[0]),
    )


def cs01_ladder(
    engine: ScenarioRiskEngine,
    *,
    bump: float = CS01_HAZARD_BUMP,
    edges: Sequence[float] = DEFAULT_TENOR_EDGES,
    batch: bool | None = None,
    chunk_size: int | None = None,
) -> SensitivityLadder:
    """Bucketed credit-spread sensitivity ladder for the engine's book.

    Parameters
    ----------
    engine:
        The revaluation engine (book + base state).
    bump:
        Hazard-intensity bump per bucket (default: the 1 bp spread
        equivalent at 40% recovery, matching ``RiskEngine``).
    edges:
        Tenor-bucket edges; must tile the curve for the bucket sum to
        reconcile with the parallel number.
    batch / chunk_size:
        Revaluation-mode overrides forwarded to
        :meth:`~repro.risk.engine.ScenarioRiskEngine.revalue` (``None``
        keeps the engine defaults); the ladder is bit-identical either
        way.
    """
    return _ladder(
        engine,
        kind="cs01",
        curve="hazard",
        bump=bump,
        edges=edges,
        batch=batch,
        chunk_size=chunk_size,
    )


def ir01_ladder(
    engine: ScenarioRiskEngine,
    *,
    bump: float = ONE_BP,
    edges: Sequence[float] = DEFAULT_TENOR_EDGES,
    batch: bool | None = None,
    chunk_size: int | None = None,
) -> SensitivityLadder:
    """Bucketed interest-rate sensitivity ladder for the engine's book."""
    return _ladder(
        engine,
        kind="ir01",
        curve="yield",
        bump=bump,
        edges=edges,
        batch=batch,
        chunk_size=chunk_size,
    )


@dataclass(frozen=True)
class JTDConcentration:
    """How concentrated the book's jump-to-default exposure is.

    Attributes
    ----------
    net / gross:
        Signed sum and absolute sum of per-position JTD exposures.
    largest / largest_index:
        The single biggest absolute exposure and its book position.
    top_share:
        Fraction of gross JTD carried by the ``top_n`` largest positions.
    top_n:
        How many positions ``top_share`` covers.
    herfindahl:
        Sum of squared gross-JTD shares: 1/n for a uniform book, 1.0 for
        a single-name book.
    """

    net: float
    gross: float
    largest: float
    largest_index: int
    top_share: float
    top_n: int
    herfindahl: float


def jtd_concentration(
    engine: ScenarioRiskEngine, *, top_n: int = 5
) -> JTDConcentration:
    """Jump-to-default concentration of the engine's book.

    Each position's JTD is the P&L of an immediate default:
    ``notional * (LGD - pv)`` — a gain for protection buyers, a loss for
    sellers.  Concentration statistics run over absolute exposures.

    Parameters
    ----------
    engine:
        The revaluation engine (book + base state).
    top_n:
        Positions counted by the ``top_share`` statistic.
    """
    if top_n < 1:
        raise ValidationError(f"top_n must be >= 1, got {top_n}")
    lgd = np.asarray(
        [p.option.loss_given_default for p in engine.portfolio.positions]
    )
    jtd = engine.portfolio.notionals * (lgd - engine.base_pv)
    gross = np.abs(jtd)
    total = float(gross.sum())
    if total <= 0.0:
        raise ValidationError("book has zero gross jump-to-default exposure")
    shares = gross / total
    order = np.argsort(gross)[::-1]
    k = min(top_n, len(jtd))
    return JTDConcentration(
        net=float(jtd.sum()),
        gross=total,
        largest=float(gross[order[0]]),
        largest_index=int(order[0]),
        top_share=float(shares[order[:k]].sum()),
        top_n=k,
        herfindahl=float((shares**2).sum()),
    )
