"""Scenario generation: shocked market states for bump-and-reprice risk.

A *scenario* is a complete market state — one yield curve, one hazard
curve, optionally a recovery-rate shift — under which the whole portfolio
is repriced.  Four generator families produce :class:`ScenarioSet` objects:

``parallel_shocks``
    Whole-curve level bumps (the stress-ladder workhorse, and the parallel
    CS01/IR01 reference).
``bucketed_shocks``
    Tenor-by-tenor bumps over a bucket tiling of the curve — the scenarios
    behind bucketed CS01/IR01 ladders.  Summed over a tiling, their PV
    impact recovers the parallel bump's to first order.
``recovery_shocks`` / ``historical_replay``
    Recovery-rate shifts, and day-over-day curve moves replayed from a
    :class:`~repro.workloads.history.CurveHistory` onto today's curves.
``monte_carlo``
    A seeded correlated Monte Carlo generator: Gaussian factors per tenor
    bucket, correlated within and across the two curves via a Cholesky
    factor of a Kronecker-structured correlation matrix, with an optional
    mixture of market regimes (calm/stressed volatility scaling and credit
    drift) in the spirit of mixture-model scenario clustering.

All generators are deterministic in their seed, so risk reports reproduce
from the command line.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.curves import HazardCurve, YieldCurve
from repro.core.risk import ONE_BP, bucket_bump, parallel_bump
from repro.errors import ValidationError
from repro.risk.tensor import ScenarioTensor
from repro.workloads.history import CurveHistory

__all__ = [
    "Scenario",
    "ScenarioSet",
    "Regime",
    "CALM_STRESSED_REGIMES",
    "DEFAULT_TENOR_EDGES",
    "tenor_buckets",
    "parallel_shocks",
    "bucketed_shocks",
    "recovery_shocks",
    "historical_replay",
    "monte_carlo",
]

#: Default tenor-bucket edges (years).  The final edge is far beyond any
#: curve span so the buckets always tile the whole curve — a requirement
#: for bucketed ladders to sum back to the parallel sensitivity.
DEFAULT_TENOR_EDGES: tuple[float, ...] = (0.0, 1.0, 3.0, 5.0, 7.0, 30.0)

#: Hazard intensities may be shocked down but never below zero.
HAZARD_FLOOR = 0.0


@dataclass(frozen=True)
class Scenario:
    """One shocked market state.

    Attributes
    ----------
    label:
        Human-readable description, carried into risk-report extremes.
    yield_curve / hazard_curve:
        The full market state to reprice under.
    recovery_shift:
        Additive shift applied to every contract's recovery rate
        (post-shift recoveries are clamped to ``[0, 0.999]``).
    """

    label: str
    yield_curve: YieldCurve
    hazard_curve: HazardCurve
    recovery_shift: float = 0.0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValidationError("scenario label must be non-empty")
        if not -1.0 < self.recovery_shift < 1.0:
            raise ValidationError(
                f"recovery_shift must be in (-1, 1), got {self.recovery_shift}"
            )


@dataclass(frozen=True)
class ScenarioSet:
    """A named collection of scenarios sharing one base market state.

    Attributes
    ----------
    name:
        Generator family name (``parallel``, ``bucketed:cs01``, ``mc`` ...).
    base_yield / base_hazard:
        The unshocked state every scenario was derived from; revaluation
        quotes P&L against this state.
    scenarios:
        The shocked states, in generation order.
    tensor:
        Optional dense :class:`~repro.risk.tensor.ScenarioTensor` of the
        same scenarios, attached by generators that already hold the
        shock matrices (so batched revaluation skips the per-curve
        lowering pass).  ``None`` means "lower lazily on demand".
    """

    name: str
    base_yield: YieldCurve
    base_hazard: HazardCurve
    scenarios: tuple[Scenario, ...]
    tensor: ScenarioTensor | None = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("scenario set name must be non-empty")
        if not self.scenarios:
            raise ValidationError("a scenario set must hold at least one scenario")
        if self.tensor is not None:
            # A tensor that records its source tuple must have been
            # lowered from *these* scenarios; a set rebuilt with other
            # scenarios (dataclasses.replace) drops the stale tensor so
            # batched revaluation re-lowers instead of pricing old rows.
            # The drop runs first: generator-attached tensors travel
            # invisibly, so a subset-replace must not crash on them.
            src = self.tensor.source_scenarios
            if src is not None and src is not self.scenarios:
                object.__setattr__(self, "tensor", None)
            elif self.tensor.n_scenarios != len(self.scenarios):
                raise ValidationError(
                    f"attached tensor holds {self.tensor.n_scenarios} "
                    f"scenarios, set holds {len(self.scenarios)}"
                )

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, i: int) -> Scenario:
        return self.scenarios[i]

    @property
    def labels(self) -> tuple[str, ...]:
        """Every scenario's label, in order."""
        return tuple(s.label for s in self.scenarios)


def tenor_buckets(
    edges: Sequence[float] = DEFAULT_TENOR_EDGES,
) -> list[tuple[float, float]]:
    """Half-open buckets ``(lo, hi]`` from a strictly increasing edge list."""
    e = list(edges)
    if len(e) < 2:
        raise ValidationError("need at least 2 bucket edges")
    if any(b <= a for a, b in zip(e, e[1:])):
        raise ValidationError(f"bucket edges must be strictly increasing: {e}")
    return list(zip(e[:-1], e[1:]))


def _bp_label(bps: float) -> str:
    return f"{bps:+g}bp"


def parallel_shocks(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    hazard_bumps_bps: Sequence[float] = (-50.0, -10.0, 10.0, 50.0, 200.0),
    rate_bumps_bps: Sequence[float] = (-100.0, -25.0, 25.0, 100.0),
) -> ScenarioSet:
    """Whole-curve level shocks, one scenario per bump.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Base market state.
    hazard_bumps_bps:
        Parallel hazard-intensity bumps in basis points (floored so no
        intensity goes negative).
    rate_bumps_bps:
        Parallel zero-rate bumps in basis points.
    """
    scenarios = [
        Scenario(
            label=f"hazard{_bp_label(b)}",
            yield_curve=yield_curve,
            hazard_curve=parallel_bump(
                hazard_curve, b * ONE_BP, floor=HAZARD_FLOOR
            ),
        )
        for b in hazard_bumps_bps
    ] + [
        Scenario(
            label=f"rates{_bp_label(b)}",
            yield_curve=parallel_bump(yield_curve, b * ONE_BP),
            hazard_curve=hazard_curve,
        )
        for b in rate_bumps_bps
    ]
    if not scenarios:
        raise ValidationError("parallel_shocks needs at least one bump")
    return ScenarioSet(
        name="parallel",
        base_yield=yield_curve,
        base_hazard=hazard_curve,
        scenarios=tuple(scenarios),
    )


def bucketed_shocks(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    curve: str = "hazard",
    bump: float = ONE_BP,
    edges: Sequence[float] = DEFAULT_TENOR_EDGES,
) -> ScenarioSet:
    """Tenor-by-tenor bumps: one scenario per bucket of the chosen curve.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Base market state.
    curve:
        ``"hazard"`` or ``"yield"`` — which curve the buckets bump.
    bump:
        Additive shift inside each bucket (decimal, not bps).
    edges:
        Bucket edges; the buckets tile ``(edges[0], edges[-1]]``.
    """
    if curve not in ("hazard", "yield"):
        raise ValidationError(f"curve must be 'hazard' or 'yield', got {curve!r}")
    scenarios = []
    for lo, hi in tenor_buckets(edges):
        label = f"{curve}[{lo:g},{hi:g}]{_bp_label(bump / ONE_BP)}"
        if curve == "hazard":
            scenarios.append(
                Scenario(
                    label=label,
                    yield_curve=yield_curve,
                    hazard_curve=bucket_bump(
                        hazard_curve, lo, hi, bump, floor=HAZARD_FLOOR
                    ),
                )
            )
        else:
            scenarios.append(
                Scenario(
                    label=label,
                    yield_curve=bucket_bump(yield_curve, lo, hi, bump),
                    hazard_curve=hazard_curve,
                )
            )
    return ScenarioSet(
        name=f"bucketed:{curve}",
        base_yield=yield_curve,
        base_hazard=hazard_curve,
        scenarios=tuple(scenarios),
    )


def recovery_shocks(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    shifts: Sequence[float] = (-0.10, -0.05, 0.05, 0.10),
) -> ScenarioSet:
    """Recovery-rate shifts applied to every contract, curves unchanged."""
    if not shifts:
        raise ValidationError("recovery_shocks needs at least one shift")
    return ScenarioSet(
        name="recovery",
        base_yield=yield_curve,
        base_hazard=hazard_curve,
        scenarios=tuple(
            Scenario(
                label=f"recovery{s:+.0%}",
                yield_curve=yield_curve,
                hazard_curve=hazard_curve,
                recovery_shift=s,
            )
            for s in shifts
        ),
    )


def historical_replay(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    history: CurveHistory,
) -> ScenarioSet:
    """Replay historical day-over-day curve moves onto today's curves.

    For each consecutive pair of days the move ``curve[d+1] - curve[d]`` is
    evaluated *on the base curves' knot grid* (so histories on any grid
    replay cleanly) and added to the base values — the standard historical-
    simulation construction.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Today's market state.
    history:
        The observed (here: synthetic) curve history to replay.
    """
    yc_times = np.asarray(yield_curve.times)
    hc_times = np.asarray(hazard_curve.times)
    n = history.n_moves
    yc_rows = np.empty((n, yc_times.size), dtype=np.float64)
    hz_rows = np.empty((n, hc_times.size), dtype=np.float64)
    scenarios = []
    for d in range(n):
        dy = history.yields[d + 1].interpolate(yc_times) - history.yields[
            d
        ].interpolate(yc_times)
        dh = history.hazards[d + 1].interpolate(hc_times) - history.hazards[
            d
        ].interpolate(hc_times)
        yc_rows[d] = np.asarray(yield_curve.values) + dy
        hz_rows[d] = np.maximum(
            np.asarray(hazard_curve.values) + dh, HAZARD_FLOOR
        )
        scenarios.append(
            Scenario(
                label=f"replay-day{d + 1}",
                yield_curve=YieldCurve(yc_times, yc_rows[d]),
                hazard_curve=HazardCurve(hc_times, hz_rows[d]),
            )
        )
    scens = tuple(scenarios)
    shifts = np.zeros(n, dtype=np.float64)
    for arr in (yc_rows, hz_rows, shifts):
        arr.flags.writeable = False  # generator-owned: freeze copy-free
    return ScenarioSet(
        name="historical",
        base_yield=yield_curve,
        base_hazard=hazard_curve,
        scenarios=scens,
        tensor=ScenarioTensor(
            yield_times=yc_times,
            yield_values=yc_rows,
            hazard_times=hc_times,
            hazard_values=hz_rows,
            recovery_shifts=shifts,
            source_scenarios=scens,
        ),
    )


@dataclass(frozen=True)
class Regime:
    """One component of a market-regime mixture.

    Attributes
    ----------
    name:
        Regime label, appended to each scenario drawn under it.
    weight:
        Mixture probability (normalised across the regime tuple).
    hazard_scale / rate_scale:
        Volatility multipliers applied to the bucket shocks.
    hazard_drift_bps:
        Deterministic hazard drift (bps) — stressed regimes widen credit.
    """

    name: str
    weight: float
    hazard_scale: float = 1.0
    rate_scale: float = 1.0
    hazard_drift_bps: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("regime name must be non-empty")
        if self.weight <= 0:
            raise ValidationError(f"regime weight must be > 0, got {self.weight}")
        if self.hazard_scale <= 0 or self.rate_scale <= 0:
            raise ValidationError("regime volatility scales must be > 0")


#: A standard two-regime mixture: mostly calm, occasionally stressed with
#: triple credit volatility and a widening drift.
CALM_STRESSED_REGIMES: tuple[Regime, ...] = (
    Regime(name="calm", weight=0.85),
    Regime(
        name="stressed",
        weight=0.15,
        hazard_scale=3.0,
        rate_scale=1.5,
        hazard_drift_bps=15.0,
    ),
)


def _bucket_index(times: np.ndarray, edges: Sequence[float]) -> np.ndarray:
    """Bucket index of each knot time under the ``(lo, hi]`` tiling."""
    upper = np.asarray(edges[1:], dtype=np.float64)
    idx = np.searchsorted(upper, times, side="left")
    return np.minimum(idx, len(upper) - 1)


def monte_carlo(
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    n_scenarios: int,
    *,
    seed: int = 7,
    edges: Sequence[float] = DEFAULT_TENOR_EDGES,
    hazard_vol_bps: float = 25.0,
    rate_vol_bps: float = 10.0,
    tenor_correlation: float = 0.9,
    credit_rates_correlation: float = -0.25,
    recovery_vol: float = 0.0,
    regimes: Sequence[Regime] | None = None,
) -> ScenarioSet:
    """Seeded correlated Monte Carlo scenario generation.

    One Gaussian factor per tenor bucket and curve (so ``2 * n_buckets``
    factors in total).  Within each curve, bucket factors follow the
    Kac-Murdock-Szego structure ``corr(i, j) = tenor_correlation^|i-j|``;
    across the two curves every pair is scaled by
    ``credit_rates_correlation``.  The joint matrix is the Kronecker
    product of the 2x2 cross-curve block with the KMS matrix — positive
    definite by construction — and is factored once by Cholesky.

    With ``regimes`` given, each scenario first draws a regime from the
    mixture (volatility scaling plus credit drift), which produces the
    fat-tailed, multi-modal scenario clouds that mixture-model clustering
    papers summarise by central scenarios.

    Parameters
    ----------
    yield_curve / hazard_curve:
        Base market state.
    n_scenarios:
        Scenarios to draw.
    seed:
        Deterministic generator seed.
    edges:
        Tenor-bucket edges shared by both curves.
    hazard_vol_bps / rate_vol_bps:
        Per-bucket shock standard deviations in basis points.
    tenor_correlation:
        Neighbouring-bucket correlation decay base, in ``[0, 1)``.
    credit_rates_correlation:
        Cross-curve correlation, in ``(-1, 1)``.
    recovery_vol:
        Standard deviation of an independent recovery-rate shift per
        scenario (0 disables recovery shocks).
    regimes:
        Optional regime mixture, e.g. :data:`CALM_STRESSED_REGIMES`.
    """
    if n_scenarios < 1:
        raise ValidationError(f"n_scenarios must be >= 1, got {n_scenarios}")
    if not 0.0 <= tenor_correlation < 1.0:
        raise ValidationError(
            f"tenor_correlation must be in [0, 1), got {tenor_correlation}"
        )
    if not -1.0 < credit_rates_correlation < 1.0:
        raise ValidationError(
            "credit_rates_correlation must be in (-1, 1), got "
            f"{credit_rates_correlation}"
        )
    if hazard_vol_bps < 0 or rate_vol_bps < 0 or recovery_vol < 0:
        raise ValidationError("volatilities must be >= 0")
    buckets = tenor_buckets(edges)
    n_b = len(buckets)

    # Joint correlation: cross-curve 2x2 block (x) KMS tenor block.
    kms = tenor_correlation ** np.abs(
        np.subtract.outer(np.arange(n_b), np.arange(n_b))
    )
    cross = np.array(
        [[1.0, credit_rates_correlation], [credit_rates_correlation, 1.0]]
    )
    chol = np.linalg.cholesky(np.kron(cross, kms))

    gen = np.random.default_rng(seed)
    if regimes:
        weights = np.asarray([r.weight for r in regimes], dtype=np.float64)
        weights = weights / weights.sum()
        picks = gen.choice(len(regimes), size=n_scenarios, p=weights)
    else:
        picks = None

    hz_times = np.asarray(hazard_curve.times)
    yc_times = np.asarray(yield_curve.times)
    hz_bucket = _bucket_index(hz_times, edges)
    yc_bucket = _bucket_index(yc_times, edges)
    hz_values = np.asarray(hazard_curve.values)
    yc_values = np.asarray(yield_curve.values)

    yc_rows = np.empty((n_scenarios, yc_times.size), dtype=np.float64)
    hz_rows = np.empty((n_scenarios, hz_times.size), dtype=np.float64)
    shifts = np.zeros(n_scenarios, dtype=np.float64)
    scenarios = []
    for s in range(n_scenarios):
        z = chol @ gen.standard_normal(2 * n_b)
        hz_shocks = z[:n_b] * hazard_vol_bps * ONE_BP
        yc_shocks = z[n_b:] * rate_vol_bps * ONE_BP
        label = f"mc-{s}"
        if picks is not None:
            regime = regimes[picks[s]]
            hz_shocks = hz_shocks * regime.hazard_scale + (
                regime.hazard_drift_bps * ONE_BP
            )
            yc_shocks = yc_shocks * regime.rate_scale
            label = f"mc-{s}:{regime.name}"
        recovery_shift = 0.0
        if recovery_vol > 0:
            recovery_shift = float(
                np.clip(gen.normal(0.0, recovery_vol), -0.5, 0.5)
            )
        yc_rows[s] = yc_values + yc_shocks[yc_bucket]
        hz_rows[s] = np.maximum(hz_values + hz_shocks[hz_bucket], HAZARD_FLOOR)
        shifts[s] = recovery_shift
        scenarios.append(
            Scenario(
                label=label,
                yield_curve=YieldCurve(yc_times, yc_rows[s]),
                hazard_curve=HazardCurve(hz_times, hz_rows[s]),
                recovery_shift=recovery_shift,
            )
        )
    scens = tuple(scenarios)
    for arr in (yc_rows, hz_rows, shifts):
        arr.flags.writeable = False  # generator-owned: freeze copy-free
    return ScenarioSet(
        name="mc" if not regimes else "mc-mixture",
        base_yield=yield_curve,
        base_hazard=hazard_curve,
        scenarios=scens,
        tensor=ScenarioTensor(
            yield_times=np.asarray(yc_times, dtype=np.float64),
            yield_values=yc_rows,
            hazard_times=np.asarray(hz_times, dtype=np.float64),
            hazard_values=hz_rows,
            recovery_shifts=shifts,
            source_scenarios=scens,
        ),
    )
