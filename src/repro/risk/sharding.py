"""Sharding the scenario x portfolio grid across cluster cards.

A scenario-revaluation run is "embarrassingly parallel the other way
round" from the PR-1 cluster: instead of one market state and a portfolio
sharded across cards, the *portfolio* is broadcast to every card and the
*scenarios* are sharded.  Each scenario costs one full portfolio batch on
its card (bump-and-reprice re-sends the shocked rate tables and reprices
every contract), so the per-scenario cost is uniform and known — which is
exactly the regime where the PR-1 schedulers, host-link contention model
and batching queue compose cleanly:

* the scenario indices are partitioned by any
  :class:`~repro.cluster.scheduler.ClusterScheduler` (uniform costs make
  all policies near-equivalent, but the interface stays pluggable);
* one representative card batch is simulated with the card's own
  discrete-event :class:`~repro.cluster.node.ClusterNode` to get the
  per-scenario kernel and PCIe seconds — identical scenarios never need
  re-simulation;
* each card's scenario chunk is coalesced into host dispatches by a
  :class:`~repro.cluster.batching.BatchQueue`, and PCIe time is stretched
  by the :class:`~repro.cluster.interconnect.HostLinkModel` contention
  factor, exactly as in a portfolio-sharded batch.

Timing replay runs on the unified :mod:`repro.sim` core — each card is a
:class:`~repro.sim.Resource` and its scenario chunk one busy-window
reservation — pinned bit-identical to the pre-``repro.sim`` roll-up by
the timing-conformance suite.

Numerical results never depend on the sharding — only the simulated
timing and power roll-up (:class:`ClusterTiming`) do.  Under batched
revaluation the shard boundaries double as kernel chunk boundaries: each
card's scenario indices become one :func:`~repro.core.vector_pricing.
price_packed_many` call (optionally sub-chunked to bound memory), so this
module's timing simulation is unchanged by the batching layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.batching import BatchQueue
from repro.workloads.cluster import Arrival
from repro.cluster.interconnect import HostLinkModel
from repro.cluster.node import ClusterNode
from repro.cluster.scheduler import (
    ClusterScheduler,
    make_scheduler,
    validate_partition,
)
from repro.core.curves import HazardCurve, YieldCurve
from repro.core.types import CDSOption
from repro.errors import ValidationError
from repro.sim import Resource, Simulation
from repro.workloads.scenarios import PaperScenario

__all__ = [
    "CardShard",
    "ClusterTiming",
    "FaultedClusterTiming",
    "shard_scenarios",
    "simulate_grid_run",
]


@dataclass(frozen=True)
class CardShard:
    """One card's share of the scenario grid.

    Attributes
    ----------
    card_id:
        Which card.
    n_scenarios:
        Scenarios revalued on this card (0 for idle cards).
    dispatches:
        Host dispatches that fed this card (batch-queue chunks).
    seconds:
        Card busy time across all its scenario batches.
    utilisation:
        Busy fraction of the run makespan.
    watts:
        Card power during the run (idle cards draw shell power).
    """

    card_id: int
    n_scenarios: int
    dispatches: int
    seconds: float
    utilisation: float
    watts: float

    @property
    def idle(self) -> bool:
        """Whether this card received no scenarios."""
        return self.n_scenarios == 0


@dataclass(frozen=True)
class ClusterTiming:
    """Simulated timing and power roll-up for one scenario-grid run.

    Attributes
    ----------
    n_scenarios / n_positions:
        Grid shape: every scenario reprices every position.
    n_cards / n_active_cards / policy:
        Cluster shape and the scheduling policy that sharded the grid.
    batch_seconds:
        One scenario's portfolio batch on one card (kernel + contended
        PCIe) — the uniform cost quantum of the grid.
    makespan_seconds:
        Slowest card's busy time plus serial host dispatch.
    scenarios_per_second / repricings_per_second:
        Aggregate throughput; a "repricing" is one contract under one
        scenario (the grid cell), the unit comparable to the paper's
        options/second.
    total_watts / repricings_per_watt:
        Power roll-up across all cards.
    dispatches:
        Total host dispatches (sum of per-card batch-queue chunks).
    cards:
        Per-card roll-ups, including idle cards.
    """

    n_scenarios: int
    n_positions: int
    n_cards: int
    n_active_cards: int
    policy: str
    batch_seconds: float
    makespan_seconds: float
    scenarios_per_second: float
    repricings_per_second: float
    total_watts: float
    repricings_per_watt: float
    dispatches: int
    cards: tuple[CardShard, ...]

    def summary(self) -> str:
        """One-line aggregate summary."""
        return (
            f"grid[{self.n_scenarios} scenarios x {self.n_positions} positions, "
            f"{self.n_cards} cards, {self.policy}]: "
            f"{self.repricings_per_second:,.0f} repricings/s, "
            f"{self.total_watts:.1f} W, "
            f"{self.repricings_per_watt:,.1f} repricings/W"
        )


@dataclass(frozen=True)
class FaultedClusterTiming(ClusterTiming):
    """A grid roll-up that survived a fault plan.

    A subclass (not extra fields on :class:`ClusterTiming`) because the
    risk report serialises timing via ``dataclasses.asdict`` — the fault
    keys may only exist when faults were actually injected, or zero-fault
    reports would stop matching their goldens.

    Attributes
    ----------
    fault_spec:
        The plan, in ``--faults`` spec grammar.
    n_repartitions:
        Card deaths that triggered a re-shard of the surviving work.
    n_rescheduled:
        Scenario revaluations moved off a dead card onto survivors.
    n_failed_scenarios:
        Scenarios that could not be completed anywhere (every card down).
    wasted_seconds:
        Card busy time burned on work a crash destroyed.
    """

    fault_spec: str = ""
    n_repartitions: int = 0
    n_rescheduled: int = 0
    n_failed_scenarios: int = 0
    wasted_seconds: float = 0.0


def shard_scenarios(
    n_scenarios: int,
    n_cards: int,
    scheduler: ClusterScheduler | str = "least-loaded",
) -> list[list[int]]:
    """Partition scenario indices across cards with a cluster policy.

    Every scenario reprices the same portfolio, so the cost vector is
    uniform; the policies then differ only in chunk shape (contiguity,
    dispatch counts), not balance.

    Parameters
    ----------
    n_scenarios:
        Scenarios to shard.
    n_cards:
        Cards available.
    scheduler:
        Policy instance or registry name.

    Returns
    -------
    list[list[int]]
        One scenario-index list per card, jointly covering the grid.
    """
    if n_scenarios < 1:
        raise ValidationError(f"n_scenarios must be >= 1, got {n_scenarios}")
    sched = (
        make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
    )
    assignment = sched.partition([1.0] * n_scenarios, n_cards)
    validate_partition(assignment, n_scenarios)
    for chunk in assignment:
        chunk.sort()
    return assignment


def simulate_grid_run(
    assignment: list[list[int]],
    options: list[CDSOption],
    yield_curve: YieldCurve,
    hazard_curve: HazardCurve,
    *,
    scenario: PaperScenario,
    policy: str,
    n_engines: int = 5,
    link: HostLinkModel | None = None,
    queue: BatchQueue | None = None,
    telemetry=None,
    faults=None,
) -> ClusterTiming:
    """Simulate the cluster timing of a sharded scenario-grid run.

    One representative portfolio batch is simulated on a card's
    discrete-event engine system; every scenario then costs exactly that
    batch (same contracts, same table sizes — only the table *values*
    differ, which the timing model is invariant to).

    With a non-empty ``faults`` plan the run is routed through the
    failure-aware walk instead: a card crash destroys its in-progress
    scenario (wasted work) and the surviving work is re-partitioned
    across the healthy cards at the crash instant, straggler windows
    inflate a card's batch quantum, and the roll-up comes back as a
    :class:`FaultedClusterTiming`.  ``None`` or an empty plan takes
    exactly the legacy path (byte-identical roll-up).

    Parameters
    ----------
    assignment:
        Scenario indices per card, from :func:`shard_scenarios`.
    options:
        The portfolio every card reprices per scenario.
    yield_curve / hazard_curve:
        Base rate tables (sizes drive the simulated batch cost).
    scenario:
        Experimental configuration shared by every card.
    policy:
        Scheduling policy name, for the roll-up.
    n_engines:
        CDS engines per card (floorplan-validated).
    link:
        Host-path timing model (default :class:`HostLinkModel`).
    queue:
        Host batching queue that chunks each card's scenario stream into
        dispatches (default :class:`BatchQueue`).
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` handle: card busy
        windows are recorded as spans when it records, and the grid
        roll-up is published into its registry (``risk_grid_*``
        metrics).  The roll-up itself is identical either way.
    faults:
        Optional :class:`~repro.faults.FaultPlan`; see above.
    """
    if not options:
        raise ValidationError("grid run needs at least one position")
    if not assignment:
        raise ValidationError("grid run needs at least one card")
    link = link if link is not None else HostLinkModel()
    queue = queue if queue is not None else BatchQueue()
    recorder = telemetry.recorder if telemetry is not None else None

    n_scenarios = sum(len(chunk) for chunk in assignment)
    n_cards = len(assignment)
    active = sum(1 for chunk in assignment if chunk)
    factor = link.contention_factor(active)

    # One representative batch on card 0; all scenarios share its cost.
    node = ClusterNode(0, scenario, n_engines=n_engines)
    result = node.price(options, yield_curve, hazard_curve)
    kernel = scenario.clock.seconds(result.kernel_cycles)
    batch_seconds = kernel + result.pcie_seconds * factor

    if faults is not None and not faults.is_empty:
        return _simulate_grid_faulted(
            assignment, options, node, batch_seconds, link, queue,
            policy, faults, telemetry,
        )

    # Unified-clock replay: one sim Resource per card; a card's scenario
    # chunk occupies a single busy window of ``len(chunk)`` batch quanta
    # reserved from t=0 (the whole grid is available at run start).
    sim = Simulation()
    shards: list[CardShard] = []
    busy: list[float] = []
    dispatches = 0
    for card_id, chunk in enumerate(assignment):
        if not chunk:
            shards.append(
                CardShard(
                    card_id=card_id,
                    n_scenarios=0,
                    dispatches=0,
                    seconds=0.0,
                    utilisation=0.0,
                    watts=node.idle_watts,
                )
            )
            continue
        # Scenario revaluation requests for this card coalesce into host
        # dispatches under the standard size-or-linger rule; all requests
        # are present at t=0 so only the size cap shapes the chunking.
        token = options[0]
        card_dispatches = len(
            queue.coalesce([Arrival(time_s=0.0, options=[token] * len(chunk))])
        )
        resource = Resource(f"card{card_id}", sim=sim, recorder=recorder)
        window = resource.reserve(
            0.0,
            len(chunk) * batch_seconds,
            span_name="scenario_shard",
            span_kind="grid",
            span_args={"scenarios": len(chunk), "dispatches": card_dispatches},
        )
        dispatches += card_dispatches
        busy.append(window.done_s)
        shards.append(
            CardShard(
                card_id=card_id,
                n_scenarios=len(chunk),
                dispatches=card_dispatches,
                seconds=resource.busy_seconds,
                utilisation=0.0,  # filled once the makespan is known
                watts=node.active_watts,
            )
        )

    makespan = max(busy) + link.dispatch_seconds(dispatches)
    shards = [
        CardShard(
            card_id=s.card_id,
            n_scenarios=s.n_scenarios,
            dispatches=s.dispatches,
            seconds=s.seconds,
            utilisation=s.seconds / makespan,
            watts=s.watts,
        )
        for s in shards
    ]
    watts = sum(s.watts for s in shards)
    repricings = n_scenarios * len(options)
    if telemetry is not None:
        out = telemetry.metrics
        out.counter(
            "risk_grid_scenarios_total", "scenarios revalued on the grid"
        ).inc(n_scenarios)
        out.counter(
            "risk_grid_dispatches_total", "host dispatches feeding the grid"
        ).inc(dispatches)
        out.counter(
            "risk_grid_repricings_total", "grid cells (scenario x position)"
        ).inc(repricings)
        out.gauge(
            "risk_grid_makespan_seconds", "slowest card plus serial dispatch"
        ).set(makespan)
        out.gauge(
            "risk_grid_batch_seconds", "one scenario's batch cost quantum"
        ).set(batch_seconds)
        out.gauge(
            "risk_grid_repricings_per_watt", "power efficiency of the run"
        ).set(repricings / makespan / watts)
    return ClusterTiming(
        n_scenarios=n_scenarios,
        n_positions=len(options),
        n_cards=n_cards,
        n_active_cards=active,
        policy=policy,
        batch_seconds=batch_seconds,
        makespan_seconds=makespan,
        scenarios_per_second=n_scenarios / makespan,
        repricings_per_second=repricings / makespan,
        total_watts=watts,
        repricings_per_watt=repricings / makespan / watts,
        dispatches=dispatches,
        cards=tuple(shards),
    )


def _simulate_grid_faulted(
    assignment: list[list[int]],
    options: list[CDSOption],
    node: ClusterNode,
    batch_seconds: float,
    link: HostLinkModel,
    queue: BatchQueue,
    policy: str,
    faults,
    telemetry,
) -> FaultedClusterTiming:
    """The failure-aware scenario-grid walk behind :func:`simulate_grid_run`.

    Each card walks its queue scenario by scenario on the shared clock:
    a batch quantum stretches through straggler windows, a crash wastes
    the in-progress scenario and hands every remaining one back to the
    scheduler, which re-partitions them across the cards healthy *at the
    crash instant*.  Scenarios stranded with no healthy card fail (the
    conservation roll-up: sharded = completed + failed).  The walk is
    pure arithmetic over the plan — deterministic for a given plan and
    assignment.
    """
    import math

    from repro.faults.health import ClusterHealth

    n_cards = len(assignment)
    n_sharded = sum(len(chunk) for chunk in assignment)
    health = ClusterHealth(faults, n_cards)
    sched = make_scheduler(policy)

    # Per-card work: (available-from, scenario count) segments; counts
    # are all that matter — scenario cost is uniform.
    segments: list[list[tuple[float, int]]] = [
        [(0.0, len(chunk))] if chunk else [] for chunk in assignment
    ]
    cursor = [0.0] * n_cards
    completed = [0] * n_cards
    busy = [0.0] * n_cards
    done_time = [0.0] * n_cards
    dispatches_per_card = [0] * n_cards
    wasted = 0.0
    n_repartitions = 0
    n_rescheduled = 0
    n_failed = 0
    token = options[0]

    def segment_dispatches(count: int) -> int:
        return len(
            queue.coalesce([Arrival(time_s=0.0, options=[token] * count)])
        )

    for card, segs in enumerate(segments):
        if segs:
            dispatches_per_card[card] += segment_dispatches(segs[0][1])

    def run_until(card: int, limit: float) -> int:
        """Walk ``card``'s queue up to ``limit``; returns stranded count."""
        nonlocal wasted
        segs = segments[card]
        while segs:
            avail, count = segs[0]
            t = max(cursor[card], avail)
            for k in range(count):
                service = batch_seconds * health.service_factor(
                    card, t, batch_seconds
                )
                if t + service > limit:
                    # The crash lands mid-scenario: burn the partial
                    # window, strand this scenario and everything after.
                    if t < limit:
                        wasted += limit - t
                        busy[card] += limit - t
                    stranded = (count - k) + sum(c for _, c in segs[1:])
                    segs.clear()
                    cursor[card] = limit
                    return stranded
                t += service
                busy[card] += service
                completed[card] += 1
            cursor[card] = t
            done_time[card] = max(done_time[card], t)
            segs.pop(0)
        return 0

    for crash in faults.crashes:
        stranded = run_until(crash.card, crash.at_s)
        if stranded:
            healthy = tuple(
                c for c in range(n_cards)
                if not health.card_down(c, crash.at_s)
            )
            if not healthy:
                n_failed += stranded
            else:
                n_repartitions += 1
                n_rescheduled += stranded
                sub = sched.partition([1.0] * stranded, len(healthy))
                for slot, chunk in enumerate(sub):
                    if chunk:
                        segments[healthy[slot]].append(
                            (crash.at_s, len(chunk))
                        )
                        dispatches_per_card[healthy[slot]] += (
                            segment_dispatches(len(chunk))
                        )
        # The card resumes (with whatever is later re-sharded to it, if
        # anything) only once repaired.
        cursor[crash.card] = max(cursor[crash.card], crash.down_until_s)

    for card in range(n_cards):
        leftover = run_until(card, math.inf)
        if leftover:  # permanently down with work still queued
            n_failed += leftover

    dispatches = sum(dispatches_per_card)
    makespan = max(done_time) + link.dispatch_seconds(dispatches)
    n_completed = sum(completed)
    shards = tuple(
        CardShard(
            card_id=card,
            n_scenarios=completed[card],
            dispatches=dispatches_per_card[card],
            seconds=busy[card],
            utilisation=busy[card] / makespan if makespan > 0 else 0.0,
            watts=node.active_watts if busy[card] > 0 else node.idle_watts,
        )
        for card in range(n_cards)
    )
    watts = sum(s.watts for s in shards)
    repricings = n_completed * len(options)
    timing = FaultedClusterTiming(
        n_scenarios=n_sharded,
        n_positions=len(options),
        n_cards=n_cards,
        n_active_cards=sum(1 for s in shards if s.n_scenarios),
        policy=policy,
        batch_seconds=batch_seconds,
        makespan_seconds=makespan,
        scenarios_per_second=n_completed / makespan if makespan > 0 else 0.0,
        repricings_per_second=repricings / makespan if makespan > 0 else 0.0,
        total_watts=watts,
        repricings_per_watt=(
            repricings / makespan / watts if makespan > 0 and watts > 0 else 0.0
        ),
        dispatches=dispatches,
        cards=shards,
        fault_spec=faults.spec(),
        n_repartitions=n_repartitions,
        n_rescheduled=n_rescheduled,
        n_failed_scenarios=n_failed,
        wasted_seconds=wasted,
    )
    if telemetry is not None:
        out = telemetry.metrics
        out.counter(
            "risk_grid_repartitions_total", "card deaths that re-sharded work"
        ).inc(n_repartitions)
        out.counter(
            "risk_grid_rescheduled_total", "scenarios moved off dead cards"
        ).inc(n_rescheduled)
        out.counter(
            "risk_grid_failed_scenarios_total", "scenarios stranded by faults"
        ).inc(n_failed)
        out.gauge(
            "risk_grid_wasted_seconds", "busy time destroyed by crashes"
        ).set(wasted)
    return timing
