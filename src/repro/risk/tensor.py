"""Lowering scenario sets into dense tensors for batched repricing.

Every in-repo scenario generator (parallel, bucketed, recovery,
historical replay, Monte Carlo) shocks the *values* of the base curves on
their original knot grids — the grid itself never moves.  That makes a
:class:`~repro.risk.scenarios.ScenarioSet` losslessly representable as a
pair of dense matrices (one row of shocked knot values per scenario and
curve) plus a recovery-shift vector, with the knot-time grids shared
across the whole set.  :class:`ScenarioTensor` is that representation —
the input layout of :func:`~repro.core.vector_pricing.price_packed_many`,
where the scenario axis of the risk grid becomes a leading array
dimension instead of a Python loop over :class:`~repro.core.curves.Curve`
objects.

Sets whose scenarios do *not* share knot grids (possible for hand-built
sets) cannot be lowered; :meth:`ScenarioTensor.try_pack` returns ``None``
for those and the revaluation engine falls back to the per-scenario loop,
which handles arbitrary curves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenarios
    # imports this module to attach tensors at generation time)
    from repro.risk.scenarios import ScenarioSet

__all__ = ["ScenarioTensor"]


@dataclass(frozen=True, eq=False)
class ScenarioTensor:
    """A :class:`ScenarioSet` lowered into dense arrays.

    Compared by identity (the array fields make a field-wise ``==``
    ill-defined).

    Attributes
    ----------
    yield_times:
        ``(k_y,)`` yield knot grid shared by every scenario.
    yield_values:
        ``(n_scenarios, k_y)`` shocked zero-rate rows.
    hazard_times:
        ``(k_h,)`` hazard knot grid shared by every scenario.
    hazard_values:
        ``(n_scenarios, k_h)`` shocked intensity rows.
    recovery_shifts:
        ``(n_scenarios,)`` additive recovery-rate shifts.
    source_scenarios:
        The exact scenario tuple this tensor was lowered from, compared
        *by identity*: a :class:`~repro.risk.scenarios.ScenarioSet`
        rebuilt with different scenarios (e.g. via
        ``dataclasses.replace``) silently drops a carried-over tensor
        whose source tuple no longer matches, instead of batch-pricing
        stale rows.  ``None`` skips the provenance check (hand-attached
        tensors; the set still validates the scenario count).
    """

    yield_times: np.ndarray
    yield_values: np.ndarray
    hazard_times: np.ndarray
    hazard_values: np.ndarray
    recovery_shifts: np.ndarray
    source_scenarios: tuple | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.yield_values.ndim != 2 or self.hazard_values.ndim != 2:
            raise ValidationError("scenario value arrays must be 2-D")
        n = self.yield_values.shape[0]
        if self.hazard_values.shape[0] != n or self.recovery_shifts.shape != (n,):
            raise ValidationError(
                "scenario axis mismatch: "
                f"{n} yield rows, {self.hazard_values.shape[0]} hazard rows, "
                f"{self.recovery_shifts.shape} recovery shifts"
            )
        if self.yield_values.shape[1] != self.yield_times.size:
            raise ValidationError(
                f"yield rows of width {self.yield_values.shape[1]} do not "
                f"match a {self.yield_times.size}-knot grid"
            )
        if self.hazard_values.shape[1] != self.hazard_times.size:
            raise ValidationError(
                f"hazard rows of width {self.hazard_values.shape[1]} do not "
                f"match a {self.hazard_times.size}-knot grid"
            )
        # Immutability, matching the Curve convention (copy then freeze):
        # the tensor is shared alongside the immutable scenario curves,
        # and a mutated row would silently break the batch==loop
        # bit-identity pin.  Arrays that arrive already read-only (the
        # generators freeze the buffers they own) pass through copy-free.
        for name in (
            "yield_times",
            "yield_values",
            "hazard_times",
            "hazard_values",
            "recovery_shifts",
        ):
            arr = getattr(self, name)
            if arr.flags.writeable:
                arr = arr.copy()
                arr.flags.writeable = False
                object.__setattr__(self, name, arr)

    @property
    def n_scenarios(self) -> int:
        """Scenarios in the tensor (the leading axis)."""
        return int(self.yield_values.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed arrays."""
        return int(
            self.yield_times.nbytes
            + self.yield_values.nbytes
            + self.hazard_times.nbytes
            + self.hazard_values.nbytes
            + self.recovery_shifts.nbytes
        )

    @classmethod
    def from_scenario_set(cls, scenario_set: ScenarioSet) -> "ScenarioTensor":
        """Lower ``scenario_set`` into dense arrays.

        Scenario sets whose generator attached a tensor at creation time
        (:func:`~repro.risk.scenarios.monte_carlo`,
        :func:`~repro.risk.scenarios.historical_replay`) return it
        directly; anything else is lowered curve by curve.

        Raises
        ------
        ValidationError
            If the scenarios do not all share one yield knot grid and one
            hazard knot grid (use :meth:`try_pack` to fall back instead).
        """
        if scenario_set.tensor is not None:
            return scenario_set.tensor
        scenarios = scenario_set.scenarios
        yc_times = np.asarray(scenarios[0].yield_curve.times, dtype=np.float64)
        hc_times = np.asarray(scenarios[0].hazard_curve.times, dtype=np.float64)
        for s in scenarios[1:]:
            if not np.array_equal(s.yield_curve.times, yc_times) or not (
                np.array_equal(s.hazard_curve.times, hc_times)
            ):
                raise ValidationError(
                    f"scenario set {scenario_set.name!r} mixes knot grids; "
                    "cannot lower it to a dense scenario tensor"
                )
        yield_values = np.stack(
            [np.asarray(s.yield_curve.values, dtype=np.float64) for s in scenarios]
        )
        hazard_values = np.stack(
            [np.asarray(s.hazard_curve.values, dtype=np.float64) for s in scenarios]
        )
        recovery_shifts = np.asarray(
            [s.recovery_shift for s in scenarios], dtype=np.float64
        )
        for arr in (yield_values, hazard_values, recovery_shifts):
            arr.flags.writeable = False  # freshly built: freeze copy-free
        return cls(
            yield_times=yc_times,
            yield_values=yield_values,
            hazard_times=hc_times,
            hazard_values=hazard_values,
            recovery_shifts=recovery_shifts,
            source_scenarios=scenarios,
        )

    @classmethod
    def try_pack(cls, scenario_set: ScenarioSet) -> "ScenarioTensor | None":
        """Lower ``scenario_set``, or ``None`` when its grids are mixed."""
        try:
            return cls.from_scenario_set(scenario_set)
        except ValidationError:
            return None
