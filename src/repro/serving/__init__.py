"""Live quote serving: micro-batched request coalescing onto the cluster.

The batch layers (``repro.cluster``, ``repro.risk``) price closed-world
jobs; this package turns them into an *online* service — the ROADMAP's
"serve heavy traffic" direction.  A simulated-time event loop accepts a
stream of pricing requests, coalesces them into micro-batches under a
size-or-linger policy, prices each batch with one batched kernel call,
and shards its market-state rows across cluster cards:

``request``
    :class:`~repro.serving.request.PricingRequest` /
    :class:`~repro.serving.request.PricingResponse` — quotes, revals and
    VaR refreshes with deadlines and priorities, plus shed records.
``coalescer``
    :class:`~repro.serving.coalescer.MicroBatchCoalescer` — the online
    size-or-linger micro-batcher (reusing the cluster
    :class:`~repro.cluster.batching.BatchQueue` as its policy), with
    causal linger timers, priority fill and shed-on-deadline.
``engine``
    :class:`~repro.serving.engine.QuoteServer` — admission control
    (bounded outstanding work), per-card in-flight tracking, host-link
    dispatch serialisation and contention, one negotiated
    :class:`~repro.api.PricingSession` call per micro-batch via
    :meth:`~repro.risk.engine.ScenarioRiskEngine.quote_rows` (any
    ``supports_streaming`` backend from the :mod:`repro.api` registry);
    batched answers are bit-identical to pricing each request alone.
``metrics``
    :class:`~repro.serving.metrics.ServingResult` — p50/p95/p99 latency,
    goodput, shed rate, micro-batch shape and per-card loads.
``workload``
    Market tapes and seeded request streams over the arrival processes
    of :mod:`repro.workloads.traffic`.
"""

from repro.serving.coalescer import MicroBatch, MicroBatchCoalescer
from repro.serving.engine import VAR_CONFIDENCE, DispatchCostModel, QuoteServer
from repro.serving.metrics import (
    CardLoad,
    KindStats,
    LatencyStats,
    ServingResult,
    per_kind_stats,
)
from repro.serving.request import (
    REQUEST_KINDS,
    SHED_REASONS,
    PricingRequest,
    PricingResponse,
    ShedRecord,
)
from repro.serving.workload import (
    make_market_tape,
    make_request_stream,
    make_risk_refresh_stream,
)

__all__ = [
    "REQUEST_KINDS",
    "SHED_REASONS",
    "PricingRequest",
    "PricingResponse",
    "ShedRecord",
    "MicroBatch",
    "MicroBatchCoalescer",
    "DispatchCostModel",
    "QuoteServer",
    "VAR_CONFIDENCE",
    "LatencyStats",
    "CardLoad",
    "KindStats",
    "ServingResult",
    "per_kind_stats",
    "make_market_tape",
    "make_request_stream",
    "make_risk_refresh_stream",
]
