"""Micro-batch coalescing: the size-or-linger rule with deadlines.

The cluster layer's :class:`~repro.cluster.batching.BatchQueue` already
defines the serving system's coalescing *policy* — dispatch when
``max_batch`` requests are pending, or when the oldest has lingered
``linger_s`` — and this module reuses that object verbatim as the policy
carrier.  :class:`MicroBatchCoalescer` adds the semantics an online
server needs on top of the offline replay:

* **causality** — a linger timer that fires at ``t`` only sweeps requests
  that had *arrived* by ``t``, never ones admitted between the timer
  expiry and the moment the simulation notices it;
* **shed-on-deadline** — a pending request whose deadline has passed at
  formation time is dropped (recorded as a :class:`~repro.serving.
  request.ShedRecord`) instead of wasting a kernel slot on an answer
  nobody can use;
* **priorities** — when more requests are eligible than ``max_batch``,
  the batch fills in ``(priority desc, arrival, id)`` order.

Admission control (the bounded queue) lives one level up in
:class:`~repro.serving.engine.QuoteServer`, which knows the in-flight
population; the coalescer itself never rejects an offered request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.batching import BatchQueue
from repro.errors import ValidationError
from repro.serving.request import PricingRequest, ShedRecord

__all__ = ["MicroBatch", "MicroBatchCoalescer"]


@dataclass(frozen=True)
class MicroBatch:
    """One coalesced micro-batch handed to the dispatcher.

    Attributes
    ----------
    batch_id:
        Formation order (0-based).
    formed_s:
        When the batch formed: the size trigger's arrival instant, or the
        oldest member's linger expiry.
    requests:
        Members in ``(priority desc, arrival, id)`` order.
    """

    batch_id: int
    formed_s: float
    requests: tuple[PricingRequest, ...]

    def __post_init__(self) -> None:
        if not self.requests:
            raise ValidationError("a micro-batch cannot be empty")

    @property
    def n_requests(self) -> int:
        """Requests in the batch."""
        return len(self.requests)

    @property
    def rows(self) -> tuple[int, ...]:
        """Sorted distinct market-state rows across the members."""
        return tuple(sorted({r for req in self.requests for r in req.rows}))


class MicroBatchCoalescer:
    """Online size-or-linger micro-batcher over a pending queue.

    Requests must be offered in non-decreasing arrival order (the server
    replays a sorted trace).  Each :meth:`offer` returns every batch whose
    trigger fired at or before the new arrival, in formation order;
    :meth:`flush` drains what remains after the trace ends.

    Parameters
    ----------
    queue:
        The size-or-linger policy (default :class:`~repro.cluster.
        batching.BatchQueue`): ``max_batch`` caps the batch size,
        ``linger_s`` bounds how long the oldest request may wait.
    """

    def __init__(self, queue: BatchQueue | None = None) -> None:
        self.queue = queue if queue is not None else BatchQueue()
        self._pending: list[PricingRequest] = []
        self._sheds: list[ShedRecord] = []
        self._next_batch_id = 0
        self._last_offer_s = 0.0

    @property
    def n_pending(self) -> int:
        """Requests waiting for a batch."""
        return len(self._pending)

    @property
    def sheds(self) -> tuple[ShedRecord, ...]:
        """Deadline sheds recorded so far, in shed order."""
        return tuple(self._sheds)

    # ------------------------------------------------------------------
    def _form(self, t: float) -> MicroBatch | None:
        """Form one batch at time ``t`` from the requests present by ``t``.

        Expired members are shed, the rest fill the batch in priority
        order up to ``max_batch``; overflow stays pending.  Returns
        ``None`` when every eligible request was shed.
        """
        # Pending is in arrival order, so eligibility is a prefix.
        k = 0
        while k < len(self._pending) and self._pending[k].arrival_s <= t:
            k += 1
        eligible, rest = self._pending[:k], self._pending[k:]
        alive = []
        for req in eligible:
            if req.deadline_s <= t:
                self._sheds.append(ShedRecord(req, t, "deadline"))
            else:
                alive.append(req)
        alive.sort(key=lambda r: (-r.priority, r.arrival_s, r.request_id))
        taken = alive[: self.queue.max_batch]
        leftover = alive[self.queue.max_batch :]
        leftover.sort(key=lambda r: (r.arrival_s, r.request_id))
        self._pending = leftover + rest
        if not taken:
            return None
        batch = MicroBatch(
            batch_id=self._next_batch_id, formed_s=t, requests=tuple(taken)
        )
        self._next_batch_id += 1
        return batch

    def advance(self, now: float) -> list[MicroBatch]:
        """Fire every linger timer due at or before ``now``.

        Parameters
        ----------
        now:
            Current simulated time (e.g. the next arrival's timestamp).

        Returns
        -------
        list[MicroBatch]
            Linger-triggered batches in formation order (often empty).
        """
        self._last_offer_s = max(self._last_offer_s, now)
        batches: list[MicroBatch] = []
        while self._pending:
            due = self._pending[0].arrival_s + self.queue.linger_s
            if due > now:
                break
            batch = self._form(due)
            if batch is not None:
                batches.append(batch)
        return batches

    def reap(self, now: float) -> int:
        """Shed every pending request whose deadline has passed ``now``.

        Expired requests can never be priced — any batch they could
        still join forms at or after ``now`` and would shed them at
        formation — so reaping early changes no outcome, but it stops
        dead work from counting toward the server's admission bound.
        Returns how many requests were shed.
        """
        alive = []
        reaped = 0
        for r in self._pending:
            if r.deadline_s <= now:
                self._sheds.append(ShedRecord(r, now, "deadline"))
                reaped += 1
            else:
                alive.append(r)
        self._pending = alive
        return reaped

    def offer(self, request: PricingRequest) -> list[MicroBatch]:
        """Admit one request, returning every batch its arrival triggers.

        Linger timers due before the arrival fire first (they formed
        earlier in simulated time); the arrival is then admitted, and a
        full pending queue dispatches immediately (the size trigger).

        Parameters
        ----------
        request:
            The admitted request; arrivals must be offered in
            non-decreasing time order.
        """
        if request.arrival_s < self._last_offer_s:
            raise ValidationError(
                f"requests must be offered in arrival order: "
                f"{request.arrival_s} after {self._last_offer_s}"
            )
        self._last_offer_s = request.arrival_s
        batches = self.advance(request.arrival_s)
        self._pending.append(request)
        if len(self._pending) >= self.queue.max_batch:
            batch = self._form(request.arrival_s)
            if batch is not None:
                batches.append(batch)
        return batches

    def flush(self) -> list[MicroBatch]:
        """Drain every pending request (the trace has ended).

        Each remaining group still forms at its linger expiry — the timer
        fires even though no further arrival will observe it — so
        latencies of tail requests stay honest.
        """
        batches: list[MicroBatch] = []
        while self._pending:
            batch = self._form(self._pending[0].arrival_s + self.queue.linger_s)
            if batch is not None:
                batches.append(batch)
        return batches
